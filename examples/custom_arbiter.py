#!/usr/bin/env python3
"""Extending the library: plug a custom arbitration algorithm in.

The paper's output arbiters can use "some kind of a priority chain"
(section 3, citing the Torus Routing Chip).  This example implements a
**daisy-chain arbiter**: every output port grants the requesting input
arbiter closest to a fixed chain head.  It is the cheapest possible
hardware (a ripple of AND gates) but unfair -- low-numbered rows hog
the bandwidth -- which is exactly why the 21364 spent the gates on
least-recently-selected instead.

The example registers the new arbiter in the algorithm registry, runs
it through the standalone matching model next to the library's
algorithms (including iSLIP1, which ships in ``repro.core``), and
measures the unfairness directly.

Run: ``python examples/custom_arbiter.py``
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

from repro.core import (
    ALGORITHMS,
    AlgorithmSpec,
    Arbiter,
    Grant,
    Nomination,
    SPAA_TIMING,
    usable_nominations,
)
from repro.experiments.report import format_table
from repro.sim import StandaloneConfig, measure_matches


class DaisyChainArbiter(Arbiter):
    """Fixed-priority grant: the lowest row wins every contention.

    Like SPAA, inputs commit to a single output (fan-out 1) and the
    output arbiters decide independently -- only the selection policy
    differs, so the comparison against SPAA isolates the policy.
    """

    name = "daisy-chain"

    def arbitrate(
        self,
        nominations: Sequence[Nomination],
        free_outputs: frozenset[int],
    ) -> list[Grant]:
        by_output: dict[int, Nomination] = {}
        for nom, outputs in usable_nominations(nominations, free_outputs):
            out = outputs[0]
            current = by_output.get(out)
            # Starving packets outrank the chain (anti-starvation),
            # then the chain position decides.
            key = (not nom.starving, nom.row)
            if current is None or key < (not current.starving, current.row):
                by_output[out] = nom
        return [
            Grant(row=nom.row, packet=nom.packet, output=out)
            for out, nom in sorted(by_output.items())
        ]


def register() -> None:
    """Make the arbiter available to every model by name."""
    ALGORITHMS["daisy-chain"] = AlgorithmSpec(
        name="daisy-chain",
        factory=lambda ctx: DaisyChainArbiter(),
        timing=SPAA_TIMING,  # as simple as SPAA's grant stage
        nomination_style="single-output",  # inputs commit like SPAA
    )


def matching_comparison() -> None:
    print("Matching capability (single router, load 32, 400 trials)\n")
    rows = []
    register()
    for algorithm in ("SPAA", "daisy-chain", "PIM1", "iSLIP1", "MCM"):
        loaded = measure_matches(
            StandaloneConfig(algorithm=algorithm, load=32, trials=400)
        )
        rows.append((algorithm, loaded))
    print(format_table(("algorithm", "matches/cycle"), rows))
    print("\n-> the chain matches SPAA's raw matching (same single-output")
    print("   structure); the difference is *who* gets served.\n")


def fairness_comparison() -> None:
    """Count grants per input port under sustained full contention."""
    from random import Random

    from repro.core import ArbiterContext, make_arbiter
    from repro.router import network_rows

    register()
    print("Fairness under contention: 4 rows fighting for one output\n")
    rows = []
    for algorithm in ("SPAA-base", "daisy-chain"):
        arbiter = make_arbiter(
            algorithm, ArbiterContext(16, 7, network_rows(), Random(1))
        )
        wins: Counter[int] = Counter()
        for trial in range(400):
            noms = [
                Nomination(row=row, packet=trial * 16 + row, outputs=(3,))
                for row in range(4)
            ]
            for grant in arbiter.arbitrate(noms, frozenset(range(7))):
                wins[grant.row] += 1
        shares = [wins.get(row, 0) / 400 for row in range(4)]
        rows.append((algorithm,) + tuple(f"{s:.0%}" for s in shares))
    print(format_table(
        ("algorithm", "row 0", "row 1", "row 2", "row 3"), rows
    ))
    print("\n-> least-recently-selected serves everyone equally; the chain")
    print("   starves rows 1-3 completely.  The 21364's anti-starvation")
    print("   coloring would eventually rescue them, but as a steady-state")
    print("   policy the chain is unusable -- gates well spent on LRS.")


if __name__ == "__main__":
    register()
    matching_comparison()
    fairness_comparison()
