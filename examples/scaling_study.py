#!/usr/bin/env python3
"""Why pipelined arbitration wins as routers get deeper (Figure 11a).

Technology scaling makes pipelines deeper: the paper projects a router
with twice the pipeline depth at twice the clock.  PIM1 and WFA stretch
to 8-cycle arbitrations that still restart only once per matrix pass;
SPAA stretches to 6 cycles but keeps launching a new arbitration every
cycle.  This example runs both generations side by side and reports how
the gap between SPAA-rotary and WFA-rotary widens.

Runtime: a few minutes.  Run: ``python examples/scaling_study.py``
"""

from repro.core import PIM1_TIMING, SPAA_TIMING, WFA_TIMING
from repro.experiments.report import format_table
from repro.sim import (
    NetworkConfig,
    SimulationConfig,
    TrafficConfig,
    saturation_buffer_plan,
    sweep_algorithms,
    throughput_gain_at_latency,
)

ALGORITHMS = ("PIM1", "WFA-rotary", "SPAA-rotary")


def run_generation(pipeline_scale: int, rates: tuple[float, ...]):
    config = SimulationConfig(
        network=NetworkConfig(
            width=8,
            height=8,
            buffer_plan=saturation_buffer_plan(),
            pipeline_scale=pipeline_scale,
        ),
        traffic=TrafficConfig(injection_rate=0.01),
        warmup_cycles=2_000,
        measure_cycles=6_000,
        seed=21364,
    )
    return sweep_algorithms(config, ALGORITHMS, rates,
                            progress=lambda line: print("  " + line))


def main() -> None:
    print("Arbitration timings by generation:")
    print(format_table(
        ("algorithm", "latency (1x)", "interval (1x)", "latency (2x)",
         "interval (2x)"),
        [
            ("SPAA", SPAA_TIMING.latency, SPAA_TIMING.initiation_interval,
             SPAA_TIMING.scaled(2).latency,
             SPAA_TIMING.scaled(2).initiation_interval),
            ("WFA", WFA_TIMING.latency, WFA_TIMING.initiation_interval,
             WFA_TIMING.scaled(2).latency,
             WFA_TIMING.scaled(2).initiation_interval),
            ("PIM1", PIM1_TIMING.latency, PIM1_TIMING.initiation_interval,
             PIM1_TIMING.scaled(2).latency,
             PIM1_TIMING.scaled(2).initiation_interval),
        ],
    ))
    print("\nSPAA is the only one whose initiation interval stays at 1.\n")

    print("Generation 1: the shipped 21364 (1.2 GHz, 3/4-cycle arbitration)")
    gen1 = run_generation(1, rates=(0.01, 0.03, 0.045))
    print("\nGeneration 2: 2x-deep pipeline at 2x clock (6/8-cycle arbitration)")
    gen2 = run_generation(2, rates=(0.02, 0.06, 0.09))

    rows = []
    for label, curves, latency in (("1x", gen1, 122.0), ("2x", gen2, 100.0)):
        gain = throughput_gain_at_latency(
            curves["SPAA-rotary"], curves["WFA-rotary"], latency
        )
        rows.append((
            label,
            curves["SPAA-rotary"].peak_throughput(),
            curves["WFA-rotary"].peak_throughput(),
            curves["PIM1"].peak_throughput(),
            f"{gain:+.1%} @ {latency:.0f}ns",
        ))
    print()
    print(format_table(
        ("pipeline", "SPAA-rotary peak", "WFA-rotary peak", "PIM1 peak",
         "SPAA over WFA"),
        rows,
        title="Peak delivered throughput (flits/router/ns)",
    ))
    print("\n-> the deeper the pipeline, the more SPAA's every-cycle launch")
    print("   matters (the paper reports >60% at 2x depth).")


if __name__ == "__main__":
    main()
