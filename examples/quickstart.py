#!/usr/bin/env python3
"""Quickstart: arbitrate one router cycle, then simulate a small network.

Walks through the library's three levels in ~a minute of runtime:

1. raw arbitration -- feed the Figure 2 scenario to OPF, SPAA, WFA and
   MCM and watch the collision behaviour the paper opens with;
2. the standalone model -- matching capability at a loaded router;
3. the timing model -- a 4x4 torus of 21364 routers running the
   coherence workload, comparing SPAA-base against WFA-base.

Run: ``python examples/quickstart.py``
"""

import random

from repro.core import ArbiterContext, Nomination, make_arbiter
from repro.experiments.report import format_table
from repro.router import network_rows
from repro.sim import (
    NetworkConfig,
    SimulationConfig,
    StandaloneConfig,
    TrafficConfig,
    measure_matches,
    simulate_bnf_point,
)

# --------------------------------------------------------------------
# 1. Raw arbitration: the paper's Figure 2 worked example.
# --------------------------------------------------------------------
# Eight input ports; every port's *oldest* packet wants output 3.  A
# naive oldest-packet-first arbiter collides; a good matching ships one
# packet per output.
FIGURE2_OLDEST = [
    Nomination(row=port, packet=port, outputs=(3,), age=9)
    for port in range(8)
]
FIGURE2_ALL = []
uid = 100
for port, columns in enumerate(
    [(3, 2, 1)] * 4 + [(3, 6, 1), (3, 2, 0), (3, 2, 4), (3, 2, 5)]
):
    for age, output in zip((9, 5, 1), columns):
        FIGURE2_ALL.append(
            Nomination(row=uid, packet=uid, outputs=(output,), age=age,
                       group=port, group_capacity=1)
        )
        uid += 1


def demo_figure2() -> None:
    print("1. Figure 2: arbitration collisions")
    print("   every input port's oldest packet targets output port 3\n")
    context = ArbiterContext(
        num_rows=16, num_outputs=7, network_rows=network_rows(),
        rng=random.Random(1),
    )
    free = frozenset(range(7))

    opf = make_arbiter("OPF", context).arbitrate(FIGURE2_OLDEST, free)
    mcm = make_arbiter("MCM", context).arbitrate(FIGURE2_ALL, free)
    print(f"   OPF (naive oldest-first): {len(opf)} packet dispatched "
          f"(7 collided and wasted the cycle)")
    print(f"   MCM (exhaustive matching): {len(mcm)} packets dispatched -- "
          f"the shaded cells of Figure 2\n")


# --------------------------------------------------------------------
# 2. Standalone model: matching capability of a loaded router.
# --------------------------------------------------------------------
def demo_standalone() -> None:
    print("2. Standalone single-router model (Figures 8 and 9)\n")
    rows = []
    for algorithm in ("MCM", "WFA", "PIM", "PIM1", "SPAA"):
        free = measure_matches(
            StandaloneConfig(algorithm=algorithm, load=32, trials=300)
        )
        busy = measure_matches(
            StandaloneConfig(algorithm=algorithm, load=32, occupancy=0.75,
                             trials=300)
        )
        rows.append((algorithm, free, busy))
    print(format_table(
        ("algorithm", "matches/cycle (outputs free)",
         "matches/cycle (75% busy)"),
        rows,
    ))
    print("\n   -> with 75% of outputs busy the gap disappears: the paper's")
    print("      argument for choosing the simplest pipelineable algorithm.\n")


# --------------------------------------------------------------------
# 3. Timing model: a 4x4 torus under coherence traffic.
# --------------------------------------------------------------------
def demo_timing() -> None:
    print("3. Timing model: 4x4 torus, uniform coherence traffic\n")
    rows = []
    for algorithm in ("SPAA-base", "WFA-base", "PIM1"):
        config = SimulationConfig(
            algorithm=algorithm,
            network=NetworkConfig(width=4, height=4),
            traffic=TrafficConfig(injection_rate=0.03),
            warmup_cycles=2_000,
            measure_cycles=6_000,
            seed=21364,
        )
        point = simulate_bnf_point(config)
        rows.append((algorithm, point.throughput, point.latency_ns))
    print(format_table(
        ("algorithm", "flits/router/ns", "avg packet latency (ns)"), rows
    ))
    print("\n   -> SPAA's 3-cycle pipelined arbitration beats the 4-cycle")
    print("      matrix algorithms despite its weaker matching.")


if __name__ == "__main__":
    demo_figure2()
    demo_standalone()
    demo_timing()
