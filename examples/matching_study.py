#!/usr/bin/env python3
"""A deeper look at matching capability (Figures 8 and 9 territory).

Beyond regenerating the paper's curves, this example uses the
standalone model's knobs to answer questions the paper leaves implicit:

* how much of PIM/WFA's advantage comes from *adaptivity* (packets
  with two candidate outputs) rather than from iteration?
* how sensitive is SPAA to the share of local traffic (which piles
  onto only three output ports)?

Runtime: under a minute.  Run: ``python examples/matching_study.py``
"""


from repro.experiments.report import ascii_plot, format_table
from repro.sim import StandaloneConfig, measure_matches

ALGORITHMS = ("MCM", "WFA", "PIM1", "SPAA")


def adaptivity_study() -> None:
    print("1. Matching vs adaptive freedom")
    print("   (share of network packets with two candidate outputs)\n")
    fractions = (0.0, 0.25, 0.5, 0.75, 1.0)
    rows = []
    series = {}
    for algorithm in ALGORITHMS:
        values = []
        for fraction in fractions:
            config = StandaloneConfig(
                algorithm=algorithm, load=32, trials=300,
                two_direction_fraction=fraction,
            )
            values.append(measure_matches(config))
        series[algorithm] = list(zip(fractions, values))
        rows.append((algorithm,) + tuple(values))
    print(format_table(
        ("algorithm",) + tuple(f"p2={f:.2f}" for f in fractions), rows
    ))
    print()
    print(ascii_plot(series, x_label="two-output fraction",
                     y_label="matches/cycle", height=12, width=60))
    print("\n   -> adaptivity helps every algorithm, but the matrix")
    print("      algorithms exploit the second choice far better than")
    print("      SPAA, which must commit to one output up front.\n")


def local_traffic_study() -> None:
    print("2. Matching vs local-traffic share")
    print("   (local packets have a single destination among 3 ports)\n")
    shares = (0.0, 0.25, 0.5, 0.75)
    rows = []
    for algorithm in ALGORITHMS:
        values = []
        for share in shares:
            config = StandaloneConfig(
                algorithm=algorithm, load=32, trials=300,
                local_fraction=share,
            )
            values.append(measure_matches(config))
        rows.append((algorithm,) + tuple(values))
    print(format_table(
        ("algorithm",) + tuple(f"local={s:.2f}" for s in shares), rows
    ))
    print("\n   -> concentrating traffic on the three local sinks caps")
    print("      everyone; the 21364's 50% local share is why seven")
    print("      matches per cycle is rarely achievable at all.\n")


def occupancy_study() -> None:
    print("3. The paper's bottom line: occupancy erases the differences\n")
    rows = []
    for occupancy in (0.0, 0.5, 0.75):
        values = [
            measure_matches(StandaloneConfig(
                algorithm=a, load=32, trials=300, occupancy=occupancy
            ))
            for a in ALGORITHMS
        ]
        spread = (max(values) - min(values)) / min(values)
        rows.append((f"{occupancy:.2f}",) + tuple(values) + (f"{spread:.1%}",))
    print(format_table(
        ("occupancy",) + tuple(ALGORITHMS) + ("spread",), rows
    ))
    print("\n   -> at realistic (busy) operating points, pick the algorithm")
    print("      that is fastest to implement: SPAA.")


if __name__ == "__main__":
    adaptivity_study()
    local_traffic_study()
    occupancy_study()
