#!/usr/bin/env python3
"""Mixing I/O traffic into the coherence workload.

The 21364's I/O packets obey stricter rules than coherence packets:
they ride **only** the deadlock-free channels VC0/VC1 (dimension-order
routing with dateline VC switching), because the I/O ordering rules
forbid the adaptive channel's reordering.  The paper's workload mix
ignores I/O; this example uses the library's extension knob
(``TrafficConfig.io_fraction``) to ask what that restriction costs.

Run: ``python examples/io_traffic.py`` (about a minute)
"""

from repro.experiments.report import format_table
from repro.sim import (
    NetworkConfig,
    PacketTracer,
    NetworkSimulator,
    SimulationConfig,
    TrafficConfig,
)


def run_mix(io_fraction: float):
    config = SimulationConfig(
        algorithm="SPAA-base",
        network=NetworkConfig(width=4, height=4),
        traffic=TrafficConfig(injection_rate=0.015, io_fraction=io_fraction),
        warmup_cycles=1_000,
        measure_cycles=5_000,
        seed=364,
    )
    simulator = NetworkSimulator(config)
    tracer = PacketTracer(sample_every=7)
    simulator.attach_observer(tracer)
    stats = simulator.run()
    return stats, tracer


def main() -> None:
    print("Sweeping the I/O share of the workload (4x4, SPAA-base)\n")
    rows = []
    for io_fraction in (0.0, 0.25, 0.5, 1.0):
        stats, _ = run_mix(io_fraction)
        rows.append((
            f"{io_fraction:.0%}",
            stats.delivered_flits_per_router_ns(),
            stats.packet_latency_ns.mean,
            stats.latency_percentile_ns(0.95),
        ))
    print(format_table(
        ("I/O share", "flits/router/ns", "mean latency (ns)",
         "p95 latency (ns)"),
        rows,
    ))
    print()
    print("-> I/O packets forgo adaptivity (single dimension-order path,")
    print("   single-packet escape buffers), so a heavier I/O share means")
    print("   less routing freedom and a longer latency tail.")

    # Show one traced I/O journey for flavour.
    stats, tracer = run_mix(1.0)
    longest = tracer.longest()
    if longest is not None:
        print(f"\nSlowest traced packet (#{longest.uid}, {longest.pclass}, "
              f"{longest.source} -> {longest.destination}):")
        for hop in longest.hops:
            print(f"   cycle {hop.time:8.1f}: node {hop.node:2d} -> "
                  f"output {hop.output} ({hop.service_cycles:.1f} cycles "
                  "of service)")
        total_ns = (longest.delivered_at - longest.injected_at) / 1.2
        print(f"   delivered after {total_ns:.1f} ns")


if __name__ == "__main__":
    main()
