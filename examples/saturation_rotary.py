#!/usr/bin/env python3
"""The Rotary Rule rescuing an 8x8 torus from tree saturation.

Reproduces (in miniature) the right-hand side of the paper's Figure 10
for the 8x8 network: beyond the saturation point, SPAA-base's delivered
throughput collapses -- freshly injected packets grab output ports
while the packets already in the network sit in full buffers -- whereas
SPAA-rotary, which gives cross-traffic priority (like cars already in a
Massachusetts rotary), keeps delivering.

Runtime: a few minutes.  Run: ``python examples/saturation_rotary.py``
"""

from repro.experiments.report import bnf_plot, format_table
from repro.sim import (
    NetworkConfig,
    SimulationConfig,
    TrafficConfig,
    saturation_buffer_plan,
    sweep_algorithms,
)

RATES = (0.01, 0.02, 0.035, 0.06)


def main() -> None:
    config = SimulationConfig(
        network=NetworkConfig(
            width=8, height=8, buffer_plan=saturation_buffer_plan()
        ),
        traffic=TrafficConfig(injection_rate=0.01, mshr_limit=16),
        warmup_cycles=2_000,
        measure_cycles=6_000,
        seed=21364,
    )
    print("Sweeping offered load on an 8x8 torus (this takes a few minutes)\n")
    curves = sweep_algorithms(
        config,
        algorithms=("SPAA-base", "SPAA-rotary"),
        rates=RATES,
        progress=lambda line: print("  " + line),
    )

    print()
    rows = []
    for label, curve in curves.items():
        for point in curve.points:
            rows.append((label, f"{point.offered_rate:.3f}",
                         point.throughput, point.latency_ns))
    print(format_table(
        ("algorithm", "offered rate", "delivered flits/router/ns",
         "avg latency (ns)"),
        rows,
    ))

    base = curves["SPAA-base"]
    rotary = curves["SPAA-rotary"]
    print()
    print(bnf_plot(curves, width=64, height=14))
    print()
    collapse = 1.0 - base.points[-1].throughput / base.peak_throughput()
    rescue = rotary.points[-1].throughput / base.points[-1].throughput - 1.0
    print(f"SPAA-base loses {collapse:.0%} of its peak throughput beyond "
          "saturation;")
    print(f"the Rotary Rule turns that into a {rescue:+.0%} advantage at "
          "maximum pressure.")
    print("\n(The 21364 ships the Rotary Rule as a boot-time option -- a")
    print(" safety net for loads no real workload was expected to reach.)")


if __name__ == "__main__":
    main()
