"""Arbitration algorithms for the Alpha 21364 router study.

This package is the paper's primary contribution: SPAA, the Rotary
Rule, and the comparison algorithms (PIM, PIM1, WFA, MCM, OPF), plus
their hardware timing characteristics and the anti-starvation overlay.
"""

from repro.core.antistarvation import AntiStarvationConfig, AntiStarvationTracker
from repro.core.base import Arbiter, usable_nominations
from repro.core.islip import ISLIPArbiter
from repro.core.maxflow import MaxFlow
from repro.core.mcm import MCMArbiter
from repro.core.mwm import GreedyMWMArbiter, WeightRule
from repro.core.opf import OPFArbiter
from repro.core.pim import PIMArbiter, expected_convergence_iterations
from repro.core.policies import (
    LeastRecentlySelectedPolicy,
    OldestFirstPolicy,
    RandomPolicy,
    RotaryRulePolicy,
    RoundRobinPolicy,
    SelectionPolicy,
    make_policy,
)
from repro.core.registry import (
    ALGORITHMS,
    STANDALONE_ALGORITHMS,
    TIMING_ALGORITHMS,
    AlgorithmSpec,
    ArbiterContext,
    algorithm_timing,
    available_algorithms,
    make_arbiter,
    nomination_style,
)
from repro.core.spaa import SPAAArbiter
from repro.core.timing import (
    ArbitrationTiming,
    PIM1_TIMING,
    SPAA_TIMING,
    WFA_3CYCLE_TIMING,
    WFA_TIMING,
)
from repro.core.types import Grant, Nomination, SourceKind, validate_matching
from repro.core.wavefront import WavefrontArbiter

__all__ = [
    "ALGORITHMS",
    "STANDALONE_ALGORITHMS",
    "TIMING_ALGORITHMS",
    "AlgorithmSpec",
    "AntiStarvationConfig",
    "AntiStarvationTracker",
    "Arbiter",
    "ArbiterContext",
    "GreedyMWMArbiter",
    "ISLIPArbiter",
    "ArbitrationTiming",
    "Grant",
    "LeastRecentlySelectedPolicy",
    "MCMArbiter",
    "MaxFlow",
    "Nomination",
    "OPFArbiter",
    "OldestFirstPolicy",
    "PIM1_TIMING",
    "PIMArbiter",
    "RandomPolicy",
    "RotaryRulePolicy",
    "RoundRobinPolicy",
    "SPAAArbiter",
    "SPAA_TIMING",
    "SelectionPolicy",
    "SourceKind",
    "WFA_3CYCLE_TIMING",
    "WFA_TIMING",
    "WavefrontArbiter",
    "WeightRule",
    "algorithm_timing",
    "available_algorithms",
    "expected_convergence_iterations",
    "make_arbiter",
    "make_policy",
    "nomination_style",
    "usable_nominations",
    "validate_matching",
]
