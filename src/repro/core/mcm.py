"""Maximal Cardinality Matching (MCM) -- the paper's upper bound.

MCM is Maximum Weight Matching with all weights equal: it exhaustively
finds the largest possible set of conflict-free (packet, output) pairs.
The paper uses it only in the standalone (non-timing) studies because
no known hardware implementation fits in a few cycles; we use it the
same way, as the reference curve of Figures 8 and 9.

The matching must respect three capacities: each output port takes one
packet, each packet is dispatched once, and each input *port* can read
out at most ``group_capacity`` packets per cycle (two read ports in the
21364).  We solve this exactly with the from-scratch Dinic solver in
:mod:`repro.core.maxflow` over the network::

    source --cap=group_capacity--> input port --1--> packet --1--> output --1--> sink
"""

from __future__ import annotations

from typing import Sequence

from repro.core.base import Arbiter, usable_nominations
from repro.core.maxflow import MaxFlow
from repro.core.types import Grant, Nomination


class MCMArbiter(Arbiter):
    """Exact maximum-cardinality matching via max-flow."""

    name = "MCM"

    def arbitrate(
        self,
        nominations: Sequence[Nomination],
        free_outputs: frozenset[int],
    ) -> list[Grant]:
        usable = usable_nominations(nominations, free_outputs)
        if not usable:
            return []

        groups = sorted({nom.group if nom.group is not None else -1 - nom.row
                         for nom, _ in usable})
        outputs = sorted({o for _, outs in usable for o in outs})
        group_index = {g: i for i, g in enumerate(groups)}
        output_index = {o: i for i, o in enumerate(outputs)}

        # Node layout: 0 = source, then groups, then packets, then
        # outputs, then sink.
        num_packets = len(usable)
        first_group = 1
        first_packet = first_group + len(groups)
        first_output = first_packet + num_packets
        sink = first_output + len(outputs)
        graph = MaxFlow(sink + 1)

        group_capacity: dict[int, int] = {}
        for nom, _ in usable:
            key = nom.group if nom.group is not None else -1 - nom.row
            group_capacity[key] = max(
                group_capacity.get(key, 0), nom.group_capacity
            )
        for key, capacity in group_capacity.items():
            graph.add_edge(0, first_group + group_index[key], capacity)

        packet_output_edges: list[list[tuple[int, int]]] = []
        for packet_node, (nom, outs) in enumerate(usable):
            key = nom.group if nom.group is not None else -1 - nom.row
            graph.add_edge(
                first_group + group_index[key], first_packet + packet_node, 1
            )
            edges = []
            for out in outs:
                edge_id = graph.add_edge(
                    first_packet + packet_node, first_output + output_index[out], 1
                )
                edges.append((edge_id, out))
            packet_output_edges.append(edges)
        for out in outputs:
            graph.add_edge(first_output + output_index[out], sink, 1)

        graph.max_flow(0, sink)

        grants = []
        for (nom, _), edges in zip(usable, packet_output_edges):
            for edge_id, out in edges:
                if graph.flow_on(edge_id) > 0:
                    grants.append(Grant(row=nom.row, packet=nom.packet, output=out))
                    break
        return grants
