"""A from-scratch Dinic max-flow solver.

The Maximal Cardinality Matching arbiter (MCM, paper section 3) needs a
degree-constrained bipartite matching: each *input port* may dispatch up
to two packets (one per read port), each *packet* may be dispatched once
and each *output port* accepts one packet.  That is a unit-capacity flow
problem with one extra capacity layer, so plain Hopcroft-Karp does not
apply directly; Dinic's algorithm on the layered graph does, and on
these tiny graphs (tens of nodes) it is exact and fast.
"""

from __future__ import annotations


class MaxFlow:
    """Dinic max-flow over an integer-capacity directed graph.

    Nodes are dense integers ``0 .. n-1``.  Edges are stored as parallel
    arrays in the usual adjacency-list-with-reverse-edge layout.
    """

    def __init__(self, num_nodes: int) -> None:
        if num_nodes <= 0:
            raise ValueError("graph needs at least one node")
        self.num_nodes = num_nodes
        self._to: list[int] = []
        self._cap: list[int] = []
        self._adj: list[list[int]] = [[] for _ in range(num_nodes)]

    def add_edge(self, src: int, dst: int, capacity: int) -> int:
        """Add a directed edge and its residual twin; return its id."""
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        if not (0 <= src < self.num_nodes and 0 <= dst < self.num_nodes):
            raise ValueError("edge endpoint out of range")
        edge_id = len(self._to)
        self._to.append(dst)
        self._cap.append(capacity)
        self._adj[src].append(edge_id)
        self._to.append(src)
        self._cap.append(0)
        self._adj[dst].append(edge_id + 1)
        return edge_id

    def flow_on(self, edge_id: int) -> int:
        """Flow pushed over *edge_id* (the residual edge's capacity)."""
        return self._cap[edge_id ^ 1]

    def max_flow(self, source: int, sink: int) -> int:
        """Compute the maximum flow from *source* to *sink*."""
        if source == sink:
            raise ValueError("source and sink must differ")
        total = 0
        while True:
            level = self._bfs_levels(source, sink)
            if level[sink] < 0:
                return total
            next_edge = [0] * self.num_nodes
            while True:
                pushed = self._dfs_push(source, sink, _INF, level, next_edge)
                if pushed == 0:
                    break
                total += pushed

    def _bfs_levels(self, source: int, sink: int) -> list[int]:
        level = [-1] * self.num_nodes
        level[source] = 0
        frontier = [source]
        while frontier and level[sink] < 0:
            nxt: list[int] = []
            for node in frontier:
                for edge_id in self._adj[node]:
                    dst = self._to[edge_id]
                    if self._cap[edge_id] > 0 and level[dst] < 0:
                        level[dst] = level[node] + 1
                        nxt.append(dst)
            frontier = nxt
        return level

    def _dfs_push(
        self,
        node: int,
        sink: int,
        limit: int,
        level: list[int],
        next_edge: list[int],
    ) -> int:
        if node == sink:
            return limit
        adj = self._adj[node]
        while next_edge[node] < len(adj):
            edge_id = adj[next_edge[node]]
            dst = self._to[edge_id]
            if self._cap[edge_id] > 0 and level[dst] == level[node] + 1:
                pushed = self._dfs_push(
                    dst, sink, min(limit, self._cap[edge_id]), level, next_edge
                )
                if pushed > 0:
                    self._cap[edge_id] -= pushed
                    self._cap[edge_id ^ 1] += pushed
                    return pushed
            next_edge[node] += 1
        return 0


_INF = 1 << 60
