"""The 21364's two-color anti-starvation overlay.

The Rotary Rule can starve local-port packets (network traffic always
wins).  The 21364 counters this with a coloring scheme (paper section
3.4): waiting packets carry an *old* or *new* color; when the number of
old-colored packets at a router crosses a threshold the router drains
every old packet before routing any new one.  The paper leaves the
details out of scope, so we implement the sketch directly: a packet's
color turns old after ``age_threshold`` cycles of waiting, and draining
mode engages while at least ``drain_threshold`` old packets wait.

The overlay is algorithm-agnostic: it flags nominations as ``starving``
and every selection policy and arbiter in :mod:`repro.core` honours the
flag ahead of its own prioritization.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.types import Nomination
from repro.obs.telemetry import NULL_TELEMETRY


@dataclass(frozen=True, slots=True)
class AntiStarvationConfig:
    """Tuning knobs for the two-color scheme.

    Attributes:
        age_threshold: waiting cycles after which a packet's color
            turns old.
        drain_threshold: number of old-colored packets at one router
            that triggers draining mode.
        enabled: master switch; the hardware always ships with the
            mechanism, simulations may disable it for ablations.
    """

    age_threshold: int = 2000
    drain_threshold: int = 8
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.age_threshold < 1:
            raise ValueError("age_threshold must be positive")
        if self.drain_threshold < 1:
            raise ValueError("drain_threshold must be positive")


class AntiStarvationTracker:
    """Per-router starvation bookkeeping.

    Call :meth:`classify` with the cycle's nominations; it returns the
    same nominations with ``starving`` set on old-colored packets when
    draining mode is engaged.  Draining mode latches on when the old
    count crosses ``drain_threshold`` and latches off only when every
    old packet has left, matching the "drain all old before any new"
    semantics of the paper.
    """

    #: observability hook + owning router id, wired by the simulator
    #: when telemetry is enabled (see repro.sim.timing_model).
    telemetry = NULL_TELEMETRY
    node = -1

    def __init__(self, config: AntiStarvationConfig | None = None) -> None:
        self._config = config or AntiStarvationConfig()
        self._draining = False

    @property
    def draining(self) -> bool:
        """Whether the router is currently draining old packets."""
        return self._draining

    def reset(self) -> None:
        self._draining = False

    def classify(
        self, nominations: list[Nomination], now: float = 0.0
    ) -> list[Nomination]:
        """Flag old-colored nominations while draining mode is engaged."""
        if not self._config.enabled:
            return nominations
        old = [n for n in nominations if n.age >= self._config.age_threshold]
        if not self._draining and len(old) >= self._config.drain_threshold:
            self._draining = True
            tel = self.telemetry
            if tel.enabled:
                tel.on_starvation(now, self.node, len(old), True)
        if self._draining and not old:
            self._draining = False
            tel = self.telemetry
            if tel.enabled:
                tel.on_starvation(now, self.node, 0, False)
        if not self._draining:
            return nominations
        old_keys = {(n.row, n.packet) for n in old}
        return [
            _with_starving(n, (n.row, n.packet) in old_keys) for n in nominations
        ]


def _with_starving(nomination: Nomination, starving: bool) -> Nomination:
    if nomination.starving == starving:
        return nomination
    return Nomination(
        row=nomination.row,
        packet=nomination.packet,
        outputs=nomination.outputs,
        source=nomination.source,
        age=nomination.age,
        group=nomination.group,
        group_capacity=nomination.group_capacity,
        starving=starving,
    )
