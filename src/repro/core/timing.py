"""Arbitration pipeline timing characteristics.

The paper's comparison hinges on three hardware numbers per algorithm:
how many cycles one arbitration takes (*latency*), how often a new
input-port arbitration can start (*initiation interval*), and whether
the same packet may be nominated to several outputs (*fan-out*, which
decides whether the speculative input-buffer read of SPAA is possible).

Paper values (sections 1 and 3):

=============  ========  ====================  =======
algorithm      latency   initiation interval   fan-out
=============  ========  ====================  =======
SPAA           3         1 (fully pipelined)   1
PIM1           4         3                     2
WFA            4         3                     2
=============  ========  ====================  =======

The 2x-deep pipeline study of Figure 11a doubles the latencies to
6 / 8 / 8 (at twice the clock frequency).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True, slots=True)
class ArbitrationTiming:
    """Cycle-level behaviour of an arbitration implementation.

    Attributes:
        latency: cycles from the start of input-port arbitration (LA)
            to the output-port grant taking effect (GA).
        initiation_interval: minimum cycles between successive
            arbitration launches at one router; 1 means fully
            pipelined.
        fanout: maximum number of output ports a single packet may be
            nominated to in one launch (1 for SPAA, 2 for PIM/WFA --
            the adaptive routing allows at most two directions).
        nominations_per_port: how many packets one *input port* may
            nominate per arbitration.  PIM and WFA load the matrix from
            both read ports (2).  SPAA's read-port pair synchronizes on
            one nomination per cycle -- the pairing that makes the
            paper's "only 16 in-flight packets" work out with a
            three-cycle pipeline -- so it nominates 1; the second read
            port performs the speculative data read-out.
        tail_cycles: cycles of the latency that are pure wire delay
            *after* the grant decision (the paper: PIM1 and WFA's
            "fourth cycle accounts for wire delays from the matrix to
            the output ports and can be pipelined").  The arbitration
            state updates at ``latency - tail_cycles``; the packet
            reaches the output ``tail_cycles`` later.
        speculative_read: whether a nominated packet can be read out of
            the input buffer before the grant arrives (possible only
            with fanout 1).
    """

    latency: int
    initiation_interval: int
    fanout: int
    nominations_per_port: int = 2
    tail_cycles: int = 0
    speculative_read: bool = False

    def __post_init__(self) -> None:
        if self.latency < 1:
            raise ValueError("latency must be at least one cycle")
        if self.initiation_interval < 1:
            raise ValueError("initiation interval must be at least one cycle")
        if self.fanout not in (1, 2):
            raise ValueError("fan-out is 1 (SPAA) or 2 (adaptive maximum)")
        if self.nominations_per_port not in (1, 2):
            raise ValueError("an input port has two read ports at most")
        if not 0 <= self.tail_cycles < self.latency:
            raise ValueError("tail cycles must leave at least one decision cycle")
        if self.speculative_read and self.fanout != 1:
            raise ValueError("speculative buffer reads require fan-out 1")

    @property
    def decision_latency(self) -> int:
        """Cycles from launch to the grant decision taking effect."""
        return self.latency - self.tail_cycles

    def scaled(self, factor: int) -> "ArbitrationTiming":
        """Timing for a pipeline *factor* times deeper (Figure 11a).

        The initiation interval scales for the non-pipelined
        algorithms (their matrix pass stretches with the pipeline) but
        stays 1 for a fully pipelined design -- that asymmetry is
        exactly why SPAA pulls ahead at 2x depth.
        """
        if factor < 1:
            raise ValueError("scale factor must be >= 1")
        interval = self.initiation_interval
        if interval > 1:
            interval *= factor
        return replace(
            self,
            latency=self.latency * factor,
            initiation_interval=interval,
            tail_cycles=self.tail_cycles * factor,
        )


SPAA_TIMING = ArbitrationTiming(
    latency=3,
    initiation_interval=1,
    fanout=1,
    nominations_per_port=1,
    speculative_read=True,
)
PIM1_TIMING = ArbitrationTiming(
    latency=4, initiation_interval=3, fanout=2, tail_cycles=1
)
WFA_TIMING = ArbitrationTiming(
    latency=4, initiation_interval=3, fanout=2, tail_cycles=1
)

#: Hypothetical 3-cycle WFA used for the paper's pipelining ablation
#: ("if we could implement WFA as a three-cycle arbitration mechanism
#: like SPAA, then pipelining is the key difference").
WFA_3CYCLE_TIMING = ArbitrationTiming(latency=3, initiation_interval=3, fanout=2)
