"""Output-port selection policies.

When several input-port arbiters nominate packets to the same output
port, the output arbiter breaks the tie with a *selection policy*.  The
paper (section 3) lists random, round-robin, least-recently-selected
(LRS), priority chains and the Rotary Rule; the 21364 uses LRS for
SPAA-base and the Rotary Rule (network traffic first, LRS within each
class) for SPAA-rotary.
"""

from __future__ import annotations

import abc
import random
from typing import Sequence

from repro.core.types import Nomination, SourceKind


class SelectionPolicy(abc.ABC):
    """Picks one winner among nominations competing for one output."""

    name: str = "policy"

    @abc.abstractmethod
    def select(self, output: int, candidates: Sequence[Nomination]) -> Nomination:
        """Return the winning nomination for *output*.

        ``candidates`` is non-empty; the returned nomination must be
        one of them.
        """

    def notify_grant(self, output: int, winner: Nomination) -> None:
        """Observe a grant so stateful policies can update history."""

    def reset(self) -> None:
        """Restore power-on state."""


def _split_starving(
    candidates: Sequence[Nomination],
) -> Sequence[Nomination]:
    """Anti-starvation overlay: old-colored packets outrank everything.

    The 21364 colors long-waiting packets "old" and drains them before
    any new-colored packet is routed (paper section 3.4).  Every policy
    applies this filter first, so the Rotary Rule can never starve a
    packet indefinitely.
    """
    starving = [c for c in candidates if c.starving]
    return starving if starving else candidates


class RandomPolicy(SelectionPolicy):
    """Uniform random selection (used by PIM's grant and accept steps)."""

    name = "random"

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng

    def select(self, output: int, candidates: Sequence[Nomination]) -> Nomination:
        candidates = _split_starving(candidates)
        return candidates[self._rng.randrange(len(candidates))]


class RoundRobinPolicy(SelectionPolicy):
    """Rotating-pointer selection, one pointer per output port."""

    name = "round-robin"

    def __init__(self) -> None:
        self._pointers: dict[int, int] = {}

    def select(self, output: int, candidates: Sequence[Nomination]) -> Nomination:
        candidates = _split_starving(candidates)
        pointer = self._pointers.get(output, 0)
        return min(candidates, key=lambda nom: (nom.row - pointer) % _ROW_MODULUS)

    def notify_grant(self, output: int, winner: Nomination) -> None:
        self._pointers[output] = (winner.row + 1) % _ROW_MODULUS

    def reset(self) -> None:
        self._pointers.clear()


class LeastRecentlySelectedPolicy(SelectionPolicy):
    """Pick the row granted longest ago for this output (SPAA-base).

    Rows that were never granted rank oldest of all; among those, the
    lowest row index wins, which makes the policy deterministic.
    """

    name = "least-recently-selected"

    def __init__(self) -> None:
        self._clock = 0
        self._last_granted: dict[tuple[int, int], int] = {}

    def select(self, output: int, candidates: Sequence[Nomination]) -> Nomination:
        candidates = _split_starving(candidates)
        return min(
            candidates,
            key=lambda nom: (self._last_granted.get((output, nom.row), -1), nom.row),
        )

    def notify_grant(self, output: int, winner: Nomination) -> None:
        self._clock += 1
        self._last_granted[(output, winner.row)] = self._clock

    def reset(self) -> None:
        self._clock = 0
        self._last_granted.clear()


class RotaryRulePolicy(SelectionPolicy):
    """The paper's Rotary Rule: network traffic beats local traffic.

    Named after Massachusetts rotaries, where traffic already in the
    rotary has priority over entering traffic.  Nominations from the
    torus (network) input ports are preferred over nominations from the
    cache, memory-controller and I/O (local) ports; inside each class
    the least-recently-selected row wins, exactly as the paper
    describes for SPAA-rotary and PIM1-rotary.
    """

    name = "rotary"

    def __init__(self) -> None:
        self._lrs = LeastRecentlySelectedPolicy()

    def select(self, output: int, candidates: Sequence[Nomination]) -> Nomination:
        candidates = _split_starving(candidates)
        network = [c for c in candidates if c.source is SourceKind.NETWORK]
        pool = network if network else list(candidates)
        return self._lrs.select(output, pool)

    def notify_grant(self, output: int, winner: Nomination) -> None:
        self._lrs.notify_grant(output, winner)

    def reset(self) -> None:
        self._lrs.reset()


class OldestFirstPolicy(SelectionPolicy):
    """Grant the oldest waiting packet (an age-based priority chain)."""

    name = "oldest-first"

    def select(self, output: int, candidates: Sequence[Nomination]) -> Nomination:
        candidates = _split_starving(candidates)
        return max(candidates, key=lambda nom: (nom.age, -nom.row))


#: Row indices are small (the 21364 has 16 read-port arbiters); the
#: modulus only has to exceed the largest row index in use.
_ROW_MODULUS = 1 << 16


def make_policy(name: str, rng: random.Random | None = None) -> SelectionPolicy:
    """Instantiate a selection policy by name.

    ``"random"`` requires *rng*; the stateful policies ignore it.
    """
    if name == "random":
        if rng is None:
            raise ValueError("the random policy needs an rng")
        return RandomPolicy(rng)
    if name == "round-robin":
        return RoundRobinPolicy()
    if name == "least-recently-selected":
        return LeastRecentlySelectedPolicy()
    if name == "rotary":
        return RotaryRulePolicy()
    if name == "oldest-first":
        return OldestFirstPolicy()
    raise ValueError(f"unknown selection policy {name!r}")
