"""Parallel Iterative Matching (PIM) and its one-iteration variant PIM1.

PIM (Anderson et al., ASPLOS 1992) repeats three steps until no new
match can be made:

1. *Nominate* -- every unmatched input-port arbiter requests every
   output port it has a packet for (the same packet may be requested at
   several outputs).
2. *Grant* -- every unmatched output arbiter picks one requester
   uniformly at random and tells it so.
3. *Accept* -- an input arbiter that received several grants accepts
   one uniformly at random.

PIM converges in about ``log2 N`` iterations, which would cost the
21364 far too many cycles, so the paper evaluates **PIM1** -- a single
iteration -- in all timing studies.  A single iteration wastes grants
whenever two outputs grant the same input, which is exactly the
matching-quality gap Figures 8 and 9 quantify.
"""

from __future__ import annotations

import math
import random
from typing import Sequence

from repro.core.base import Arbiter, usable_nominations
from repro.core.types import Grant, Nomination, SourceKind


class PIMArbiter(Arbiter):
    """PIM with a configurable iteration count.

    Args:
        rng: source of randomness for the grant and accept steps.
        iterations: number of nominate/grant/accept rounds.  ``None``
            iterates until convergence (no unmatched request can still
            be served), which is the paper's "PIM".  ``1`` gives PIM1.
        rotary: when True, output arbiters grant network-sourced
            requests before local ones (Rotary Rule); the choice inside
            each class stays random.  The paper describes this
            extension for PIM1 but only evaluates it for WFA and SPAA.
    """

    def __init__(
        self,
        rng: random.Random,
        iterations: int | None = 1,
        rotary: bool = False,
    ) -> None:
        if iterations is not None and iterations < 1:
            raise ValueError("iterations must be >= 1 (or None for convergence)")
        self._rng = rng
        self._keyed = getattr(rng, "keyed_draw", None)
        self._iterations = iterations
        self._rotary = rotary
        suffix = "" if not rotary else "-rotary"
        if iterations is None:
            self.name = "PIM" + suffix
        else:
            self.name = f"PIM{iterations}" + suffix

    def _draw(self, kind: str, round_index: int, which: int, n: int) -> int:
        """One uniform draw in ``range(n)``.

        With a keyed rng (:class:`repro.kernels.rng.KeyedTrialRandom`)
        the draw is addressed by ``(kind, round, output-or-row)`` so the
        vectorized PIM1 kernel can reproduce it positionally; a plain
        ``random.Random`` consumes its sequential stream instead.
        """
        if self._keyed is not None:
            return self._keyed((kind, round_index, which), n)
        return self._rng.randrange(n)

    def arbitrate(
        self,
        nominations: Sequence[Nomination],
        free_outputs: frozenset[int],
    ) -> list[Grant]:
        usable = usable_nominations(nominations, free_outputs)
        if not usable:
            tel = self.telemetry
            if tel.enabled and nominations:
                tel.on_arbitration(
                    self.name,
                    nominated=len(nominations),
                    granted=0,
                    conflicts=len(nominations),
                )
            return []
        max_rounds = self._iterations
        if max_rounds is None:
            # PIM converges within log2(N) iterations with high
            # probability; N+1 rounds is a safe exact upper bound for
            # these tiny matrices and the loop below also stops as soon
            # as a round yields no new match.
            max_rounds = len(usable) + 1

        matched_rows: set[int] = set()
        matched_packets: set[int] = set()
        matched_outputs: set[int] = set()
        grants: list[Grant] = []
        wasted_grants = 0

        for round_index in range(max_rounds):
            # Nominate: every still-unmatched row requests all of its
            # candidate outputs that are still unmatched.
            requests: dict[int, list[Nomination]] = {}
            for nom, outputs in usable:
                if nom.row in matched_rows or nom.packet in matched_packets:
                    continue
                for out in outputs:
                    if out not in matched_outputs:
                        requests.setdefault(out, []).append(nom)
            if not requests:
                break

            # Grant: each output picks one requesting *input arbiter*
            # at random (network-first under the Rotary Rule), taking
            # that arbiter's oldest packet for this output.
            # Outputs draw in ascending order so each row's offer list
            # is ordered by output -- the accept draw below indexes it.
            offers: dict[int, list[tuple[int, Nomination]]] = {}
            for out in sorted(requests):
                candidates = requests[out]
                pool = candidates
                if self._rotary:
                    starving = [c for c in candidates if c.starving]
                    if starving:
                        pool = starving
                    else:
                        network = [
                            c for c in candidates
                            if c.source is SourceKind.NETWORK
                        ]
                        if network:
                            pool = network
                rows = sorted({nom.row for nom in pool})
                row = rows[self._draw("pim-grant", round_index, out, len(rows))]
                chosen = max(
                    (nom for nom in pool if nom.row == row),
                    key=lambda nom: nom.age,
                )
                offers.setdefault(chosen.row, []).append((out, chosen))

            # Accept: each row with offers accepts one at random.  Any
            # extra offers to the same row are the single-iteration
            # waste Figures 8/9 quantify.
            progressed = False
            for row in sorted(offers):
                wasted_grants += len(offers[row]) - 1
                out, nom = offers[row][
                    self._draw("pim-accept", round_index, row, len(offers[row]))
                ]
                grants.append(Grant(row=row, packet=nom.packet, output=out))
                matched_rows.add(row)
                matched_packets.add(nom.packet)
                matched_outputs.add(out)
                progressed = True
            if not progressed:
                break

        tel = self.telemetry
        if tel.enabled:
            tel.on_arbitration(
                self.name,
                nominated=len(nominations),
                granted=len(grants),
                conflicts=len(nominations) - len(grants),
            )
            if wasted_grants:
                tel.count_algo("pim_wasted_grants_total", self.name, wasted_grants)
        return grants


def expected_convergence_iterations(num_rows: int) -> int:
    """The paper's rule of thumb: PIM converges in about log2(N) rounds."""
    if num_rows < 1:
        raise ValueError("need at least one row")
    return max(1, math.ceil(math.log2(num_rows)))
