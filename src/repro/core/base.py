"""Abstract base class shared by all arbitration algorithms."""

from __future__ import annotations

import abc
from typing import Sequence

from repro.core.types import Grant, Nomination
from repro.obs.telemetry import NULL_TELEMETRY


class Arbiter(abc.ABC):
    """One arbitration decision engine for a single router.

    Subclasses implement :meth:`arbitrate`, which receives the cycle's
    nominations plus the set of currently-free output ports and returns
    a matching (see :func:`repro.core.types.validate_matching` for the
    exact invariants).  Arbiters may carry state between calls -- e.g.
    round-robin pointers or least-recently-selected history -- so one
    instance must be used per router and :meth:`reset` restores the
    power-on state.
    """

    #: human-readable algorithm name, e.g. ``"SPAA-rotary"``.
    name: str = "arbiter"

    #: observability hook (see :mod:`repro.obs`); the simulator swaps
    #: in a live :class:`~repro.obs.telemetry.Telemetry` when enabled.
    #: Instrumented arbitrate() implementations must guard every use
    #: with ``if self.telemetry.enabled`` so the default costs one
    #: predictable branch.
    telemetry = NULL_TELEMETRY

    @abc.abstractmethod
    def arbitrate(
        self,
        nominations: Sequence[Nomination],
        free_outputs: frozenset[int],
    ) -> list[Grant]:
        """Match nominations to free outputs for one arbitration."""

    def reset(self) -> None:
        """Restore power-on state (no-op for stateless arbiters)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


def usable_nominations(
    nominations: Sequence[Nomination],
    free_outputs: frozenset[int],
) -> list[tuple[Nomination, tuple[int, ...]]]:
    """Pair each nomination with the subset of its outputs that are free.

    Nominations whose candidate outputs are all busy are dropped; the
    remaining ones keep their preference order.  Every concrete arbiter
    starts from this filtered view, mirroring the hardware's readiness
    test ("is the targeted output port free?") in the LA stage.
    """
    usable = []
    for nom in nominations:
        outputs = tuple(o for o in nom.outputs if o in free_outputs)
        if outputs:
            usable.append((nom, outputs))
    return usable
