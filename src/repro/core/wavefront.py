"""The Wave-Front Arbiter (WFA), as in the SGI Spider switch.

WFA (Tamir & Chi, 1993) evaluates a two-dimensional connection matrix:
rows are input-port arbiters, columns are output ports, and a cell
(i, j) is *requested* when arbiter i nominated a packet for output j.
Evaluation sweeps the matrix in wave fronts starting from a priority
cell; a requested cell is granted when no earlier cell in its row or
column was granted::

    Grant(i,j) = Request(i,j) and N(i,j) and W(i,j)

Cells on one (wrapped) anti-diagonal touch distinct rows and columns,
so they are evaluated in parallel in hardware; our timing numbers
follow the faster *Wrapped* WFA exactly as the paper assumes.

Fairness comes from rotating the starting cell:

* ``WFA-base`` rotates round-robin over all cells (Tamir & Chi's
  suggestion, used by the paper as the baseline).
* ``WFA-rotary`` applies the Rotary Rule: the starting cell rotates
  over the rows belonging to *network* input ports only, so packets
  already in the network get the highest priority wave front.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.base import Arbiter, usable_nominations
from repro.core.types import Grant, Nomination


class WavefrontArbiter(Arbiter):
    """Wrapped wave-front arbitration over a rows x outputs matrix.

    Args:
        num_rows: height of the connection matrix (16 in the 21364).
        num_outputs: width of the connection matrix (7 in the 21364).
        rotary: rotate the starting cell over network rows only
            (``WFA-rotary``) instead of over every cell (``WFA-base``).
        network_rows: rows belonging to network input ports; required
            when *rotary* is set.
    """

    def __init__(
        self,
        num_rows: int,
        num_outputs: int,
        rotary: bool = False,
        network_rows: Sequence[int] = (),
    ) -> None:
        if num_rows < 1 or num_outputs < 1:
            raise ValueError("matrix dimensions must be positive")
        self._num_rows = num_rows
        self._num_outputs = num_outputs
        self._rotary = rotary
        self._network_rows = tuple(network_rows)
        if rotary and not self._network_rows:
            raise ValueError("WFA-rotary needs the set of network rows")
        if any(not 0 <= r < num_rows for r in self._network_rows):
            raise ValueError("network row out of range")
        self._pointer = 0
        self.name = "WFA-rotary" if rotary else "WFA-base"

    def reset(self) -> None:
        self._pointer = 0

    def arbitrate(
        self,
        nominations: Sequence[Nomination],
        free_outputs: frozenset[int],
    ) -> list[Grant]:
        usable = usable_nominations(nominations, free_outputs)
        if not usable:
            tel = self.telemetry
            if tel.enabled and nominations:
                tel.on_arbitration(
                    self.name,
                    nominated=len(nominations),
                    granted=0,
                    conflicts=len(nominations),
                )
            return []

        # Load the matrix: cell (row, out) holds the oldest nomination
        # requesting that pair.  Several nominations may share a row
        # (an input arbiter may offer different packets to different
        # outputs); the wave front guarantees at most one grant per
        # row and column.
        cells: dict[tuple[int, int], Nomination] = {}
        for nom, outputs in usable:
            if not 0 <= nom.row < self._num_rows:
                raise ValueError(f"row {nom.row} outside the {self._num_rows}-row matrix")
            for out in outputs:
                if not 0 <= out < self._num_outputs:
                    raise ValueError(
                        f"output {out} outside the {self._num_outputs}-column matrix"
                    )
                current = cells.get((nom.row, out))
                if current is None or _beats(nom, current):
                    cells[(nom.row, out)] = nom

        start_row, start_col = self._starting_cell(usable)
        granted_rows: set[int] = set()
        granted_cols: set[int] = set()
        granted_packets: set[int] = set()
        grants: list[Grant] = []

        # Wrapped wave fronts: diagonal d contains the cells whose
        # (row - start_row) mod R == (d - (col - start_col)) mod R, so
        # each diagonal touches every column at most once and distinct
        # rows.  Sweeping d = 0 .. R-1 visits every cell exactly once,
        # starting with the diagonal through the priority cell.
        rows, cols = self._num_rows, self._num_outputs
        for diagonal in range(rows):
            for col_offset in range(cols):
                col = (start_col + col_offset) % cols
                row = (start_row + diagonal - col_offset) % rows
                if row in granted_rows or col in granted_cols:
                    continue
                nom = cells.get((row, col))
                if nom is None or nom.packet in granted_packets:
                    continue
                grants.append(Grant(row=row, packet=nom.packet, output=col))
                granted_rows.add(row)
                granted_cols.add(col)
                granted_packets.add(nom.packet)

        self._advance_pointer()
        tel = self.telemetry
        if tel.enabled:
            tel.on_arbitration(
                self.name,
                nominated=len(nominations),
                granted=len(grants),
                conflicts=len(nominations) - len(grants),
            )
        return grants

    def _starting_cell(
        self, usable: Sequence[tuple[Nomination, tuple[int, ...]]]
    ) -> tuple[int, int]:
        if not self._rotary:
            pointer = self._pointer % (self._num_rows * self._num_outputs)
            return pointer // self._num_outputs, pointer % self._num_outputs
        # Rotary Rule: the highest-priority cell belongs to a network
        # row.  Starving (old-colored) packets pre-empt the rotation.
        starving_rows = sorted({
            nom.row for nom, _ in usable if nom.starving
        })
        if starving_rows:
            return starving_rows[0], self._pointer % self._num_outputs
        ring = self._network_rows
        row = ring[self._pointer % len(ring)]
        col = (self._pointer // len(ring)) % self._num_outputs
        return row, col

    def _advance_pointer(self) -> None:
        if self._rotary:
            period = len(self._network_rows) * self._num_outputs
        else:
            period = self._num_rows * self._num_outputs
        self._pointer = (self._pointer + 1) % period


def _beats(challenger: Nomination, incumbent: Nomination) -> bool:
    """Oldest packet wins a cell; starving packets outrank age."""
    challenger_key = (challenger.starving, challenger.age)
    incumbent_key = (incumbent.starving, incumbent.age)
    return challenger_key > incumbent_key
