"""Shared value types for arbitration algorithms.

The arbitration core is deliberately abstract: it knows about *rows*
(input-port arbiters, i.e. read ports), *groups* (input ports, which may
own several rows), *outputs* (output-port arbiters) and *packets*.  It
does not know about flits, virtual channels or torus coordinates --
those belong to :mod:`repro.router` and :mod:`repro.network`.  This
split lets the standalone matching model (Figures 8 and 9) and the full
timing model (Figures 10 and 11) drive the exact same algorithm code.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence


class SourceKind(enum.Enum):
    """Where a nomination's packet entered the router.

    The Rotary Rule (paper section 3.4) prioritizes ``NETWORK`` traffic
    (packets already travelling between routers) over ``LOCAL`` traffic
    (packets freshly injected by the cache, memory controllers or I/O).
    """

    NETWORK = "network"
    LOCAL = "local"


@dataclass(frozen=True, slots=True)
class Nomination:
    """A request presented to the arbitration algorithm.

    Attributes:
        row: index of the input-port arbiter (read port) making the
            nomination.  At most one grant is issued per row.
        packet: an opaque packet identity.  The same packet may appear
            in several nominations (PIM and WFA nominate a packet to up
            to two output ports); at most one grant is issued per
            packet.
        outputs: candidate output ports, in preference order.  SPAA
            nominations carry exactly one output; PIM/WFA/MCM
            nominations carry one or two (adaptive routing in the
            minimal rectangle allows at most two directions).
        source: whether the packet arrived from the network or from a
            local port, for Rotary-Rule prioritization.
        age: cycles the packet has been waiting; older wins ties where
            a policy consults age.
        group: index of the input *port* owning this row.  Used by MCM,
            which may be handed every waiting packet of a port rather
            than one pick per read port, together with
            ``group_capacity``.
        group_capacity: how many grants the group may receive in one
            arbitration (the 21364 has two read ports per input
            buffer).
        starving: set by the anti-starvation overlay for packets that
            exceeded the old-color threshold; starving packets outrank
            every prioritization policy, including the Rotary Rule.
    """

    row: int
    packet: int
    outputs: tuple[int, ...]
    source: SourceKind = SourceKind.NETWORK
    age: int = 0
    group: int | None = None
    group_capacity: int = 1
    starving: bool = False

    def __post_init__(self) -> None:
        if not self.outputs:
            raise ValueError("a nomination needs at least one candidate output")
        if len(set(self.outputs)) != len(self.outputs):
            raise ValueError(f"duplicate outputs in nomination: {self.outputs}")


@dataclass(frozen=True, slots=True)
class Grant:
    """A single (row, packet, output) match produced by an arbiter."""

    row: int
    packet: int
    output: int


def validate_matching(
    nominations: Sequence[Nomination],
    grants: Sequence[Grant],
    free_outputs: frozenset[int] | None = None,
) -> None:
    """Raise ``ValueError`` unless *grants* is a legal matching.

    A legal matching grants each row, packet and output at most once,
    grants only nominated (row, packet, output) combinations, respects
    group capacities and only uses free outputs.  Every arbiter in this
    package satisfies these invariants; the checker exists for tests
    and for validating third-party arbiters plugged into the models.
    """
    by_key = {(n.row, n.packet): n for n in nominations}
    rows_seen: set[int] = set()
    packets_seen: set[int] = set()
    outputs_seen: set[int] = set()
    group_counts: dict[int, int] = {}
    for grant in grants:
        nom = by_key.get((grant.row, grant.packet))
        if nom is None:
            raise ValueError(f"grant {grant} does not correspond to a nomination")
        if grant.output not in nom.outputs:
            raise ValueError(f"grant {grant} uses an output the packet cannot take")
        if free_outputs is not None and grant.output not in free_outputs:
            raise ValueError(f"grant {grant} uses a busy output")
        if grant.row in rows_seen:
            raise ValueError(f"row {grant.row} granted twice")
        if grant.packet in packets_seen:
            raise ValueError(f"packet {grant.packet} granted twice")
        if grant.output in outputs_seen:
            raise ValueError(f"output {grant.output} granted twice")
        rows_seen.add(grant.row)
        packets_seen.add(grant.packet)
        outputs_seen.add(grant.output)
        if nom.group is not None:
            group_counts[nom.group] = group_counts.get(nom.group, 0) + 1
            if group_counts[nom.group] > nom.group_capacity:
                raise ValueError(
                    f"group {nom.group} exceeded its capacity "
                    f"{nom.group_capacity}"
                )
