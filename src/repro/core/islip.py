"""iSLIP: the hardware-friendly PIM variant (McKeown, 1999).

The paper cites iSLIP as the practical descendant of PIM
("researchers have proposed variations of PIM, such as iSLIP, that can
be implemented in hardware, but their matching capabilities are
similar to PIM's").  iSLIP replaces PIM's random grant and accept
choices with round-robin pointers that advance **only past accepted
grants** -- the detail that de-synchronizes the pointers, removes the
random-number generator, and makes single-iteration throughput
converge to 100% for uniform ATM traffic.

Included for completeness and for the comparison study in
``examples/custom_arbiter.py``; the 21364 analysis applies to it
exactly as to PIM1 (same 4-cycle centralized-matrix implementation
cost, same multi-nomination bookkeeping).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.base import Arbiter, usable_nominations
from repro.core.types import Grant, Nomination


class ISLIPArbiter(Arbiter):
    """iSLIP with a configurable iteration count.

    Args:
        num_rows / num_outputs: matrix dimensions (pointer ranges).
        iterations: request/grant/accept rounds per arbitration (1 for
            the PIM1-comparable variant).
    """

    def __init__(self, num_rows: int, num_outputs: int, iterations: int = 1) -> None:
        if num_rows < 1 or num_outputs < 1:
            raise ValueError("matrix dimensions must be positive")
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self._num_rows = num_rows
        self._num_outputs = num_outputs
        self._iterations = iterations
        self._grant_pointer = [0] * num_outputs
        self._accept_pointer = [0] * num_rows
        self.name = "iSLIP" if iterations > 1 else "iSLIP1"

    def reset(self) -> None:
        self._grant_pointer = [0] * self._num_outputs
        self._accept_pointer = [0] * self._num_rows

    def arbitrate(
        self,
        nominations: Sequence[Nomination],
        free_outputs: frozenset[int],
    ) -> list[Grant]:
        usable = usable_nominations(nominations, free_outputs)
        if not usable:
            return []

        matched_rows: set[int] = set()
        matched_outputs: set[int] = set()
        matched_packets: set[int] = set()
        grants: list[Grant] = []

        for iteration in range(self._iterations):
            # Request: per (output, row) the oldest still-unmatched
            # nomination.
            requests: dict[int, dict[int, Nomination]] = {}
            for nom, outputs in usable:
                if (
                    nom.row in matched_rows
                    or nom.packet in matched_packets
                ):
                    continue
                for out in outputs:
                    if out in matched_outputs:
                        continue
                    current = requests.setdefault(out, {}).get(nom.row)
                    if current is None or nom.age > current.age:
                        requests[out][nom.row] = nom
            if not requests:
                break

            # Grant: first requesting row at or after the pointer.
            offers: dict[int, list[tuple[int, Nomination]]] = {}
            for out, by_row in requests.items():
                pointer = self._grant_pointer[out]
                row = min(
                    by_row, key=lambda r: (r - pointer) % self._num_rows
                )
                offers.setdefault(row, []).append((out, by_row[row]))

            # Accept: first offering output at or after the pointer;
            # pointers advance only on acceptance, and (per McKeown)
            # only in the first iteration.
            progressed = False
            for row in sorted(offers):
                pointer = self._accept_pointer[row]
                candidates = [
                    (out, nom) for out, nom in offers[row]
                    if nom.packet not in matched_packets
                ]
                if not candidates:
                    continue
                out, nom = min(
                    candidates,
                    key=lambda item: (item[0] - pointer) % self._num_outputs,
                )
                grants.append(Grant(row=row, packet=nom.packet, output=out))
                matched_rows.add(row)
                matched_outputs.add(out)
                matched_packets.add(nom.packet)
                progressed = True
                if iteration == 0:
                    self._accept_pointer[row] = (out + 1) % self._num_outputs
                    self._grant_pointer[out] = (row + 1) % self._num_rows
            if not progressed:
                break
        return grants
