"""OPF -- the naive "oldest packet first" straw man of Figure 2.

OPF picks the oldest packet at every input port and sends each to its
preferred output with no coordination at all: when several inputs pick
packets for the same output, all but one collide and are wasted.  The
paper uses OPF only to motivate why arbitration needs either
input/output interaction (PIM, WFA) or careful engineering of the
simple approach (SPAA); we implement it for the worked example of
Figure 2, for tests and as a pedagogical baseline.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.base import Arbiter, usable_nominations
from repro.core.types import Grant, Nomination


class OPFArbiter(Arbiter):
    """Uncoordinated oldest-packet-first arbitration."""

    name = "OPF"

    def arbitrate(
        self,
        nominations: Sequence[Nomination],
        free_outputs: frozenset[int],
    ) -> list[Grant]:
        # Each row fields its oldest nomination, aimed at the packet's
        # first-choice output -- no readiness negotiation, no retry
        # within the cycle.
        head_by_row: dict[int, tuple[Nomination, int]] = {}
        for nom, outputs in usable_nominations(nominations, free_outputs):
            current = head_by_row.get(nom.row)
            if current is None or nom.age > current[0].age:
                head_by_row[nom.row] = (nom, outputs[0])

        grants = []
        collisions = 0
        packets_seen: set[int] = set()
        outputs_seen: set[int] = set()
        for row in sorted(head_by_row):
            nom, output = head_by_row[row]
            if output in outputs_seen or nom.packet in packets_seen:
                collisions += 1  # arbitration collision: the packet is wasted
                continue
            grants.append(Grant(row=row, packet=nom.packet, output=output))
            outputs_seen.add(output)
            packets_seen.add(nom.packet)

        tel = self.telemetry
        if tel.enabled:
            # This is Figure 2's quantity: heads that picked an output
            # already claimed by another head this cycle.
            tel.on_arbitration(
                self.name,
                nominated=len(nominations),
                granted=len(grants),
                conflicts=collisions,
            )
        return grants
