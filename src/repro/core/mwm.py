"""Maximum-weight-matching reference arbiters: LQF and OCF.

Paper section 3: the arbitration problem can be modelled as maximum
weight matching (MWM) on the bipartite arbiter graph, with LQF
("longest queue first" -- weight = waiting packets behind the
nomination) and OCF ("oldest cell first" -- weight = waiting time) as
the classic weight choices.  MWM needs O(N^3) iterations in the worst
case, so -- like MCM -- these are *standalone-only references*: no
few-cycle hardware implementation exists, which is exactly why the
paper does not consider them for the 21364.

Following the scheduler literature (iLQF/iOCF), we implement the
standard greedy form: take nominations in descending weight and skip
conflicts.  Greedy is a 1/2-approximation of exact MWM, deterministic,
and is what the matching-capability comparisons in the standalone
model need.
"""

from __future__ import annotations

import enum
from typing import Sequence

from repro.core.base import Arbiter, usable_nominations
from repro.core.types import Grant, Nomination


class WeightRule(enum.Enum):
    """How a nomination's weight is derived."""

    #: longest queue first: the weight is the number of nominations
    #: sharing the packet's input port -- the visible proxy for queue
    #: length at that port.
    LQF = "lqf"
    #: oldest cell first: the nomination's age is the weight.
    OCF = "ocf"


class GreedyMWMArbiter(Arbiter):
    """Greedy maximum-weight matching (iLQF / iOCF style)."""

    def __init__(self, rule: WeightRule) -> None:
        self._rule = rule
        self.name = "LQF" if rule is WeightRule.LQF else "OCF"

    def arbitrate(
        self,
        nominations: Sequence[Nomination],
        free_outputs: frozenset[int],
    ) -> list[Grant]:
        usable = usable_nominations(nominations, free_outputs)
        if not usable:
            return []

        if self._rule is WeightRule.LQF:
            queue_depth: dict[int | None, int] = {}
            for nom, _ in usable:
                key = nom.group if nom.group is not None else nom.row
                queue_depth[key] = queue_depth.get(key, 0) + 1

            def weight(nom: Nomination) -> float:
                key = nom.group if nom.group is not None else nom.row
                return float(queue_depth[key])
        else:
            def weight(nom: Nomination) -> float:
                return float(nom.age)

        # Starving packets outrank all weights (anti-starvation), then
        # heaviest first; deterministic tie-break on (row, packet).
        order = sorted(
            usable,
            key=lambda item: (
                not item[0].starving,
                -weight(item[0]),
                item[0].row,
                item[0].packet,
            ),
        )

        grants: list[Grant] = []
        rows_used: set[int] = set()
        outputs_used: set[int] = set()
        packets_used: set[int] = set()
        group_counts: dict[int, int] = {}
        for nom, outputs in order:
            if nom.row in rows_used or nom.packet in packets_used:
                continue
            if nom.group is not None:
                if group_counts.get(nom.group, 0) >= nom.group_capacity:
                    continue
            for out in outputs:
                if out in outputs_used:
                    continue
                grants.append(Grant(row=nom.row, packet=nom.packet, output=out))
                rows_used.add(nom.row)
                outputs_used.add(out)
                packets_used.add(nom.packet)
                if nom.group is not None:
                    group_counts[nom.group] = group_counts.get(nom.group, 0) + 1
                break
        return grants
