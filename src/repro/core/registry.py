"""Arbiter factory: build any studied algorithm by its paper name."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.base import Arbiter
from repro.core.islip import ISLIPArbiter
from repro.core.mcm import MCMArbiter
from repro.core.mwm import GreedyMWMArbiter, WeightRule
from repro.core.opf import OPFArbiter
from repro.core.pim import PIMArbiter
from repro.core.spaa import SPAAArbiter
from repro.core.timing import (
    ArbitrationTiming,
    PIM1_TIMING,
    SPAA_TIMING,
    WFA_TIMING,
)
from repro.core.wavefront import WavefrontArbiter


#: How an algorithm's input side presents packets to the arbiter:
#: ``"pool"`` -- every waiting packet, port-capacity constrained (MCM
#: and the MWM references, which search exhaustively); ``"per-cell"``
#: -- each read-port arbiter offers per-output candidates (PIM, WFA,
#: iSLIP: the centralized-matrix algorithms); ``"single-output"`` --
#: one packet aimed at one output per input port (SPAA, OPF).
NOMINATION_STYLES = ("pool", "per-cell", "single-output")


@dataclass(frozen=True, slots=True)
class AlgorithmSpec:
    """Everything the models need to instantiate one algorithm."""

    name: str
    factory: Callable[["ArbiterContext"], Arbiter]
    timing: ArbitrationTiming | None
    #: whether the algorithm appears in timing studies (MCM and full
    #: PIM are standalone-only: no few-cycle hardware implementation).
    timing_capable: bool = True
    #: how the standalone model builds this algorithm's nominations.
    nomination_style: str = "per-cell"

    def __post_init__(self) -> None:
        if self.nomination_style not in NOMINATION_STYLES:
            raise ValueError(
                f"nomination_style must be one of {NOMINATION_STYLES}"
            )


@dataclass(frozen=True, slots=True)
class ArbiterContext:
    """Router-shape parameters handed to arbiter factories.

    Attributes:
        num_rows: input-port arbiters (read ports) -- 16 in the 21364.
        num_outputs: output ports -- 7 in the 21364.
        network_rows: rows fed by torus input ports (Rotary Rule).
        rng: per-router random source (PIM's grant/accept steps).
    """

    num_rows: int
    num_outputs: int
    network_rows: tuple[int, ...]
    rng: random.Random


def _registry() -> dict[str, AlgorithmSpec]:
    return {
        "MCM": AlgorithmSpec(
            "MCM", lambda ctx: MCMArbiter(), timing=None,
            timing_capable=False, nomination_style="pool",
        ),
        "PIM": AlgorithmSpec(
            "PIM",
            lambda ctx: PIMArbiter(ctx.rng, iterations=None),
            timing=None,
            timing_capable=False,
        ),
        "PIM1": AlgorithmSpec(
            "PIM1", lambda ctx: PIMArbiter(ctx.rng, iterations=1), timing=PIM1_TIMING
        ),
        "PIM1-rotary": AlgorithmSpec(
            "PIM1-rotary",
            lambda ctx: PIMArbiter(ctx.rng, iterations=1, rotary=True),
            timing=PIM1_TIMING,
        ),
        "WFA-base": AlgorithmSpec(
            "WFA-base",
            lambda ctx: WavefrontArbiter(ctx.num_rows, ctx.num_outputs),
            timing=WFA_TIMING,
        ),
        "WFA-rotary": AlgorithmSpec(
            "WFA-rotary",
            lambda ctx: WavefrontArbiter(
                ctx.num_rows,
                ctx.num_outputs,
                rotary=True,
                network_rows=ctx.network_rows,
            ),
            timing=WFA_TIMING,
        ),
        "SPAA-base": AlgorithmSpec(
            "SPAA-base", lambda ctx: SPAAArbiter(), timing=SPAA_TIMING,
            nomination_style="single-output",
        ),
        "SPAA-rotary": AlgorithmSpec(
            "SPAA-rotary", lambda ctx: SPAAArbiter(rotary=True),
            timing=SPAA_TIMING, nomination_style="single-output",
        ),
        "OPF": AlgorithmSpec(
            "OPF", lambda ctx: OPFArbiter(), timing=SPAA_TIMING,
            nomination_style="single-output",
        ),
        # Beyond the paper's headline set: the hardware-friendly PIM
        # variant it cites, and the MWM references of section 3.
        "iSLIP1": AlgorithmSpec(
            "iSLIP1",
            lambda ctx: ISLIPArbiter(ctx.num_rows, ctx.num_outputs),
            timing=PIM1_TIMING,
        ),
        "LQF": AlgorithmSpec(
            "LQF",
            lambda ctx: GreedyMWMArbiter(WeightRule.LQF),
            timing=None,
            timing_capable=False,
            nomination_style="pool",
        ),
        "OCF": AlgorithmSpec(
            "OCF",
            lambda ctx: GreedyMWMArbiter(WeightRule.OCF),
            timing=None,
            timing_capable=False,
            nomination_style="pool",
        ),
    }


ALGORITHMS: dict[str, AlgorithmSpec] = _registry()

#: Algorithms in the standalone matching study (Figures 8 and 9).
STANDALONE_ALGORITHMS: tuple[str, ...] = ("MCM", "WFA", "PIM", "PIM1", "SPAA")

#: Algorithms in the timing study (Figure 10).
TIMING_ALGORITHMS: tuple[str, ...] = (
    "PIM1", "WFA-base", "WFA-rotary", "SPAA-base", "SPAA-rotary"
)


def available_algorithms() -> Sequence[str]:
    """Names accepted by :func:`make_arbiter`."""
    return tuple(ALGORITHMS)


def make_arbiter(name: str, context: ArbiterContext) -> Arbiter:
    """Instantiate the named algorithm for one router.

    The standalone study's short names ``"WFA"`` and ``"SPAA"`` map to
    the base variants.
    """
    spec = ALGORITHMS.get(_canonical(name))
    if spec is None:
        raise ValueError(
            f"unknown algorithm {name!r}; choose from {sorted(ALGORITHMS)}"
        )
    return spec.factory(context)


def algorithm_timing(name: str) -> ArbitrationTiming:
    """The hardware timing of the named algorithm (timing studies)."""
    spec = ALGORITHMS.get(_canonical(name))
    if spec is None:
        raise ValueError(f"unknown algorithm {name!r}")
    if spec.timing is None:
        raise ValueError(
            f"{spec.name} has no few-cycle hardware implementation; it is "
            "restricted to standalone (non-timing) studies"
        )
    return spec.timing


def nomination_style(name: str) -> str:
    """How the standalone model should nominate for this algorithm."""
    spec = ALGORITHMS.get(_canonical(name))
    if spec is None:
        raise ValueError(f"unknown algorithm {name!r}")
    return spec.nomination_style


def canonical_name(name: str) -> str:
    """Resolve the standalone study's short aliases to registry names.

    ``"WFA"`` and ``"SPAA"`` mean the base variants; every other name
    passes through unchanged (including unknown ones -- callers that
    need existence checks look the result up in :data:`ALGORITHMS`).
    """
    aliases = {"WFA": "WFA-base", "SPAA": "SPAA-base"}
    return aliases.get(name, name)


_canonical = canonical_name
