"""SPAA -- the Simple Pipelined Arbitration Algorithm of the Alpha 21364.

SPAA (paper section 3.3) minimizes interaction between input and output
port arbiters so the arbitration fits in three cycles and pipelines
perfectly (a new input arbitration every cycle):

1. *Nominate* -- each input-port arbiter picks at most one packet and
   nominates it to exactly **one** output port.  A nominated packet
   may not be re-nominated until step 3 completes.
2. *Grant* -- each output arbiter independently picks one nomination:
   least-recently-selected input arbiter for ``SPAA-base``, Rotary Rule
   (network ports first, LRS within the class) for ``SPAA-rotary``.
3. *Reset* -- losing nominations are cleared so those packets can be
   nominated again.

Because an input arbiter commits to one output before knowing the
outcome, SPAA suffers arbitration collisions that PIM and WFA avoid --
that is the matching-quality gap of Figure 8, which shrinks to nothing
once most output ports are busy (Figure 9).

This class implements the grant step; the single-output nomination
discipline is the *caller's* job (the router's input arbiters), and is
enforced here by rejecting multi-output nominations.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.base import Arbiter, usable_nominations
from repro.core.policies import (
    LeastRecentlySelectedPolicy,
    RotaryRulePolicy,
    SelectionPolicy,
)
from repro.core.types import Grant, Nomination


class SPAAArbiter(Arbiter):
    """Independent per-output grant with a pluggable selection policy.

    Args:
        rotary: use the Rotary Rule instead of plain
            least-recently-selected (``SPAA-base``).
        policy: override the selection policy entirely (used by
            ablation studies); when given, *rotary* must be left False.
    """

    def __init__(
        self,
        rotary: bool = False,
        policy: SelectionPolicy | None = None,
    ) -> None:
        if policy is not None and rotary:
            raise ValueError("pass either rotary=True or an explicit policy")
        if policy is None:
            policy = RotaryRulePolicy() if rotary else LeastRecentlySelectedPolicy()
        self._policy = policy
        self.name = "SPAA-rotary" if rotary else f"SPAA-{policy.name}"
        if not rotary and isinstance(policy, LeastRecentlySelectedPolicy):
            self.name = "SPAA-base"

    def reset(self) -> None:
        self._policy.reset()

    def arbitrate(
        self,
        nominations: Sequence[Nomination],
        free_outputs: frozenset[int],
    ) -> list[Grant]:
        rows_seen: set[int] = set()
        packets_seen: set[int] = set()
        for nom in nominations:
            if len(nom.outputs) != 1:
                raise ValueError(
                    "SPAA input arbiters nominate a packet to exactly one "
                    f"output port; got {nom.outputs}"
                )
            if nom.row in rows_seen:
                raise ValueError(f"row {nom.row} nominated twice in one cycle")
            if nom.packet in packets_seen:
                raise ValueError(
                    f"packet {nom.packet} nominated by two read ports; the "
                    "read-port pair must synchronize"
                )
            rows_seen.add(nom.row)
            packets_seen.add(nom.packet)

        usable = usable_nominations(nominations, free_outputs)
        by_output: dict[int, list[Nomination]] = {}
        for nom, outputs in usable:
            by_output.setdefault(outputs[0], []).append(nom)

        grants = []
        for output in sorted(by_output):
            winner = self._policy.select(output, by_output[output])
            self._policy.notify_grant(output, winner)
            grants.append(Grant(row=winner.row, packet=winner.packet, output=output))

        tel = self.telemetry
        if tel.enabled:
            # SPAA's collisions split into two kinds: nominations whose
            # single output turned out busy (speculation waste) and
            # nominations that lost the output to another input arbiter.
            busy_drops = len(nominations) - len(usable)
            tel.on_arbitration(
                self.name,
                nominated=len(nominations),
                granted=len(grants),
                conflicts=len(nominations) - len(grants),
            )
            if busy_drops:
                tel.count_algo("spaa_busy_output_drops_total", self.name, busy_drops)
        return grants
