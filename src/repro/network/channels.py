"""Virtual channels of the 21364 network.

Each non-special coherence class owns a *virtual channel group* of
three channels -- ADAPTIVE, VC0 and VC1 -- and the special class has a
single channel, 19 virtual channels in all (paper section 2.1).
Packets route adaptively in the adaptive channel until blocked, then
fall into the dimension-ordered deadlock-free channels VC0/VC1 (and,
thanks to virtual cut-through, may later return to the adaptive
channel).  Coherence classes are ordered so that, e.g., a request can
never block a block response -- achieved here, as in hardware, by
giving every class its own buffer partition.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from functools import lru_cache

from repro.network.packets import PacketClass


class ChannelKind(enum.Enum):
    ADAPTIVE = "adaptive"
    VC0 = "vc0"
    VC1 = "vc1"


@dataclass(frozen=True, slots=True, eq=False)
class VirtualChannel:
    """One of the 19 virtual channels: a (class, kind) pair.

    Hashing and equality are by (class, kind) value with a precomputed
    hash -- channels are dictionary keys in the simulator's innermost
    loops, and the default dataclass hash (which re-hashes two enum
    members every call) dominated early profiles.
    """

    pclass: PacketClass
    kind: ChannelKind
    _hash: int = 0

    def __post_init__(self) -> None:
        if self.pclass is PacketClass.SPECIAL and self.kind is not ChannelKind.ADAPTIVE:
            raise ValueError("the special class has a single channel")
        if self.pclass.is_io and self.kind is ChannelKind.ADAPTIVE:
            raise ValueError("I/O packets only use the deadlock-free channels")
        object.__setattr__(self, "_hash", hash((self.pclass, self.kind)))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, VirtualChannel):
            return NotImplemented
        return self.pclass is other.pclass and self.kind is other.kind


@lru_cache(maxsize=None)
def all_virtual_channels() -> tuple[VirtualChannel, ...]:
    """The 21364's virtual channels (interned: always the same tuple)."""
    channels = []
    for pclass in PacketClass:
        if pclass is PacketClass.SPECIAL:
            channels.append(VirtualChannel(pclass, ChannelKind.ADAPTIVE))
            continue
        kinds = (
            (ChannelKind.VC0, ChannelKind.VC1)
            if pclass.is_io
            else (ChannelKind.ADAPTIVE, ChannelKind.VC0, ChannelKind.VC1)
        )
        for kind in kinds:
            channels.append(VirtualChannel(pclass, kind))
    return tuple(channels)


@dataclass(frozen=True)
class BufferPlan:
    """Per-input-port packet-buffer allocation across channels.

    The 21364 provides buffer space for 316 packets per input port;
    the adaptive channels hold the bulk while each escape channel
    (VC0/VC1) holds one or two packets (paper section 2.1).  The
    default plan reserves one packet per escape channel and splits the
    rest over the adaptive channels roughly in proportion to each
    class's share of the coherence traffic.
    """

    adaptive_capacity: dict[PacketClass, int] = field(default_factory=dict)
    escape_capacity: int = 1
    special_capacity: int = 4

    def __post_init__(self) -> None:
        if not self.adaptive_capacity:
            # Defaults sized for the 70/30 request/forward/response mix;
            # together with the escape and special buffers they total
            # the paper's 316 packets (see total_packets).
            object.__setattr__(
                self,
                "adaptive_capacity",
                {
                    PacketClass.REQUEST: 80,
                    PacketClass.FORWARD: 40,
                    PacketClass.BLOCK_RESPONSE: 136,
                    PacketClass.NONBLOCK_RESPONSE: 40,
                },
            )
        if self.escape_capacity < 1:
            raise ValueError("escape channels need at least one buffer")
        for pclass, capacity in self.adaptive_capacity.items():
            if not pclass.adaptive_allowed:
                raise ValueError(f"{pclass} has no adaptive channel")
            if capacity < 1:
                raise ValueError("adaptive capacities must be positive")

    def capacity(self, channel: VirtualChannel) -> int:
        """Packet capacity of one virtual channel at one input port."""
        if channel.pclass is PacketClass.SPECIAL:
            return self.special_capacity
        if channel.kind is ChannelKind.ADAPTIVE:
            return self.adaptive_capacity[channel.pclass]
        # I/O classes ride only VC0/VC1; give them modest FIFO room so
        # the I/O ordering rules (strict escape routing) still flow.
        if channel.pclass.is_io:
            return max(self.escape_capacity, 2)
        return self.escape_capacity

    def total_packets(self) -> int:
        """Total packet buffering per input port under this plan."""
        return sum(self.capacity(channel) for channel in all_virtual_channels())


def default_buffer_plan() -> BufferPlan:
    """The plan matching the paper's 316 packets per input port."""
    plan = BufferPlan()
    return plan


@lru_cache(maxsize=None)
def adaptive_channel(pclass: PacketClass) -> VirtualChannel:
    """The (interned) adaptive channel of a coherence class."""
    return VirtualChannel(pclass, ChannelKind.ADAPTIVE)


@lru_cache(maxsize=None)
def escape_channel(pclass: PacketClass, index: int) -> VirtualChannel:
    """The (interned) escape channel VC0 or VC1 of a coherence class."""
    if index not in (0, 1):
        raise ValueError("escape channels are VC0 and VC1")
    kind = ChannelKind.VC0 if index == 0 else ChannelKind.VC1
    return VirtualChannel(pclass, kind)


def entry_channel(pclass: PacketClass) -> VirtualChannel:
    """The channel a freshly injected packet of *pclass* starts in.

    Non-I/O packets start in their adaptive channel; I/O packets ride
    only the deadlock-free channels (the 21364's I/O ordering rules)
    and the special class has its single channel.
    """
    if pclass.adaptive_allowed or pclass is PacketClass.SPECIAL:
        return adaptive_channel(pclass)
    return escape_channel(pclass, 0)
