"""Clocking and link timing constants of the 21364 network.

The router core runs at 1.2 GHz while the inter-chip links run at
0.8 GHz (paper section 2.2): a torus output port therefore emits one
flit every 1.5 core cycles, while the two local sink ports deliver one
flit per core cycle.  Link latency is 3 network clocks, and the on-chip
pin-to-pin path adds 13 core cycles.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class ClockSpec:
    """Core and link clock frequencies.

    Attributes:
        core_ghz: router core clock (1.2 GHz in the 21364).
        link_ghz: inter-router link clock (0.8 GHz in the 21364).
    """

    core_ghz: float = 1.2
    link_ghz: float = 0.8

    def __post_init__(self) -> None:
        if self.core_ghz <= 0 or self.link_ghz <= 0:
            raise ValueError("clock frequencies must be positive")
        if self.link_ghz > self.core_ghz:
            raise ValueError("the 21364-style link clock never beats the core")

    @property
    def cycle_ns(self) -> float:
        """One core cycle in nanoseconds (0.8333 ns at 1.2 GHz)."""
        return 1.0 / self.core_ghz

    @property
    def link_cycle_ns(self) -> float:
        """One link (network) clock in nanoseconds."""
        return 1.0 / self.link_ghz

    @property
    def core_cycles_per_flit_on_link(self) -> float:
        """Core cycles per flit on a torus link (1.5 in the 21364)."""
        return self.core_ghz / self.link_ghz


@dataclass(frozen=True, slots=True)
class LinkSpec:
    """Latency parameters of one hop.

    Attributes:
        pin_to_pin_cycles: on-chip latency from a network input pin to
            a network output pin, including the router pipeline plus
            synchronization, pad and transport delays (13 core cycles).
        link_latency_network_clocks: wire latency between chips,
            measured in link clocks (3 in the paper's runs).
        local_port_cycles: local-port pipeline latency (router-table
            lookup and decode for injections, crossbar+ECC for sinks);
            about 3 core cycles, matching the paper's 2.5 ns local-port
            component of the 45 ns minimum latency.
    """

    pin_to_pin_cycles: float = 13.0
    link_latency_network_clocks: float = 3.0
    local_port_cycles: float = 3.0

    def __post_init__(self) -> None:
        if min(
            self.pin_to_pin_cycles,
            self.link_latency_network_clocks,
            self.local_port_cycles,
        ) < 0:
            raise ValueError("latencies cannot be negative")

    def hop_latency_cycles(self, clocks: ClockSpec) -> float:
        """Core cycles for a header to cross one router + link."""
        link_cycles = self.link_latency_network_clocks * (
            clocks.core_ghz / clocks.link_ghz
        )
        return self.pin_to_pin_cycles + link_cycles


@dataclass(frozen=True, slots=True)
class LinkRetrySpec:
    """Link-level retransmission policy (bounded retries + backoff).

    The 21364's inter-chip links carry per-flit ECC and a link-level
    retry protocol: a flit that arrives corrupted (or not at all) is
    retransmitted rather than lost.  We model the recovery path as a
    bounded number of retransmissions with exponential backoff in core
    cycles; a packet that exhausts its retries is dropped with a
    recorded reason (see :mod:`repro.resilience.faults`).

    Attributes:
        max_retries: retransmission attempts before the packet is
            declared lost.
        backoff_base_cycles: pause before the first retransmission, in
            core cycles.
        backoff_factor: multiplier applied per successive retry.
        jitter: fractional randomization of each backoff -- the actual
            wait is the nominal one scaled by a uniform factor in
            ``[1 - jitter, 1 + jitter]``, drawn from the fault
            injector's dedicated (seeded) backoff stream.  Without it,
            every packet faulted in the same burst would retransmit in
            lockstep and re-collide -- the classic retry storm.  0
            restores the deterministic legacy series.
    """

    max_retries: int = 8
    backoff_base_cycles: float = 4.0
    backoff_factor: float = 2.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries cannot be negative")
        if self.backoff_base_cycles < 0:
            raise ValueError("backoff_base_cycles cannot be negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1 (no shrinking waits)")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def backoff_cycles(self, attempt: int) -> float:
        """Nominal core cycles before retransmission *attempt* (0-based).

        This is the un-jittered policy value; the fault injector's
        :meth:`~repro.resilience.faults.FaultInjector.retry_backoff_cycles`
        applies the seeded jitter on top.
        """
        return self.backoff_base_cycles * self.backoff_factor**attempt


DEFAULT_CLOCKS = ClockSpec()
DEFAULT_LINK = LinkSpec()
DEFAULT_LINK_RETRY = LinkRetrySpec()
