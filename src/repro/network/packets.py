"""Coherence packet classes and the Packet record.

The 21364 network carries seven classes of coherence packets (paper
section 2.1).  Flits are 39 bits (32 data + 7 ECC); a 19-flit block
response carries a 64-byte cache line (3 header flits + 16 data flits).
"""

from __future__ import annotations

import enum
import itertools
from typing import Iterator

from repro.network.topology import Direction


class PacketClass(enum.Enum):
    """The seven coherence packet classes with their flit counts.

    Where the paper gives a range (block response 18-19 flits,
    non-block response 2-3) we use the larger value, which is the one
    its traffic mix exercises (64-byte block responses).
    """

    REQUEST = ("request", 3)
    FORWARD = ("forward", 3)
    BLOCK_RESPONSE = ("block_response", 19)
    NONBLOCK_RESPONSE = ("nonblock_response", 3)
    WRITE_IO = ("write_io", 19)
    READ_IO = ("read_io", 3)
    SPECIAL = ("special", 1)

    def __init__(self, label: str, flits: int) -> None:
        self.label = label
        self.flits = flits

    @property
    def is_io(self) -> bool:
        return self in (PacketClass.WRITE_IO, PacketClass.READ_IO)

    @property
    def has_escape_channels(self) -> bool:
        """All classes except SPECIAL get adaptive + VC0 + VC1."""
        return self is not PacketClass.SPECIAL

    @property
    def adaptive_allowed(self) -> bool:
        """I/O packets only ride the deadlock-free channels (ordering)."""
        return not self.is_io and self is not PacketClass.SPECIAL


FLIT_BITS = 39
DATA_BITS_PER_FLIT = 32
ECC_BITS_PER_FLIT = 7


class Packet:
    """One network packet travelling through the torus.

    A mutable record (plain attributes, ``__slots__`` for speed in the
    simulator's hot path) rather than a dataclass: millions are created
    per run.
    """

    __slots__ = (
        "uid",
        "pclass",
        "source",
        "destination",
        "transaction",
        "injected_at",
        "entered_network_at",
        "hops",
        "escape_vc",
        "waiting_since",
        "last_direction",
        "sink_outputs",
    )

    _uids = itertools.count()

    def __init__(
        self,
        pclass: PacketClass,
        source: int,
        destination: int,
        transaction: int | None = None,
        injected_at: float = 0.0,
        sink_outputs: tuple[int, ...] | None = None,
    ) -> None:
        self.uid = next(Packet._uids)
        self.pclass = pclass
        self.source = source
        self.destination = destination
        self.transaction = transaction
        self.injected_at = injected_at
        self.entered_network_at = injected_at
        self.hops = 0
        #: escape virtual channel (0 or 1) once the packet leaves the
        #: adaptive channel; None while adaptively routed.
        self.escape_vc: int | None = None
        self.waiting_since = injected_at
        self.last_direction: Direction | None = None
        #: local output ports the packet may sink through at its
        #: destination router; None means "either L0 or L1" (the
        #: default for responses, both being tied to the cache).
        self.sink_outputs = sink_outputs

    @property
    def flits(self) -> int:
        return self.pclass.flits

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Packet #{self.uid} {self.pclass.label} "
            f"{self.source}->{self.destination}>"
        )


def packet_uid_stream() -> Iterator[int]:
    """The shared uid counter (exposed for tests)."""
    return Packet._uids
