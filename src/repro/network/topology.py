"""Two-dimensional torus topology, as used by the 21364 network.

The Alpha 21364 connects up to 128 processors in a 2D torus (paper
section 2.1).  Nodes are dense integers; coordinates are ``(x, y)``
with x growing east and y growing north, and both dimensions wrap.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Direction(enum.IntEnum):
    """The four torus directions; values match router port indices."""

    NORTH = 0
    SOUTH = 1
    EAST = 2
    WEST = 3

    @property
    def opposite(self) -> "Direction":
        return _OPPOSITE[self]

    @property
    def dimension(self) -> int:
        """0 for east/west (x), 1 for north/south (y)."""
        return 0 if self in (Direction.EAST, Direction.WEST) else 1

    @property
    def positive(self) -> bool:
        """Whether the direction increases its coordinate."""
        return self in (Direction.EAST, Direction.NORTH)


_OPPOSITE = {
    Direction.NORTH: Direction.SOUTH,
    Direction.SOUTH: Direction.NORTH,
    Direction.EAST: Direction.WEST,
    Direction.WEST: Direction.EAST,
}


@dataclass(frozen=True)
class Torus2D:
    """A ``width x height`` torus.

    The 21364 network scales to 128 processors; the paper evaluates
    4x4, 8x8 and (beyond the product's limit) 12x12 meshes of it.
    This class has no such cap -- the 128-node limit was a product
    constraint, not a topology one -- but :mod:`repro.sim.config`
    warns when modelling beyond the hardware's range.
    """

    width: int
    height: int
    #: lazily built routing caches -- pure functions of (src, dst), hit
    #: millions of times per simulation (excluded from eq/repr).
    _minimal_cache: dict = field(
        default_factory=dict, compare=False, repr=False
    )
    _wrap_cache: dict = field(default_factory=dict, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.width < 2 or self.height < 2:
            raise ValueError("a torus needs at least 2 nodes per dimension")

    @property
    def num_nodes(self) -> int:
        return self.width * self.height

    def coordinates(self, node: int) -> tuple[int, int]:
        """(x, y) of *node*."""
        self._check(node)
        return node % self.width, node // self.width

    def node_at(self, x: int, y: int) -> int:
        """Node id at wrapped coordinates (x, y)."""
        return (x % self.width) + (y % self.height) * self.width

    def neighbor(self, node: int, direction: Direction) -> int:
        """The adjacent node in *direction* (always exists on a torus)."""
        x, y = self.coordinates(node)
        if direction is Direction.EAST:
            return self.node_at(x + 1, y)
        if direction is Direction.WEST:
            return self.node_at(x - 1, y)
        if direction is Direction.NORTH:
            return self.node_at(x, y + 1)
        return self.node_at(x, y - 1)

    def ring_offset(self, src: int, dst: int, dimension: int) -> int:
        """Signed minimal offset from *src* to *dst* along *dimension*.

        Positive means east (dimension 0) or north (dimension 1).  On
        an even-sized ring the half-way distance is reachable both
        ways; we resolve the tie toward the positive direction so the
        "minimal rectangle" is always well defined, matching the need
        for a deterministic route set in hardware.
        """
        size = self.width if dimension == 0 else self.height
        src_c = self.coordinates(src)[dimension]
        dst_c = self.coordinates(dst)[dimension]
        forward = (dst_c - src_c) % size
        if forward == 0:
            return 0
        backward = size - forward
        if forward < backward or forward == backward:
            return forward
        return -backward

    def distance(self, src: int, dst: int) -> int:
        """Minimal hop count between two nodes."""
        return abs(self.ring_offset(src, dst, 0)) + abs(
            self.ring_offset(src, dst, 1)
        )

    def minimal_directions(self, src: int, dst: int) -> tuple[Direction, ...]:
        """Productive directions inside the minimal rectangle.

        At most two (one per dimension with remaining offset); empty
        when *src* equals *dst*.  This is the adaptive route set of the
        21364: packets adaptively pick among these at every hop.
        """
        cached = self._minimal_cache.get((src, dst))
        if cached is not None:
            return cached
        self._check(src)
        self._check(dst)
        directions = []
        dx = self.ring_offset(src, dst, 0)
        if dx > 0:
            directions.append(Direction.EAST)
        elif dx < 0:
            directions.append(Direction.WEST)
        dy = self.ring_offset(src, dst, 1)
        if dy > 0:
            directions.append(Direction.NORTH)
        elif dy < 0:
            directions.append(Direction.SOUTH)
        result = tuple(directions)
        self._minimal_cache[(src, dst)] = result
        return result

    def crosses_wraparound(self, node: int, direction: Direction) -> bool:
        """Whether the hop from *node* in *direction* uses a wrap link.

        Used by the escape channels' dateline rule: a packet switches
        from VC0 to VC1 when it crosses the wrap link of a ring, which
        breaks the ring's cyclic channel dependency (Duato/Dally).
        """
        cached = self._wrap_cache.get((node, direction))
        if cached is not None:
            return cached
        x, y = self.coordinates(node)
        if direction is Direction.EAST:
            result = x == self.width - 1
        elif direction is Direction.WEST:
            result = x == 0
        elif direction is Direction.NORTH:
            result = y == self.height - 1
        else:
            result = y == 0
        self._wrap_cache[(node, direction)] = result
        return result

    def average_distance(self) -> float:
        """Mean minimal distance over all ordered pairs (src != dst)."""
        total = 0
        for src in range(self.num_nodes):
            for dst in range(self.num_nodes):
                if src != dst:
                    total += self.distance(src, dst)
        return total / (self.num_nodes * (self.num_nodes - 1))

    def _check(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} outside 0..{self.num_nodes - 1}")
