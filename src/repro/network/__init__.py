"""Network substrate: torus topology, packets, virtual channels, links."""

from repro.network.channels import (
    BufferPlan,
    ChannelKind,
    VirtualChannel,
    all_virtual_channels,
    default_buffer_plan,
)
from repro.network.links import DEFAULT_CLOCKS, DEFAULT_LINK, ClockSpec, LinkSpec
from repro.network.packets import (
    DATA_BITS_PER_FLIT,
    ECC_BITS_PER_FLIT,
    FLIT_BITS,
    Packet,
    PacketClass,
)
from repro.network.routing import (
    adaptive_candidates,
    dimension_order_direction,
    escape_vc_after_hop,
    is_productive,
)
from repro.network.topology import Direction, Torus2D

__all__ = [
    "BufferPlan",
    "ChannelKind",
    "ClockSpec",
    "DATA_BITS_PER_FLIT",
    "DEFAULT_CLOCKS",
    "DEFAULT_LINK",
    "Direction",
    "ECC_BITS_PER_FLIT",
    "FLIT_BITS",
    "LinkSpec",
    "Packet",
    "PacketClass",
    "Torus2D",
    "VirtualChannel",
    "adaptive_candidates",
    "all_virtual_channels",
    "default_buffer_plan",
    "dimension_order_direction",
    "escape_vc_after_hop",
    "is_productive",
]
