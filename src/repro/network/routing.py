"""Routing functions: adaptive minimal-rectangle + dimension-order escape.

The 21364 routes packets adaptively within the *minimal rectangle*
(paper section 2.1): at every hop a packet may take any productive
direction, of which there are at most two.  Blocked packets fall into
the deadlock-free escape channels VC0/VC1, which follow strict
dimension-order (x then y) routing with a dateline VC switch per ring
-- Duato's theory makes the combination deadlock-free even though
virtual cut-through lets packets return to the adaptive channel.
"""

from __future__ import annotations

from repro.network.packets import Packet
from repro.network.topology import Direction, Torus2D


def adaptive_candidates(
    topology: Torus2D, current: int, destination: int
) -> tuple[Direction, ...]:
    """Productive directions for adaptive routing (at most two)."""
    return topology.minimal_directions(current, destination)


_DIMENSION_ORDER_CACHE: dict[tuple[int, int, int], Direction | None] = {}


def dimension_order_direction(
    topology: Torus2D, current: int, destination: int
) -> Direction | None:
    """The single escape-route direction: finish x before starting y."""
    key = (id(topology), current, destination)
    if key in _DIMENSION_ORDER_CACHE:
        return _DIMENSION_ORDER_CACHE[key]
    dx = topology.ring_offset(current, destination, 0)
    if dx > 0:
        result = Direction.EAST
    elif dx < 0:
        result = Direction.WEST
    else:
        dy = topology.ring_offset(current, destination, 1)
        if dy > 0:
            result = Direction.NORTH
        elif dy < 0:
            result = Direction.SOUTH
        else:
            result = None
    _DIMENSION_ORDER_CACHE[key] = result
    return result


def escape_vc_after_hop(
    topology: Torus2D,
    packet: Packet,
    current: int,
    direction: Direction,
) -> int:
    """Escape VC the packet occupies after hopping from *current*.

    Dateline rule: a packet enters the escape network on VC0 and moves
    to VC1 when its hop crosses a ring's wrap-around link.  Because
    dimension-order routing visits each ring once, this breaks the
    cyclic dependency on every ring, so VC0/VC1 form a deadlock-free
    escape network (Dally's dateline argument).  When a packet turns
    from the x ring into the y ring it restarts on VC0 -- dimension
    order guarantees it never returns to x.
    """
    previous = packet.escape_vc if packet.escape_vc is not None else 0
    if packet.last_direction is not None and (
        packet.last_direction.dimension != direction.dimension
    ):
        previous = 0  # new ring, restart before its dateline
    if topology.crosses_wraparound(current, direction):
        return 1
    return previous


def is_productive(
    topology: Torus2D, current: int, destination: int, direction: Direction
) -> bool:
    """Whether a hop in *direction* stays inside the minimal rectangle."""
    return direction in topology.minimal_directions(current, destination)
