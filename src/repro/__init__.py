"""repro: a reproduction of the Alpha 21364 router arbitration study.

Implements SPAA, the Rotary Rule and the comparison arbitration
algorithms (PIM, PIM1, WFA, MCM, OPF) from Mukherjee et al., "A
Comparative Study of Arbitration Algorithms for the Alpha 21364
Pipelined Router" (ASPLOS 2002), together with the full simulation
substrate needed to regenerate every figure in the paper: the 2D torus
network, the 21364 router pipeline, virtual cut-through routing with
escape channels, the coherence-protocol workload, and the standalone
and timing performance models.

Quickstart::

    from repro.sim import StandaloneConfig, measure_matches
    print(measure_matches(StandaloneConfig(algorithm="SPAA", load=64)))

    from repro.sim import SimulationConfig, simulate_bnf_point
    point = simulate_bnf_point(SimulationConfig(algorithm="SPAA-rotary"))
    print(point.throughput, point.latency_ns)
"""

from repro.core import (
    MCMArbiter,
    OPFArbiter,
    PIMArbiter,
    SPAAArbiter,
    WavefrontArbiter,
    make_arbiter,
)
from repro.sim import (
    NetworkSimulator,
    SimulationConfig,
    StandaloneConfig,
    measure_matches,
    simulate,
    simulate_bnf_point,
)

__version__ = "1.0.0"

__all__ = [
    "MCMArbiter",
    "NetworkSimulator",
    "OPFArbiter",
    "PIMArbiter",
    "SPAAArbiter",
    "SimulationConfig",
    "StandaloneConfig",
    "WavefrontArbiter",
    "__version__",
    "make_arbiter",
    "measure_matches",
    "simulate",
    "simulate_bnf_point",
]
