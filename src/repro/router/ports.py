"""Port naming for the 21364 router: 8 input ports, 7 output ports.

Input ports: four 2D-torus ports (north/south/east/west), one cache
port, two memory-controller ports and one I/O port.  Output ports:
four torus ports, two local ports L0/L1 (each tied to a memory
controller *and* the internal cache -- there is no separate cache
output port) and one I/O port (paper section 2.1).

Every input buffer has two read ports; each (input port, read port)
pair owns one of the 16 input-port arbiters, indexed by *row* in the
connection matrix of Figure 5.
"""

from __future__ import annotations

import enum

from repro.network.topology import Direction


class InputPort(enum.IntEnum):
    NORTH = 0
    SOUTH = 1
    EAST = 2
    WEST = 3
    CACHE = 4
    MC0 = 5
    MC1 = 6
    IO = 7

    @property
    def is_network(self) -> bool:
        """Torus ports carry traffic already in the network."""
        return self <= InputPort.WEST

    @property
    def direction(self) -> Direction:
        """The torus direction of a network input port."""
        if self > InputPort.WEST:
            raise ValueError(f"{self.name} is a local port")
        return _DIRECTIONS[self]


class OutputPort(enum.IntEnum):
    NORTH = 0
    SOUTH = 1
    EAST = 2
    WEST = 3
    L0 = 4
    L1 = 5
    IO = 6

    @property
    def is_network(self) -> bool:
        return self <= OutputPort.WEST

    @property
    def is_local(self) -> bool:
        return not self.is_network

    @property
    def direction(self) -> Direction:
        if not self.is_network:
            raise ValueError(f"{self.name} is a local port")
        return Direction(int(self))


NUM_INPUT_PORTS = len(InputPort)
NUM_OUTPUT_PORTS = len(OutputPort)
READ_PORTS_PER_INPUT = 2
NUM_ROWS = NUM_INPUT_PORTS * READ_PORTS_PER_INPUT  # 16 input-port arbiters

TORUS_OUTPUTS = (OutputPort.NORTH, OutputPort.SOUTH, OutputPort.EAST, OutputPort.WEST)
LOCAL_OUTPUTS = (OutputPort.L0, OutputPort.L1, OutputPort.IO)
LOCAL_INPUTS = (InputPort.CACHE, InputPort.MC0, InputPort.MC1, InputPort.IO)


def row_of(port: InputPort, read_port: int) -> int:
    """Connection-matrix row of one read-port arbiter."""
    if not 0 <= read_port < READ_PORTS_PER_INPUT:
        raise ValueError(f"read port {read_port} out of range")
    return int(port) * READ_PORTS_PER_INPUT + read_port


def port_of_row(row: int) -> tuple[InputPort, int]:
    """Inverse of :func:`row_of`."""
    if not 0 <= row < NUM_ROWS:
        raise ValueError(f"row {row} out of range")
    return InputPort(row // READ_PORTS_PER_INPUT), row % READ_PORTS_PER_INPUT


def network_rows() -> tuple[int, ...]:
    """Rows fed by torus input ports (the Rotary Rule's priority set)."""
    return tuple(
        row_of(port, rp)
        for port in InputPort
        if port.is_network
        for rp in range(READ_PORTS_PER_INPUT)
    )


def output_for_direction(direction: Direction) -> OutputPort:
    """The torus output port that sends packets in *direction*."""
    return _OUTPUT_FOR_DIRECTION[direction]


def input_for_direction(direction: Direction) -> InputPort:
    """The input port receiving packets that travelled in *direction*.

    A packet moving EAST leaves via the EAST output and arrives at the
    downstream router's WEST input port.
    """
    return _INPUT_FOR_DIRECTION[direction]


# Hot-path lookup tables (enum construction is surprisingly costly).
_DIRECTIONS = {port: Direction(int(port)) for port in list(InputPort)[:4]}
_OUTPUT_FOR_DIRECTION = {d: OutputPort(int(d)) for d in Direction}
_INPUT_FOR_DIRECTION = {d: InputPort(int(d.opposite)) for d in Direction}
