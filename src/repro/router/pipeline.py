"""The 21364 router pipeline stages (Figure 4), as reference data.

The timing simulator collapses the pipeline into a handful of latency
constants (see :mod:`repro.network.links` and
:mod:`repro.core.timing`); this module keeps the full stage-by-stage
structure so documentation, tests and latency budgets can refer to the
real pipeline.  Stage mnemonics follow the paper: RT = router-table
lookup, DW = decode & write entry table, LA = input-port (local)
arbitration, RE = read entry table & transport, GA = output-port
(global) arbitration, WrQ/RQ = write/read input queue, X = crossbar,
ECC = error correction, T = transport, W = wait, Nop = no operation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Stage(enum.Enum):
    RT = "router table lookup"
    NOP = "no operation"
    T = "transport (wire delay)"
    DW = "decode and write entry table"
    LA = "input port arbitration"
    RE = "read entry table and transport"
    GA = "output port arbitration"
    W = "wait"
    WRQ = "write input queue"
    RQ = "read input queue"
    X = "crossbar"
    ECC = "error correction code"


#: The three arbitration stages this paper studies.
ARBITRATION_STAGES = (Stage.LA, Stage.RE, Stage.GA)


@dataclass(frozen=True, slots=True)
class PipelineSpec:
    """One of the nine logical router pipelines (input kind x output kind)."""

    name: str
    scheduling_stages: tuple[Stage, ...]
    data_stages: tuple[Stage, ...]

    @property
    def scheduling_latency(self) -> int:
        """Cycles of the first flit's scheduling pipeline."""
        return len(self.scheduling_stages)

    @property
    def data_latency(self) -> int:
        """Cycles of the data pipeline followed by every flit."""
        return len(self.data_stages)

    @property
    def arbitration_latency(self) -> int:
        """Cycles spent in LA/RE/GA -- what SPAA's 3 cycles refer to."""
        return sum(
            1 for stage in self.scheduling_stages if stage in ARBITRATION_STAGES
        )


#: Figure 4(a): local input port to interprocessor output port.
LOCAL_TO_NETWORK = PipelineSpec(
    name="local->network",
    scheduling_stages=(
        Stage.RT, Stage.NOP, Stage.NOP, Stage.DW, Stage.LA, Stage.RE, Stage.GA
    ),
    data_stages=(
        Stage.NOP, Stage.NOP, Stage.NOP, Stage.WRQ, Stage.W, Stage.RQ,
        Stage.X, Stage.ECC,
    ),
)

#: Figure 4(b): interprocessor input port to interprocessor output port.
NETWORK_TO_NETWORK = PipelineSpec(
    name="network->network",
    scheduling_stages=(
        Stage.ECC, Stage.T, Stage.DW, Stage.LA, Stage.RE, Stage.GA
    ),
    data_stages=(
        Stage.ECC, Stage.NOP, Stage.WRQ, Stage.W, Stage.RQ, Stage.X, Stage.ECC
    ),
)


#: Extra cycles outside the pipeline on a network-to-network path:
#: synchronization, pad receiver/driver and pin<->router transport
#: (paper section 2.2), bringing pin-to-pin latency to 13 cycles.
EXTRA_DELAY_CYCLES = 6


def pin_to_pin_cycles() -> int:
    """On-chip pin-to-pin latency: 13 cycles at 1.2 GHz (10.8 ns)."""
    # The first flit's scheduling pipeline overlaps the data pipeline's
    # front end; the packet leaves the chip one X+ECC after GA.
    return (
        NETWORK_TO_NETWORK.scheduling_latency
        + 1  # crossbar traversal after GA
        + EXTRA_DELAY_CYCLES
    )
