"""The 21364 router model used by the timing simulator.

A :class:`Router` owns the per-input-port buffers, the output-port busy
state, the 16 read-port input arbiters (the LA pipeline stage) and one
arbitration-algorithm instance (the GA stage).  The timing simulator
drives it with two calls per arbitration *launch*:

* :meth:`nominate` at cycle ``t`` builds the launch's nominations --
  each read-port arbiter picks the oldest packet from its
  least-recently-selected virtual channel that passes the readiness
  tests (connected output, output predicted free at grant time,
  downstream buffer space) -- and marks those packets in flight.
* :meth:`resolve` at cycle ``t + latency`` re-checks readiness (the
  speculation window: a pipelined SPAA launch may discover its output
  was just taken), runs the arbitration algorithm, applies the grants
  (buffer departure, output busy time, downstream reservation) and
  releases the losers for re-nomination.

Everything timing related (when launches happen, event scheduling) is
the simulator's job; the router is purely reactive.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.antistarvation import AntiStarvationTracker
from repro.core.base import Arbiter
from repro.core.types import Grant, Nomination, SourceKind
from repro.network.channels import (
    BufferPlan,
    ChannelKind,
    VirtualChannel,
    adaptive_channel,
    all_virtual_channels,
    escape_channel,
)
from repro.network.packets import Packet
from repro.network.routing import (
    adaptive_candidates,
    dimension_order_direction,
    escape_vc_after_hop,
)
from repro.network.topology import Direction, Torus2D
from repro.obs.telemetry import NULL_TELEMETRY
from repro.router.buffers import InputBuffer
from repro.router.connection_matrix import ConnectionMatrix
from repro.router.ports import (
    InputPort,
    NUM_OUTPUT_PORTS,
    OutputPort,
    READ_PORTS_PER_INPUT,
    output_for_direction,
    row_of,
)

#: fixed tie-break order for LRS channel selection (determinism).
_CHANNEL_RANK = {c: i for i, c in enumerate(all_virtual_channels())}
_channel_rank = _CHANNEL_RANK.__getitem__


@dataclass(slots=True)
class HopPlan:
    """Bookkeeping for one nominated (packet, output) candidate."""

    packet: Packet
    in_port: InputPort
    from_channel: VirtualChannel
    output: OutputPort
    #: channel at the downstream router (None when sinking locally)
    target_channel: VirtualChannel | None
    direction: Direction | None


@dataclass(slots=True)
class Launch:
    """One in-flight arbitration: nominations plus their hop plans."""

    time: float
    nominations: list[Nomination]
    plans: dict[tuple[int, int, int], HopPlan]


@dataclass(slots=True)
class Dispatch:
    """A granted packet leaving the router; consumed by the simulator."""

    packet: Packet
    plan: HopPlan
    grant_time: float
    service_cycles: float


class Router:
    """One 21364 router inside the timing model."""

    #: observability hook; the simulator swaps in a live Telemetry.
    telemetry = NULL_TELEMETRY
    #: fault-injection seam: when set, called between the arbitration
    #: algorithm and grant application as ``filter(router, launch,
    #: live, grants, now) -> grants`` (see repro.resilience.faults).
    #: Packets whose grants are filtered out are released exactly like
    #: arbitration losers, so flow control stays consistent.
    grant_filter = None

    def __init__(
        self,
        node: int,
        topology: Torus2D,
        arbiter: Arbiter,
        buffer_plan: BufferPlan,
        matrix: ConnectionMatrix,
        antistarvation: AntiStarvationTracker,
        rng: random.Random,
        torus_cycles_per_flit: float = 1.5,
        local_cycles_per_flit: float = 1.0,
    ) -> None:
        self.node = node
        self.topology = topology
        self.arbiter = arbiter
        self.matrix = matrix
        self.antistarvation = antistarvation
        self.rng = rng
        self.torus_cycles_per_flit = torus_cycles_per_flit
        self.local_cycles_per_flit = local_cycles_per_flit
        #: wire-delay cycles between the grant decision and the packet
        #: reaching the output (PIM1/WFA's pipelined fourth cycle);
        #: set by the simulator from the algorithm's timing.
        self.output_tail_cycles = 0.0

        self.buffers: dict[InputPort, InputBuffer] = {
            port: InputBuffer(buffer_plan) for port in InputPort
        }
        self.output_busy_until = [0.0] * NUM_OUTPUT_PORTS
        #: downstream wiring, filled in by the simulator:
        #: torus output -> (neighbor router, neighbor's input port)
        self.downstream: dict[OutputPort, tuple["Router", InputPort]] = {}
        self._in_flight: set[int] = set()
        #: rows with an unresolved nomination -- SPAA's "small list of
        #: in-flight packets, only 16": each input-port arbiter keeps at
        #: most one nomination outstanding until its Reset step.
        self._row_in_flight: set[int] = set()
        #: per-row least-recently-selected stamps per virtual channel;
        #: never-selected channels rank oldest, ties break on a fixed
        #: channel index so simulations stay deterministic.
        self._vc_stamp: dict[int, dict[VirtualChannel, int]] = {}
        self._vc_clock = 0
        #: per-row rotation for picking one of two adaptive outputs
        self._output_toggle: dict[int, int] = {}
        #: launch gating, managed by the simulator
        self.last_launch_time = float("-inf")
        self.launch_scheduled_at: float | None = None

    # -- nomination (the LA stage) -------------------------------------

    def nominate(
        self,
        now: float,
        resolve_time: float,
        fanout: int,
        nominations_per_port: int = READ_PORTS_PER_INPUT,
    ) -> Launch | None:
        """Build one arbitration launch; None when nothing is ready."""
        nominations: list[Nomination] = []
        plans: dict[tuple[int, int, int], HopPlan] = {}
        for port in InputPort:
            buffer = self.buffers[port]
            if buffer.is_empty():
                continue
            port_nominations = 0
            for read_port in range(READ_PORTS_PER_INPUT):
                if port_nominations >= nominations_per_port:
                    break
                row = row_of(port, read_port)
                if row in self._row_in_flight:
                    # Each read-port arbiter keeps at most one
                    # nomination outstanding (SPAA's Reset step); with
                    # one nomination per port per launch the pair
                    # alternates read ports across launches, giving the
                    # paper's 16-entry in-flight list.
                    continue
                picked = self._pick_for_row(row, port, buffer, resolve_time, fanout)
                if picked is None:
                    continue
                packet, channel, candidates = picked
                outputs = tuple(int(plan.output) for plan in candidates)
                nominations.append(
                    Nomination(
                        row=row,
                        packet=packet.uid,
                        outputs=outputs,
                        source=(
                            SourceKind.NETWORK if port.is_network else SourceKind.LOCAL
                        ),
                        age=max(0, int(now - packet.waiting_since)),
                        group=int(port),
                        group_capacity=READ_PORTS_PER_INPUT,
                    )
                )
                for plan in candidates:
                    plans[(row, packet.uid, int(plan.output))] = plan
                self._in_flight.add(packet.uid)
                self._row_in_flight.add(row)
                self._touch_vc(row, channel)
                port_nominations += 1
        if not nominations:
            return None
        tel = self.telemetry
        if tel.events:
            for nom in nominations:
                tel.on_nomination(now, self.node, nom.row, nom.packet, nom.outputs)
        return Launch(time=now, nominations=nominations, plans=plans)

    def _pick_for_row(
        self,
        row: int,
        port: InputPort,
        buffer: InputBuffer,
        resolve_time: float,
        fanout: int,
    ) -> tuple[Packet, VirtualChannel, list[HopPlan]] | None:
        """The read-port arbiter: oldest packet from the LRS channel."""
        for channel in self._channels_in_lrs_order(row, buffer):
            packet = buffer.head(channel)
            if packet is None or packet.uid in self._in_flight:
                continue
            candidates = self._candidate_plans(
                row, port, packet, channel, resolve_time
            )
            if not candidates:
                continue
            if fanout == 1 and len(candidates) > 1:
                # SPAA commits to a single output; rotate the choice so
                # both adaptive directions get exercised over time.
                toggle = self._output_toggle.get(row, 0)
                candidates = [candidates[toggle % len(candidates)]]
                self._output_toggle[row] = toggle + 1
            else:
                candidates = candidates[:fanout]
            return packet, channel, candidates
        return None

    def _channels_in_lrs_order(
        self, row: int, buffer: InputBuffer
    ) -> list[VirtualChannel]:
        nonempty = buffer.channels_with_waiting()
        if len(nonempty) <= 1:
            return list(nonempty)
        stamps = self._vc_stamp.get(row)
        if stamps is None:
            return sorted(nonempty, key=_channel_rank)
        return sorted(
            nonempty, key=lambda c: (stamps.get(c, 0), _channel_rank(c))
        )

    def _touch_vc(self, row: int, channel: VirtualChannel) -> None:
        self._vc_clock += 1
        self._vc_stamp.setdefault(row, {})[channel] = self._vc_clock

    # -- readiness tests ------------------------------------------------

    def _candidate_plans(
        self,
        row: int,
        port: InputPort,
        packet: Packet,
        channel: VirtualChannel,
        resolve_time: float,
    ) -> list[HopPlan]:
        if packet.destination == self.node:
            return self._sink_plans(row, port, packet, channel, resolve_time)
        plans: list[HopPlan] = []
        if packet.pclass.adaptive_allowed:
            for direction in adaptive_candidates(
                self.topology, self.node, packet.destination
            ):
                plan = self._network_plan(
                    row, port, packet, channel, direction,
                    adaptive_channel(packet.pclass), resolve_time,
                )
                if plan is not None:
                    plans.append(plan)
            if plans:
                return plans
        # Blocked adaptively (or I/O-class): try the escape network.
        direction = dimension_order_direction(
            self.topology, self.node, packet.destination
        )
        if direction is None:
            return []
        vc_index = escape_vc_after_hop(self.topology, packet, self.node, direction)
        plan = self._network_plan(
            row, port, packet, channel, direction,
            escape_channel(packet.pclass, vc_index), resolve_time,
        )
        return [plan] if plan is not None else []

    def _network_plan(
        self,
        row: int,
        port: InputPort,
        packet: Packet,
        channel: VirtualChannel,
        direction: Direction,
        target_channel: VirtualChannel,
        resolve_time: float,
    ) -> HopPlan | None:
        # Checks ordered cheapest-first: this test runs millions of
        # times per simulation.  Torus output index == direction value.
        out_index = int(direction)
        if self.output_busy_until[out_index] > resolve_time:
            return None
        if (row, out_index) not in self.matrix.cells:
            return None
        # A packet arriving at torus input port P came from the
        # neighbor in direction P; leaving via output P would reverse,
        # which minimal-rectangle routing never does.
        if int(port) == out_index and port.is_network:
            return None
        output = output_for_direction(direction)
        neighbor, in_port = self.downstream[output]
        if not neighbor.buffers[in_port].can_reserve(target_channel):
            return None
        return HopPlan(
            packet=packet,
            in_port=port,
            from_channel=channel,
            output=output,
            target_channel=target_channel,
            direction=direction,
        )

    def _sink_plans(
        self,
        row: int,
        port: InputPort,
        packet: Packet,
        channel: VirtualChannel,
        resolve_time: float,
    ) -> list[HopPlan]:
        sinks = packet.sink_outputs
        if sinks is None:
            sinks = (int(OutputPort.L0), int(OutputPort.L1))
        plans = []
        for out in sinks:
            output = OutputPort(out)
            if not self.matrix.connected(row, output):
                continue
            if self.output_busy_until[int(output)] > resolve_time:
                continue
            plans.append(
                HopPlan(
                    packet=packet,
                    in_port=port,
                    from_channel=channel,
                    output=output,
                    target_channel=None,
                    direction=None,
                )
            )
        return plans

    # -- resolution (the GA stage) ---------------------------------------

    def resolve(self, now: float, launch: Launch) -> list[Dispatch]:
        """Run the arbitration algorithm and apply its grants."""
        live: list[Nomination] = []
        speculation_drops = 0
        for nom in launch.nominations:
            outputs = tuple(
                out
                for out in nom.outputs
                if self._still_ready(launch.plans[(nom.row, nom.packet, out)], now)
            )
            self._row_in_flight.discard(nom.row)
            if outputs:
                if outputs != nom.outputs:
                    nom = Nomination(
                        row=nom.row,
                        packet=nom.packet,
                        outputs=outputs,
                        source=nom.source,
                        age=nom.age,
                        group=nom.group,
                        group_capacity=nom.group_capacity,
                    )
                live.append(nom)
            else:
                speculation_drops += 1
                self._in_flight.discard(nom.packet)
        tel = self.telemetry
        if tel.enabled and speculation_drops:
            # The launch's output(s) were taken between nominate and
            # resolve -- the pipelined speculation window in action.
            tel.on_speculation_drops(speculation_drops)
        if not live:
            return []

        live = self.antistarvation.classify(live, now)
        free_outputs = frozenset(
            out
            for out in range(NUM_OUTPUT_PORTS)
            if self.output_busy_until[out] <= now
        )
        grants = self.arbiter.arbitrate(live, free_outputs)
        if self.grant_filter is not None:
            grants = self.grant_filter(self, launch, live, grants, now)
        granted = {nom_key for nom_key in ((g.row, g.packet) for g in grants)}
        for nom in live:
            if (nom.row, nom.packet) not in granted:
                self._in_flight.discard(nom.packet)
        if tel.events and len(grants) < len(live):
            tel.on_conflicts(
                now, self.node, self.arbiter.name, len(live) - len(grants)
            )
        return [self._apply_grant(grant, launch, now) for grant in grants]

    def upstream_node(self, port: InputPort) -> int:
        """The neighbor feeding a torus input port."""
        if not port.is_network:
            raise ValueError(f"{port.name} has no upstream router")
        return self.topology.neighbor(self.node, port.direction)

    def plan_is_ready(self, plan: HopPlan, now: float) -> bool:
        """Public readiness probe (used by the fault injector's
        mis-routing, which must not redirect onto a busy output or a
        full downstream buffer)."""
        return self._still_ready(plan, now)

    def _still_ready(self, plan: HopPlan, now: float) -> bool:
        if self.output_busy_until[int(plan.output)] > now:
            return False
        if plan.target_channel is None:
            return True
        neighbor, in_port = self.downstream[plan.output]
        return neighbor.buffers[in_port].can_reserve(plan.target_channel)

    def _apply_grant(self, grant: Grant, launch: Launch, now: float) -> Dispatch:
        plan = launch.plans[(grant.row, grant.packet, grant.output)]
        packet = plan.packet
        self.buffers[plan.in_port].remove(packet, plan.from_channel)
        self._in_flight.discard(packet.uid)
        if plan.target_channel is None:
            cycles_per_flit = self.local_cycles_per_flit
        else:
            cycles_per_flit = self.torus_cycles_per_flit
            neighbor, in_port = self.downstream[plan.output]
            neighbor.buffers[in_port].reserve(plan.target_channel)
            packet.last_direction = plan.direction
            packet.escape_vc = (
                None
                if plan.target_channel.kind is ChannelKind.ADAPTIVE
                else (0 if plan.target_channel.kind is ChannelKind.VC0 else 1)
            )
            packet.hops += 1
        service = packet.flits * cycles_per_flit
        self.output_busy_until[int(plan.output)] = (
            now + self.output_tail_cycles + service
        )
        tel = self.telemetry
        if tel.enabled:
            tel.on_dispatch(
                now,
                self.node,
                grant.row,
                packet.uid,
                int(plan.output),
                self.output_tail_cycles + service,
            )
        return Dispatch(
            packet=packet, plan=plan, grant_time=now, service_cycles=service
        )

    def reset_arbitration_state(self) -> None:
        """Clear dynamic state (tests and back-to-back simulations)."""
        self.arbiter.reset()
        self.antistarvation.reset()
        self._in_flight.clear()
        self._row_in_flight.clear()
        self._vc_stamp.clear()
        self._vc_clock = 0
        self._output_toggle.clear()
        self.last_launch_time = float("-inf")
        self.launch_scheduled_at = None

    # -- introspection -----------------------------------------------------

    def total_buffered(self) -> int:
        return sum(buffer.occupancy() for buffer in self.buffers.values())

    def has_arbitrable_work(self) -> bool:
        """Cheap check: any non-in-flight packet waiting anywhere."""
        for buffer in self.buffers.values():
            for channel in buffer.channels_with_waiting():
                head = buffer.head(channel)
                if head is not None and head.uid not in self._in_flight:
                    return True
        return False
