"""The 16x7 connection matrix of Figure 5.

Rows are the 16 input-port arbiters ("L-X rpY"), columns the 7 output
ports ("G-X").  Shaded cells carry no wiring.  The paper states the
matrix has 54 usable cells but the scan's shading is not legible, so we
reconstruct a layout that (a) matches every property the text does
state and (b) has exactly 54 cells:

* "the individual read ports are not connected to all the output
  ports" -- we partition each input port's outputs between its two
  read ports: read port 0 drives the four torus outputs, read port 1
  drives the three local outputs (L0, L1, I/O).
* a memory controller never targets its own local output port (a
  response bound for the local cache is delivered through the *other*
  controller's port, both being tied to the cache).

That yields ``8*4 + 8*3 - 2 = 54`` connections.  Dynamic routing rules
(no reverse hop inside the minimal rectangle, I/O ordering) are
enforced by the routing layer, not by wiring, just as in hardware.
The layout is plain data, so alternative reconstructions can be
passed to the router for sensitivity studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.router.ports import (
    InputPort,
    LOCAL_OUTPUTS,
    NUM_OUTPUT_PORTS,
    NUM_ROWS,
    OutputPort,
    READ_PORTS_PER_INPUT,
    TORUS_OUTPUTS,
    port_of_row,
    row_of,
)


def default_connections() -> frozenset[tuple[int, int]]:
    """The reconstructed (row, output) wiring with 54 cells."""
    cells: set[tuple[int, int]] = set()
    for port in InputPort:
        for out in TORUS_OUTPUTS:
            cells.add((row_of(port, 0), int(out)))
        for out in LOCAL_OUTPUTS:
            cells.add((row_of(port, 1), int(out)))
    cells.discard((row_of(InputPort.MC0, 1), int(OutputPort.L0)))
    cells.discard((row_of(InputPort.MC1, 1), int(OutputPort.L1)))
    return frozenset(cells)


@dataclass(frozen=True)
class ConnectionMatrix:
    """Which input-port arbiter may nominate to which output port."""

    cells: frozenset[tuple[int, int]] = field(default_factory=default_connections)

    def __post_init__(self) -> None:
        for row, out in self.cells:
            if not 0 <= row < NUM_ROWS:
                raise ValueError(f"row {row} out of range")
            if not 0 <= out < NUM_OUTPUT_PORTS:
                raise ValueError(f"output {out} out of range")

    def connected(self, row: int, output: OutputPort | int) -> bool:
        return (row, int(output)) in self.cells

    def outputs_of_row(self, row: int) -> tuple[int, ...]:
        """Output ports wired to *row*, ascending."""
        return tuple(
            out for out in range(NUM_OUTPUT_PORTS) if (row, out) in self.cells
        )

    def rows_of_output(self, output: OutputPort | int) -> tuple[int, ...]:
        """Rows wired to *output*, ascending."""
        return tuple(row for row in range(NUM_ROWS) if (row, int(output)) in self.cells)

    def rows_for(self, port: InputPort, output: OutputPort | int) -> tuple[int, ...]:
        """Rows of *port* that can nominate to *output*."""
        return tuple(
            row_of(port, rp)
            for rp in range(READ_PORTS_PER_INPUT)
            if self.connected(row_of(port, rp), output)
        )

    @property
    def num_connections(self) -> int:
        return len(self.cells)

    def render(self) -> str:
        """ASCII rendering in the style of Figure 5 (tests, docs)."""
        header = "            " + " ".join(f"G-{o.name:<5}" for o in OutputPort)
        lines = [header]
        for row in range(NUM_ROWS):
            port, rp = port_of_row(row)
            marks = " ".join(
                ("  x   " if self.connected(row, out) else "  .   ")
                for out in range(NUM_OUTPUT_PORTS)
            )
            lines.append(f"L-{port.name:<6}rp{rp} {marks}")
        return "\n".join(lines)


DEFAULT_CONNECTION_MATRIX = ConnectionMatrix()
