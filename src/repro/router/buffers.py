"""Per-input-port packet buffering with virtual-channel partitions.

The 21364 provides buffer space for 316 packets per input port to
support virtual cut-through routing (a blocked packet is buffered
whole).  Buffers are partitioned by virtual channel so a lower-priority
coherence class can never block a higher one, and the escape channels
VC0/VC1 keep their own (tiny) partitions.

Space is reserved upstream at grant time and committed on arrival --
the credit-based flow control of the hardware, modelled with immediate
credit visibility (the simulator can read the downstream buffer
directly; the few-cycle credit-return delay is folded into the
pin-to-pin latency constant).
"""

from __future__ import annotations

from collections import deque

from repro.network.channels import (
    BufferPlan,
    VirtualChannel,
    all_virtual_channels,
)
from repro.network.packets import Packet


class InputBuffer:
    """Buffering for one input port: a FIFO per virtual channel."""

    def __init__(self, plan: BufferPlan) -> None:
        self._plan = plan
        self._queues: dict[VirtualChannel, deque[Packet]] = {
            channel: deque() for channel in all_virtual_channels()
        }
        self._reserved: dict[VirtualChannel, int] = {
            channel: 0 for channel in self._queues
        }
        # Hot-path accounting: the simulator polls these every launch.
        self._count = 0
        self._nonempty: set[VirtualChannel] = set()

    # -- capacity ----------------------------------------------------

    def capacity(self, channel: VirtualChannel) -> int:
        return self._plan.capacity(channel)

    def free_slots(self, channel: VirtualChannel) -> int:
        """Slots neither occupied nor promised to an in-flight packet."""
        return (
            self.capacity(channel)
            - len(self._queues[channel])
            - self._reserved[channel]
        )

    def can_reserve(self, channel: VirtualChannel) -> bool:
        return self.free_slots(channel) > 0

    def reserve(self, channel: VirtualChannel) -> None:
        """Promise one slot to a packet granted upstream."""
        if not self.can_reserve(channel):
            raise BufferOverflowError(f"no free slot in {channel}")
        self._reserved[channel] += 1

    def cancel_reservation(self, channel: VirtualChannel) -> None:
        if self._reserved[channel] <= 0:
            raise ValueError(f"no reservation to cancel on {channel}")
        self._reserved[channel] -= 1

    # -- occupancy ---------------------------------------------------

    def commit(self, packet: Packet, channel: VirtualChannel) -> None:
        """Arrival: turn a reservation into an occupied slot."""
        if self._reserved[channel] <= 0:
            raise ValueError(f"arrival without reservation on {channel}")
        self._reserved[channel] -= 1
        self._queues[channel].append(packet)
        self._count += 1
        self._nonempty.add(channel)

    def inject(self, packet: Packet, channel: VirtualChannel) -> bool:
        """Local-port enqueue without a prior reservation.

        Returns False (and leaves the buffer unchanged) when the
        channel is full -- the caller holds the packet and retries,
        which is how injection back-pressure throttles the processor.
        """
        if self.free_slots(channel) <= 0:
            return False
        self._queues[channel].append(packet)
        self._count += 1
        self._nonempty.add(channel)
        return True

    def head(self, channel: VirtualChannel) -> Packet | None:
        queue = self._queues[channel]
        return queue[0] if queue else None

    def remove(self, packet: Packet, channel: VirtualChannel) -> None:
        """Departure: the packet won arbitration and left the router."""
        queue = self._queues[channel]
        if not queue or queue[0] is not packet:
            # Read-port arbiters only nominate FIFO heads, so a grant
            # always removes the head; anything else is a model bug.
            raise ValueError(f"{packet} is not at the head of {channel}")
        queue.popleft()
        self._count -= 1
        if not queue:
            self._nonempty.discard(channel)

    # -- introspection -----------------------------------------------

    def packets(self, channel: VirtualChannel):
        """Iterate the waiting packets of one channel, FIFO order.

        Read-only view for invariant checking and diagnostics; the
        underlying deque must not be mutated during iteration.
        """
        return iter(self._queues[channel])

    def reserved(self, channel: VirtualChannel) -> int:
        """Slots promised to in-flight packets but not yet occupied."""
        return self._reserved[channel]

    def credit_state(self):
        """Yield ``(channel, occupancy, reserved)`` for non-idle channels.

        The invariant checker walks this to assert credit-flow sanity
        without touching the per-channel dicts directly.
        """
        for channel, queue in self._queues.items():
            occupancy = len(queue)
            reserved = self._reserved[channel]
            if occupancy or reserved:
                yield channel, occupancy, reserved

    def occupancy(self, channel: VirtualChannel | None = None) -> int:
        if channel is not None:
            return len(self._queues[channel])
        return self._count

    def channels_with_waiting(self) -> set[VirtualChannel]:
        """Channels holding at least one packet (a live set: don't mutate)."""
        return self._nonempty

    def is_empty(self) -> bool:
        return self._count == 0

    def total_capacity(self) -> int:
        return self._plan.total_packets()


class BufferOverflowError(RuntimeError):
    """Raised when flow control is violated (a slot was not reserved)."""
