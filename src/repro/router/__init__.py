"""Router substrate: ports, buffers, connection matrix, pipeline, router."""

from repro.router.buffers import BufferOverflowError, InputBuffer
from repro.router.connection_matrix import (
    DEFAULT_CONNECTION_MATRIX,
    ConnectionMatrix,
    default_connections,
)
from repro.router.pipeline import (
    ARBITRATION_STAGES,
    LOCAL_TO_NETWORK,
    NETWORK_TO_NETWORK,
    PipelineSpec,
    Stage,
    pin_to_pin_cycles,
)
from repro.router.ports import (
    LOCAL_INPUTS,
    LOCAL_OUTPUTS,
    NUM_INPUT_PORTS,
    NUM_OUTPUT_PORTS,
    NUM_ROWS,
    READ_PORTS_PER_INPUT,
    TORUS_OUTPUTS,
    InputPort,
    OutputPort,
    input_for_direction,
    network_rows,
    output_for_direction,
    port_of_row,
    row_of,
)
from repro.router.router import Dispatch, HopPlan, Launch, Router

__all__ = [
    "ARBITRATION_STAGES",
    "BufferOverflowError",
    "ConnectionMatrix",
    "DEFAULT_CONNECTION_MATRIX",
    "Dispatch",
    "HopPlan",
    "InputBuffer",
    "InputPort",
    "LOCAL_INPUTS",
    "LOCAL_OUTPUTS",
    "LOCAL_TO_NETWORK",
    "Launch",
    "NETWORK_TO_NETWORK",
    "NUM_INPUT_PORTS",
    "NUM_OUTPUT_PORTS",
    "NUM_ROWS",
    "OutputPort",
    "PipelineSpec",
    "READ_PORTS_PER_INPUT",
    "Router",
    "Stage",
    "TORUS_OUTPUTS",
    "default_connections",
    "input_for_direction",
    "network_rows",
    "output_for_direction",
    "pin_to_pin_cycles",
    "port_of_row",
    "row_of",
]
