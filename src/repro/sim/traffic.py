"""Synthetic traffic: destination patterns and injection processes.

The paper (section 4.2) selects request destinations with three
patterns.  With source bit-coordinates ``(a_{n-1}, ..., a_1, a_0)``:

* **uniform** -- a uniformly random *other* node;
* **bit-reversal** -- ``(a_0, a_1, ..., a_{n-2}, a_{n-1})``;
* **perfect-shuffle** -- ``(a_{n-2}, a_{n-3}, ..., a_0, a_{n-1})``
  (rotate left by one).

The permutation patterns need a power-of-two node count; the paper
accordingly only pairs them with the 4x4 and 8x8 networks.
"""

from __future__ import annotations

import abc
import random

from repro.network.topology import Torus2D


class DestinationPattern(abc.ABC):
    """Maps a source node to a request's home node."""

    name: str = "pattern"

    @abc.abstractmethod
    def destination(self, source: int) -> int:
        """Home node for a miss issued by *source*."""


class UniformPattern(DestinationPattern):
    """Uniformly random destination, excluding the source itself."""

    name = "uniform"

    def __init__(self, num_nodes: int, rng: random.Random) -> None:
        if num_nodes < 2:
            raise ValueError("uniform traffic needs at least two nodes")
        self._num_nodes = num_nodes
        self._rng = rng

    def destination(self, source: int) -> int:
        destination = self._rng.randrange(self._num_nodes - 1)
        return destination if destination < source else destination + 1


class _BitPermutationPattern(DestinationPattern):
    """Shared machinery for the fixed bit-permutation patterns."""

    def __init__(self, num_nodes: int) -> None:
        bits = num_nodes.bit_length() - 1
        if num_nodes < 2 or (1 << bits) != num_nodes:
            raise ValueError(
                f"{self.name} needs a power-of-two node count, got {num_nodes}"
            )
        self._bits = bits
        self._num_nodes = num_nodes

    def destination(self, source: int) -> int:
        if not 0 <= source < self._num_nodes:
            raise ValueError(f"node {source} out of range")
        return self._permute(source)

    @abc.abstractmethod
    def _permute(self, source: int) -> int:
        ...


class BitReversalPattern(_BitPermutationPattern):
    """Destination = source with its bit-coordinates reversed."""

    name = "bit-reversal"

    def _permute(self, source: int) -> int:
        result = 0
        for bit in range(self._bits):
            result = (result << 1) | ((source >> bit) & 1)
        return result


class PerfectShufflePattern(_BitPermutationPattern):
    """Destination = source's bit-coordinates rotated left by one."""

    name = "perfect-shuffle"

    def _permute(self, source: int) -> int:
        high = (source >> (self._bits - 1)) & 1
        return ((source << 1) & (self._num_nodes - 1)) | high


def make_pattern(
    name: str, topology: Torus2D, rng: random.Random
) -> DestinationPattern:
    """Instantiate a destination pattern by its paper name."""
    if name == "uniform":
        return UniformPattern(topology.num_nodes, rng)
    if name == "bit-reversal":
        return BitReversalPattern(topology.num_nodes)
    if name == "perfect-shuffle":
        return PerfectShufflePattern(topology.num_nodes)
    raise ValueError(f"unknown destination pattern {name!r}")


class PoissonInjector:
    """Per-node open-loop injection process.

    Transaction issue attempts arrive as a Poisson process of the
    configured rate (exponential inter-arrival times), the standard
    open-loop load model for BNF sweeps.  Attempts that find all MSHRs
    busy are dropped -- the processor simply cannot issue the miss --
    which reproduces the 21364's natural self-throttling.
    """

    def __init__(self, rate_per_cycle: float, rng: random.Random) -> None:
        if rate_per_cycle <= 0:
            raise ValueError("injection rate must be positive")
        self._rate = rate_per_cycle
        self._rng = rng

    def next_interval(self) -> float:
        """Cycles until the node's next issue attempt."""
        return self._rng.expovariate(self._rate)
