"""Configuration dataclasses for the two performance models."""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace

from repro.core.antistarvation import AntiStarvationConfig
from repro.core.timing import ArbitrationTiming
from repro.network.channels import BufferPlan
from repro.network.packets import PacketClass
from repro.network.links import ClockSpec, LinkSpec
from repro.router.connection_matrix import ConnectionMatrix

#: The 21364 product scales to 128 processors; larger networks (the
#: paper's 12x12 study) are legitimate what-if configurations but get a
#: gentle warning so nobody mistakes them for buildable systems.
HARDWARE_NODE_LIMIT = 128

DESTINATION_PATTERNS = ("uniform", "bit-reversal", "perfect-shuffle")


@dataclass(frozen=True)
class NetworkConfig:
    """Shape and clocking of the simulated torus network.

    Attributes:
        width, height: torus dimensions (4x4, 8x8 and 12x12 in the
            paper).
        clocks: core and link clock frequencies.
        link: hop latency parameters.
        buffer_plan: per-input-port buffer partitioning (316 packets).
        matrix: the 16x7 connection matrix wiring.
        pipeline_scale: 2 models the twice-deeper, twice-faster router
            of Figure 11a -- it doubles both clocks, every pipeline
            latency, and the arbitration timings.
    """

    width: int = 4
    height: int = 4
    clocks: ClockSpec = field(default_factory=ClockSpec)
    link: LinkSpec = field(default_factory=LinkSpec)
    buffer_plan: BufferPlan = field(default_factory=BufferPlan)
    matrix: ConnectionMatrix = field(default_factory=ConnectionMatrix)
    pipeline_scale: int = 1

    def __post_init__(self) -> None:
        if self.pipeline_scale < 1:
            raise ValueError("pipeline_scale must be >= 1")
        if self.width * self.height > HARDWARE_NODE_LIMIT:
            warnings.warn(
                f"{self.width}x{self.height} exceeds the 21364's "
                f"{HARDWARE_NODE_LIMIT}-processor limit; simulating a "
                "what-if configuration (as the paper does for 12x12)",
                stacklevel=3,
            )

    @property
    def num_nodes(self) -> int:
        return self.width * self.height

    @property
    def effective_clocks(self) -> ClockSpec:
        """Clocks after pipeline scaling (Figure 11a doubles both)."""
        if self.pipeline_scale == 1:
            return self.clocks
        return ClockSpec(
            core_ghz=self.clocks.core_ghz * self.pipeline_scale,
            link_ghz=self.clocks.link_ghz * self.pipeline_scale,
        )

    @property
    def effective_link(self) -> LinkSpec:
        """Per-hop latencies after pipeline scaling (deeper pipes)."""
        if self.pipeline_scale == 1:
            return self.link
        return LinkSpec(
            pin_to_pin_cycles=self.link.pin_to_pin_cycles * self.pipeline_scale,
            link_latency_network_clocks=self.link.link_latency_network_clocks,
            local_port_cycles=self.link.local_port_cycles * self.pipeline_scale,
        )


@dataclass(frozen=True)
class TrafficConfig:
    """Synthetic coherence traffic (paper section 4.2).

    Attributes:
        pattern: destination selection -- ``uniform``, ``bit-reversal``
            or ``perfect-shuffle``.
        injection_rate: offered load, in new coherence transactions per
            node per core cycle.  Attempts finding all MSHRs busy are
            dropped, which is exactly how a 16-outstanding-miss
            processor self-throttles.
        two_hop_fraction: share of 2-hop transactions (request + block
            response); the rest are 3-hop (request + forward + block
            response).  The paper uses 0.7 / 0.3.
        mshr_limit: outstanding misses per processor (16 for the
            21364, 64 in Figure 11b).
        memory_latency_ns: memory response time (73 ns).
        l2_latency_cycles: on-chip L2 response time (25 cycles).
    """

    pattern: str = "uniform"
    injection_rate: float = 0.01
    two_hop_fraction: float = 0.7
    mshr_limit: int = 16
    memory_latency_ns: float = 73.0
    l2_latency_cycles: float = 25.0
    #: share of transactions that are I/O reads (READ_IO out, WRITE_IO
    #: back via the I/O ports on the deadlock-free channels).  The
    #: paper's mix has no I/O traffic; this is an extension knob.
    io_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.pattern not in DESTINATION_PATTERNS:
            raise ValueError(
                f"pattern {self.pattern!r} not in {DESTINATION_PATTERNS}"
            )
        if self.injection_rate <= 0:
            raise ValueError("injection_rate must be positive")
        if not 0.0 <= self.two_hop_fraction <= 1.0:
            raise ValueError("two_hop_fraction must be within [0, 1]")
        if self.mshr_limit < 1:
            raise ValueError("mshr_limit must be positive")
        if self.memory_latency_ns < 0 or self.l2_latency_cycles < 0:
            raise ValueError("latencies cannot be negative")
        if not 0.0 <= self.io_fraction <= 1.0:
            raise ValueError("io_fraction must be within [0, 1]")


@dataclass(frozen=True)
class SimulationConfig:
    """One timing-model run.

    The paper simulates 75 000 cycles per point; the ``fast`` preset
    trades statistical tightness for wall-clock time in benchmarks.
    """

    algorithm: str = "SPAA-base"
    network: NetworkConfig = field(default_factory=NetworkConfig)
    traffic: TrafficConfig = field(default_factory=TrafficConfig)
    warmup_cycles: int = 15_000
    measure_cycles: int = 60_000
    seed: int = 42
    antistarvation: AntiStarvationConfig = field(
        default_factory=AntiStarvationConfig
    )
    #: replace the algorithm's registry timing (before pipeline
    #: scaling); used by the ablation studies -- e.g. a hypothetical
    #: 3-cycle WFA, or SPAA with a stretched arbitration latency.
    arbitration_override: ArbitrationTiming | None = None

    def __post_init__(self) -> None:
        if self.warmup_cycles < 0 or self.measure_cycles <= 0:
            raise ValueError("cycle counts must be positive")

    @property
    def total_cycles(self) -> int:
        return self.warmup_cycles + self.measure_cycles

    def with_rate(self, injection_rate: float) -> "SimulationConfig":
        """A copy at a different offered load (sweep helper)."""
        return replace(
            self, traffic=replace(self.traffic, injection_rate=injection_rate)
        )

    def with_algorithm(self, algorithm: str) -> "SimulationConfig":
        """A copy running a different arbitration algorithm."""
        return replace(self, algorithm=algorithm)


def paper_run(config: SimulationConfig) -> SimulationConfig:
    """Stretch a config to the paper's 75 000-cycle runs."""
    return replace(config, warmup_cycles=15_000, measure_cycles=60_000)


def fast_run(config: SimulationConfig) -> SimulationConfig:
    """Shrink a config for benchmarks and smoke tests."""
    return replace(config, warmup_cycles=4_000, measure_cycles=12_000)


def saturation_buffer_plan() -> BufferPlan:
    """Lean buffering that lets tree saturation bind (see DESIGN.md §5).

    Our packet-granular model frees an input-buffer slot at grant time
    and sinks local traffic without limit, so with the hardware's full
    316-packet buffers the 16-outstanding-miss population can never
    back-pressure the network and the paper's beyond-saturation
    collapse has nothing to bite on.  This calibrated plan shrinks the
    adaptive partitions until back-pressure binds at roughly the
    paper's saturation point, which recovers the Figure 10 dynamics:
    base policies collapse beyond saturation, Rotary-Rule variants
    keep climbing.  Pre-saturation results are unaffected (buffers do
    not fill there).
    """
    return BufferPlan(
        adaptive_capacity={
            PacketClass.REQUEST: 3,
            PacketClass.FORWARD: 2,
            PacketClass.BLOCK_RESPONSE: 3,
            PacketClass.NONBLOCK_RESPONSE: 2,
        }
    )
