"""The standalone (non-timing) single-router matching model.

This reproduces the methodology behind Figures 8 and 9 (paper section
5.1): load a single 21364 router with randomly generated packets, run
one arbitration (every algorithm "takes one cycle"), count the matches,
and average over many independently generated trials.

Workload assumptions, straight from the paper:

* all output ports are free (Figure 8) or a fixed fraction are
  occupied (Figure 9);
* 50% of the packets are local traffic destined for the local memory
  controller and I/O output ports; the rest spread uniformly over the
  torus output ports;
* every algorithm obeys the basic router constraints -- adaptive
  routing offers at most two candidate outputs per packet, the
  connection matrix limits which read port reaches which output, and
  an input port dispatches at most two packets (one per read port).

The *load* is the number of packets resident in the router's input
buffers; the **MCM saturation load** is the load beyond which MCM's
match count stops improving (it plateaus just below seven, the output
port count).

Two backends compute the same measurement:

* ``backend="object"`` (default) -- the reference oracle: per-trial
  Python objects through the arbiter classes in :mod:`repro.core`.
* ``backend="vectorized"`` -- :mod:`repro.kernels` evaluates all
  trials as batched numpy array ops, bit-identical to the object path
  (same per-trial grants, same :class:`RunningStats`); configurations
  the kernels don't cover fall back to the object path with
  :attr:`StandaloneRouterModel.fallback_reason` recording why.

Both draw every random decision from the keyed counter-based stream of
:mod:`repro.kernels.rng`: each draw is addressed by a ``(trial,
domain, a, b)`` key instead of its position in a sequential stream, so
the two backends agree draw for draw no matter in which order they
evaluate them.  The key schedule used by each draw site below is the
backend contract -- see docs/kernels.md -- and is pinned by the
seed-stability tests.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace

from repro.core.registry import ArbiterContext, make_arbiter, nomination_style
from repro.core.types import Nomination, SourceKind
from repro.kernels.rng import (
    D_BUSY,
    D_FIRST_DIR,
    D_LOCAL_COIN,
    D_LOCAL_OUT,
    D_NOM_CHOICE,
    D_PORT,
    D_SECOND_DIR,
    D_TWO_COIN,
    KeyedTrialRandom,
    TrialStream,
)
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.router.connection_matrix import DEFAULT_CONNECTION_MATRIX, ConnectionMatrix
from repro.router.ports import (
    InputPort,
    LOCAL_OUTPUTS,
    NUM_OUTPUT_PORTS,
    TORUS_OUTPUTS,
    network_rows,
    row_of,
)
from repro.sim.metrics import RunningStats

#: valid values of the ``backend`` switch.
BACKENDS = ("object", "vectorized")


@dataclass(frozen=True, slots=True)
class StandalonePacket:
    """A waiting packet: identity, port, candidate outputs, age rank."""

    uid: int
    port: InputPort
    outputs: tuple[int, ...]
    age: int


@dataclass(frozen=True)
class StandaloneConfig:
    """One matching-capability measurement.

    Attributes:
        algorithm: any name in the registry (``MCM``, ``PIM``,
            ``PIM1``, ``WFA``, ``SPAA``, ...).
        load: number of packets loaded into the router per trial.
        occupancy: fraction of the seven output ports marked busy in
            each trial (0, 0.25, 0.5, 0.75 in Figure 9).
        local_fraction: share of packets destined for the local
            (memory-controller / I/O) output ports.
        two_direction_fraction: share of network packets with two
            adaptive candidate outputs (the rest have one).
        trials: arbitration iterations to average over (1000 in the
            paper).
        seed: RNG seed; trials are independent given the seed.
    """

    algorithm: str = "SPAA"
    load: int = 16
    occupancy: float = 0.0
    local_fraction: float = 0.5
    two_direction_fraction: float = 0.5
    trials: int = 1000
    seed: int = 42
    matrix: ConnectionMatrix = field(default_factory=lambda: DEFAULT_CONNECTION_MATRIX)

    def __post_init__(self) -> None:
        if self.load < 1:
            raise ValueError("load must be at least one packet")
        if not 0.0 <= self.occupancy < 1.0:
            raise ValueError("occupancy must be in [0, 1)")
        if not 0.0 <= self.local_fraction <= 1.0:
            raise ValueError("local_fraction must be in [0, 1]")
        if not 0.0 <= self.two_direction_fraction <= 1.0:
            raise ValueError("two_direction_fraction must be in [0, 1]")
        if self.trials < 1:
            raise ValueError("need at least one trial")


class StandaloneRouterModel:
    """Measures an algorithm's matches/cycle on random router states.

    Pass a :class:`repro.obs.telemetry.Telemetry` to have the arbiter
    under test report nomination/grant/conflict counters per trial.
    Pass an :class:`repro.resilience.ArbitrationInvariants` as
    ``invariants`` to validate every trial's grants as a legal matching
    (unique rows/packets/outputs, nominated combinations only, free
    outputs only, per-port capacities respected).
    Pass a :class:`repro.resilience.FaultConfig` (or a built
    :class:`~repro.resilience.FaultInjector`) as ``faults`` to stress
    the matching layer itself: grant suppression (and a trial-indexed
    stall window) break individual grants *after* arbitration, so
    Figures 8/9 arbiters can be studied under adversarial grant loss
    just like the network model's routers.

    ``backend="vectorized"`` routes the whole run through
    :mod:`repro.kernels`.  Telemetry, invariant checking, custom
    matrices and algorithms without a kernel fall back to the object
    path (``fallback_reason`` says why; ``backend`` reflects the path
    actually taken).  Faults and ``trial_hook`` are supported on both
    backends with identical results.

    ``trial_hook`` (``hook(trial, grants)``) observes each trial's
    final grant list -- after fault injection, exactly what the
    returned statistics count.  The parity gate uses it to diff the
    backends grant for grant.
    """

    def __init__(
        self,
        config: StandaloneConfig,
        telemetry: Telemetry | None = None,
        invariants=None,
        faults=None,
        heartbeat=None,
        backend: str = "object",
        trial_hook=None,
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        self.config = config
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.invariants = invariants
        #: optional liveness callable (see repro.resilience.supervisor),
        #: driven every few trials from inside :meth:`run`'s loop.
        self.heartbeat = heartbeat
        self._trial_hook = trial_hook
        if faults is not None and not hasattr(faults, "filter_matching"):
            # A FaultConfig: build the injector here (lazy import keeps
            # repro.sim free of a hard dependency on the resilience
            # package at import time).
            from repro.resilience.faults import FaultInjector

            faults = FaultInjector(faults)
        self.faults = faults
        self._stream = TrialStream(config.seed)
        self._rng = KeyedTrialRandom(self._stream)
        self._arbiter = make_arbiter(
            config.algorithm,
            ArbiterContext(
                num_rows=16,
                num_outputs=NUM_OUTPUT_PORTS,
                network_rows=network_rows(),
                rng=self._rng,
            ),
        )
        if self.telemetry.enabled:
            self._arbiter.telemetry = self.telemetry
        style = nomination_style(config.algorithm)
        self._uses_packet_pool = style == "pool"
        self._single_output = style == "single-output"
        #: why a requested vectorized run fell back to the object path
        #: (None when no fallback happened).
        self.fallback_reason: str | None = None
        self.backend = self._resolve_backend(backend)

    def _resolve_backend(self, backend: str) -> str:
        if backend != "vectorized":
            return backend
        from repro import kernels

        if not kernels.numpy_available():
            raise ImportError(
                "backend='vectorized' needs numpy; install the kernels "
                f"extra ({kernels.INSTALL_HINT}) or use backend='object'"
            )
        ok, reason = kernels.supports(self.config)
        if ok and self.telemetry.enabled:
            ok, reason = False, "telemetry requires the object backend"
        if ok and self.invariants is not None:
            ok, reason = False, "invariant checking requires the object backend"
        if not ok:
            self.fallback_reason = reason
            return "object"
        return "vectorized"

    def run(self) -> RunningStats:
        """Average matches per arbitration over the configured trials."""
        if self.backend == "vectorized":
            from repro.kernels.batch import run_batched

            return run_batched(
                self.config,
                faults=self.faults,
                heartbeat=self.heartbeat,
                trial_hook=self._trial_hook,
            )
        tel = self.telemetry
        if tel.enabled:
            tel.open_run(self.config, model="standalone")
        stats = RunningStats()
        invariants = self.invariants
        faults = self.faults
        heartbeat = self.heartbeat
        trial_hook = self._trial_hook
        for trial in range(self.config.trials):
            if heartbeat is not None and trial % 64 == 0:
                heartbeat()  # wall-time throttled by the sender
            self._rng.set_trial(trial)
            packets = self._generate_packets(trial)
            free_outputs = self._generate_free_outputs(trial)
            nominations = self._build_nominations(packets, free_outputs, trial)
            grants = self._arbiter.arbitrate(nominations, free_outputs)
            if faults is not None:
                # Injected after arbitration, checked after injection: a
                # suppressed subset of a legal matching stays legal.
                grants = faults.filter_matching(grants, trial)
            if invariants is not None:
                invariants.check_arbitration(
                    nominations, free_outputs, grants, trial
                )
            if trial_hook is not None:
                trial_hook(trial, grants)
            stats.add(float(len(grants)))
        if tel.enabled:
            tel.finalize(trials=self.config.trials, mean_matches=stats.mean)
        return stats

    # -- workload generation ------------------------------------------------

    def _generate_packets(self, trial: int = 0) -> list[StandalonePacket]:
        stream = self._stream
        config = self.config
        packets = []
        for uid in range(config.load):
            port = InputPort(stream.randbelow(trial, D_PORT, uid, 0, 8))
            if stream.uniform(trial, D_LOCAL_COIN, uid) < config.local_fraction:
                pick = stream.randbelow(
                    trial, D_LOCAL_OUT, uid, 0, len(LOCAL_OUTPUTS)
                )
                outputs = (int(LOCAL_OUTPUTS[pick]),)
            else:
                candidates = list(TORUS_OUTPUTS)
                first = candidates.pop(
                    stream.randbelow(trial, D_FIRST_DIR, uid, 0, len(candidates))
                )
                two = (
                    stream.uniform(trial, D_TWO_COIN, uid)
                    < config.two_direction_fraction
                )
                if two:
                    second = candidates[
                        stream.randbelow(
                            trial, D_SECOND_DIR, uid, 0, len(candidates)
                        )
                    ]
                    outputs = (int(first), int(second))
                else:
                    outputs = (int(first),)
            packets.append(
                StandalonePacket(uid=uid, port=port, outputs=outputs, age=uid)
            )
        # Oldest first within a port: lower uid == arrived earlier.
        return packets

    def _generate_free_outputs(self, trial: int = 0) -> frozenset[int]:
        """Sample the busy outputs with a keyed partial Fisher-Yates.

        Each step draws an index into the shrinking candidate pool and
        swap-removes it; step ``j`` is keyed by ``(trial, D_BUSY, j)``,
        so the vectorized backend runs the identical loop over whole
        trial columns.
        """
        busy_count = round(self.config.occupancy * NUM_OUTPUT_PORTS)
        stream = self._stream
        pool = list(range(NUM_OUTPUT_PORTS))
        free = set(pool)
        for step in range(busy_count):
            index = stream.randbelow(trial, D_BUSY, step, 0, len(pool))
            free.discard(pool[index])
            pool[index] = pool[-1]
            pool.pop()
        return frozenset(free)

    # -- nomination building --------------------------------------------------

    def _build_nominations(
        self,
        packets: list[StandalonePacket],
        free_outputs: frozenset[int],
        trial: int = 0,
    ) -> list[Nomination]:
        if self._uses_packet_pool:
            return self._pool_nominations(packets)
        if self._single_output:
            return self._single_output_nominations(packets, free_outputs, trial)
        return self._per_cell_nominations(packets)

    def _pool_nominations(self, packets: list[StandalonePacket]) -> list[Nomination]:
        """MCM sees every waiting packet, capped only by port capacity."""
        return [
            Nomination(
                row=packet.uid,  # unique row per packet: no row conflicts
                packet=packet.uid,
                outputs=packet.outputs,
                group=int(packet.port),
                group_capacity=2,
            )
            for packet in packets
        ]

    def _per_cell_nominations(
        self, packets: list[StandalonePacket]
    ) -> list[Nomination]:
        """PIM/WFA/iSLIP: every waiting packet, per connected read port.

        One nomination per (packet, read port) with the packet's
        connected candidate outputs.  The per-cell reduction -- the
        *oldest* packet per (row, output) cell -- is the arbiter's job
        (WFA's oldest-wins cell load, PIM's oldest-of-the-granted-row
        pick), and multi-round PIM deliberately re-nominates younger
        packets of a row once an older one is matched, so reducing here
        would change full PIM.  An earlier version carried a dict keyed
        by ``(row, packet.uid)`` that was meant to dedup per cell but
        never could (its keys were unique per packet); the regression
        test pins that all per-packet nominations are emitted.
        """
        nominations: list[Nomination] = []
        for packet in packets:
            port = packet.port
            for read_port in range(2):
                row = row_of(port, read_port)
                outputs = tuple(
                    out
                    for out in packet.outputs
                    if self.config.matrix.connected(row, out)
                )
                if not outputs:
                    continue
                nominations.append(
                    Nomination(
                        row=row,
                        packet=packet.uid,
                        outputs=outputs,
                        source=self._source_of(port),
                        age=-packet.age,
                        group=int(port),
                        group_capacity=2,
                    )
                )
        return nominations

    def _single_output_nominations(
        self,
        packets: list[StandalonePacket],
        free_outputs: frozenset[int],
        trial: int = 0,
    ) -> list[Nomination]:
        """SPAA/OPF: one packet, one output, per *input port*.

        The read-port pair synchronizes on a single nomination (see
        :data:`repro.core.timing.SPAA_TIMING`), so eight arbiters
        compete per cycle.  SPAA's readiness test skips busy outputs
        and picks uniformly between two adaptive candidates with no
        cross-arbiter coordination; OPF (the Figure 2 straw man) aims
        the oldest packet at its first-choice output unconditionally.
        The uniform pick is keyed by the nominated packet's uid.
        """
        check_free = self.config.algorithm != "OPF"
        stream = self._stream
        nominated_ports: set[InputPort] = set()
        nominations: list[Nomination] = []
        for packet in packets:  # oldest first
            port = packet.port
            if port in nominated_ports:
                continue
            for read_port in range(2):
                row = row_of(port, read_port)
                outputs = [
                    out
                    for out in packet.outputs
                    if self.config.matrix.connected(row, out)
                    and (not check_free or out in free_outputs)
                ]
                if not outputs:
                    continue
                choice = outputs[
                    stream.randbelow(
                        trial, D_NOM_CHOICE, packet.uid, 0, len(outputs)
                    )
                ]
                nominations.append(
                    Nomination(
                        row=row,
                        packet=packet.uid,
                        outputs=(choice,),
                        source=self._source_of(port),
                        age=-packet.age,
                        group=int(port),
                        group_capacity=2,
                    )
                )
                nominated_ports.add(port)
                break
        return nominations

    @staticmethod
    def _source_of(port: InputPort) -> SourceKind:
        return SourceKind.NETWORK if port.is_network else SourceKind.LOCAL


def measure_matches(
    config: StandaloneConfig, faults=None, backend: str = "object"
) -> float:
    """Mean matches per arbitration for one configuration.

    *faults* (a :class:`repro.resilience.FaultConfig`) injects
    matching-layer grant suppression into every trial; each call builds
    a fresh injector, so a given (config, faults) pair is deterministic.
    *backend* selects the object oracle or the vectorized kernels --
    the value is identical either way (see docs/kernels.md).
    """
    return StandaloneRouterModel(config, faults=faults, backend=backend).run().mean


def find_mcm_saturation_load(
    base: StandaloneConfig | None = None,
    tolerance: float = 0.01,
    max_load: int = 512,
    backend: str = "object",
) -> int:
    """The load where MCM's match count stops improving.

    Doubles the load until the incremental gain falls below
    *tolerance* (relative), then returns the smaller load -- the knee
    of the MCM curve that Figure 8 normalizes its x-axis by.

    Hitting *max_load* means the plateau was never verified: the last
    doubling still improved by more than the tolerance (or was never
    tested).  That returns *max_load* so sweeps can proceed, but warns
    -- a silently capped "saturation load" is not a saturation load.
    """
    base = base or StandaloneConfig()
    config = replace(base, algorithm="MCM")
    load = 4
    current = measure_matches(replace(config, load=load), backend=backend)
    while load < max_load:
        nxt = measure_matches(replace(config, load=load * 2), backend=backend)
        if nxt - current < tolerance * max(current, 1e-9):
            return load
        load *= 2
        current = nxt
    warnings.warn(
        f"MCM saturation search hit max_load={max_load} without the "
        f"match-count gain dropping below tolerance={tolerance}; "
        "returning the cap, which is NOT a verified saturation load",
        RuntimeWarning,
        stacklevel=2,
    )
    return max_load
