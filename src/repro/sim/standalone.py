"""The standalone (non-timing) single-router matching model.

This reproduces the methodology behind Figures 8 and 9 (paper section
5.1): load a single 21364 router with randomly generated packets, run
one arbitration (every algorithm "takes one cycle"), count the matches,
and average over many independently generated trials.

Workload assumptions, straight from the paper:

* all output ports are free (Figure 8) or a fixed fraction are
  occupied (Figure 9);
* 50% of the packets are local traffic destined for the local memory
  controller and I/O output ports; the rest spread uniformly over the
  torus output ports;
* every algorithm obeys the basic router constraints -- adaptive
  routing offers at most two candidate outputs per packet, the
  connection matrix limits which read port reaches which output, and
  an input port dispatches at most two packets (one per read port).

The *load* is the number of packets resident in the router's input
buffers; the **MCM saturation load** is the load beyond which MCM's
match count stops improving (it plateaus just below seven, the output
port count).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.core.registry import ArbiterContext, make_arbiter, nomination_style
from repro.core.types import Nomination, SourceKind
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.router.connection_matrix import DEFAULT_CONNECTION_MATRIX, ConnectionMatrix
from repro.router.ports import (
    InputPort,
    LOCAL_OUTPUTS,
    NUM_OUTPUT_PORTS,
    TORUS_OUTPUTS,
    network_rows,
    row_of,
)
from repro.sim.metrics import RunningStats


@dataclass(frozen=True, slots=True)
class StandalonePacket:
    """A waiting packet: identity, port, candidate outputs, age rank."""

    uid: int
    port: InputPort
    outputs: tuple[int, ...]
    age: int


@dataclass(frozen=True)
class StandaloneConfig:
    """One matching-capability measurement.

    Attributes:
        algorithm: any name in the registry (``MCM``, ``PIM``,
            ``PIM1``, ``WFA``, ``SPAA``, ...).
        load: number of packets loaded into the router per trial.
        occupancy: fraction of the seven output ports marked busy in
            each trial (0, 0.25, 0.5, 0.75 in Figure 9).
        local_fraction: share of packets destined for the local
            (memory-controller / I/O) output ports.
        two_direction_fraction: share of network packets with two
            adaptive candidate outputs (the rest have one).
        trials: arbitration iterations to average over (1000 in the
            paper).
        seed: RNG seed; trials are independent given the seed.
    """

    algorithm: str = "SPAA"
    load: int = 16
    occupancy: float = 0.0
    local_fraction: float = 0.5
    two_direction_fraction: float = 0.5
    trials: int = 1000
    seed: int = 42
    matrix: ConnectionMatrix = field(default_factory=lambda: DEFAULT_CONNECTION_MATRIX)

    def __post_init__(self) -> None:
        if self.load < 1:
            raise ValueError("load must be at least one packet")
        if not 0.0 <= self.occupancy < 1.0:
            raise ValueError("occupancy must be in [0, 1)")
        if not 0.0 <= self.local_fraction <= 1.0:
            raise ValueError("local_fraction must be in [0, 1]")
        if not 0.0 <= self.two_direction_fraction <= 1.0:
            raise ValueError("two_direction_fraction must be in [0, 1]")
        if self.trials < 1:
            raise ValueError("need at least one trial")


class StandaloneRouterModel:
    """Measures an algorithm's matches/cycle on random router states.

    Pass a :class:`repro.obs.telemetry.Telemetry` to have the arbiter
    under test report nomination/grant/conflict counters per trial.
    Pass an :class:`repro.resilience.ArbitrationInvariants` as
    ``invariants`` to validate every trial's grants as a legal matching
    (unique rows/packets/outputs, nominated combinations only, free
    outputs only, per-port capacities respected).
    Pass a :class:`repro.resilience.FaultConfig` (or a built
    :class:`~repro.resilience.FaultInjector`) as ``faults`` to stress
    the matching layer itself: grant suppression (and a trial-indexed
    stall window) break individual grants *after* arbitration, so
    Figures 8/9 arbiters can be studied under adversarial grant loss
    just like the network model's routers.
    """

    def __init__(
        self,
        config: StandaloneConfig,
        telemetry: Telemetry | None = None,
        invariants=None,
        faults=None,
        heartbeat=None,
    ) -> None:
        self.config = config
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.invariants = invariants
        #: optional liveness callable (see repro.resilience.supervisor),
        #: driven every few trials from inside :meth:`run`'s loop.
        self.heartbeat = heartbeat
        if faults is not None and not hasattr(faults, "filter_matching"):
            # A FaultConfig: build the injector here (lazy import keeps
            # repro.sim free of a hard dependency on the resilience
            # package at import time).
            from repro.resilience.faults import FaultInjector

            faults = FaultInjector(faults)
        self.faults = faults
        self._rng = random.Random(config.seed)
        self._arbiter = make_arbiter(
            config.algorithm,
            ArbiterContext(
                num_rows=16,
                num_outputs=NUM_OUTPUT_PORTS,
                network_rows=network_rows(),
                rng=self._rng,
            ),
        )
        if self.telemetry.enabled:
            self._arbiter.telemetry = self.telemetry
        style = nomination_style(config.algorithm)
        self._uses_packet_pool = style == "pool"
        self._single_output = style == "single-output"

    def run(self) -> RunningStats:
        """Average matches per arbitration over the configured trials."""
        tel = self.telemetry
        if tel.enabled:
            tel.open_run(self.config, model="standalone")
        stats = RunningStats()
        invariants = self.invariants
        faults = self.faults
        heartbeat = self.heartbeat
        for trial in range(self.config.trials):
            if heartbeat is not None and trial % 64 == 0:
                heartbeat()  # wall-time throttled by the sender
            packets = self._generate_packets()
            free_outputs = self._generate_free_outputs()
            nominations = self._build_nominations(packets, free_outputs)
            grants = self._arbiter.arbitrate(nominations, free_outputs)
            if faults is not None:
                # Injected after arbitration, checked after injection: a
                # suppressed subset of a legal matching stays legal.
                grants = faults.filter_matching(grants, trial)
            if invariants is not None:
                invariants.check_arbitration(
                    nominations, free_outputs, grants, trial
                )
            stats.add(float(len(grants)))
        if tel.enabled:
            tel.finalize(trials=self.config.trials, mean_matches=stats.mean)
        return stats

    # -- workload generation ------------------------------------------------

    def _generate_packets(self) -> list[StandalonePacket]:
        rng = self._rng
        packets = []
        for uid in range(self.config.load):
            port = InputPort(rng.randrange(8))
            if rng.random() < self.config.local_fraction:
                outputs = (int(rng.choice(LOCAL_OUTPUTS)),)
            else:
                candidates = list(TORUS_OUTPUTS)
                first = candidates.pop(rng.randrange(len(candidates)))
                if rng.random() < self.config.two_direction_fraction:
                    second = candidates[rng.randrange(len(candidates))]
                    outputs = (int(first), int(second))
                else:
                    outputs = (int(first),)
            packets.append(
                StandalonePacket(uid=uid, port=port, outputs=outputs, age=uid)
            )
        # Oldest first within a port: lower uid == arrived earlier.
        return packets

    def _generate_free_outputs(self) -> frozenset[int]:
        busy_count = round(self.config.occupancy * NUM_OUTPUT_PORTS)
        busy = self._rng.sample(range(NUM_OUTPUT_PORTS), busy_count)
        return frozenset(set(range(NUM_OUTPUT_PORTS)) - set(busy))

    # -- nomination building --------------------------------------------------

    def _build_nominations(
        self,
        packets: list[StandalonePacket],
        free_outputs: frozenset[int],
    ) -> list[Nomination]:
        if self._uses_packet_pool:
            return self._pool_nominations(packets)
        if self._single_output:
            return self._single_output_nominations(packets, free_outputs)
        return self._per_cell_nominations(packets)

    def _pool_nominations(self, packets: list[StandalonePacket]) -> list[Nomination]:
        """MCM sees every waiting packet, capped only by port capacity."""
        return [
            Nomination(
                row=packet.uid,  # unique row per packet: no row conflicts
                packet=packet.uid,
                outputs=packet.outputs,
                group=int(packet.port),
                group_capacity=2,
            )
            for packet in packets
        ]

    def _per_cell_nominations(
        self, packets: list[StandalonePacket]
    ) -> list[Nomination]:
        """PIM/WFA: each read-port arbiter offers, per connected output,
        the oldest packet of its port that can use that output."""
        nominations: dict[tuple[int, int], Nomination] = {}
        for packet in packets:
            port = packet.port
            for read_port in range(2):
                row = row_of(port, read_port)
                outputs = tuple(
                    out
                    for out in packet.outputs
                    if self.config.matrix.connected(row, out)
                )
                if not outputs:
                    continue
                key = (row, packet.uid)
                current = nominations.get(key)
                if current is None:
                    nominations[key] = Nomination(
                        row=row,
                        packet=packet.uid,
                        outputs=outputs,
                        source=self._source_of(port),
                        age=-packet.age,
                        group=int(port),
                        group_capacity=2,
                    )
        return list(nominations.values())

    def _single_output_nominations(
        self,
        packets: list[StandalonePacket],
        free_outputs: frozenset[int],
    ) -> list[Nomination]:
        """SPAA/OPF: one packet, one output, per *input port*.

        The read-port pair synchronizes on a single nomination (see
        :data:`repro.core.timing.SPAA_TIMING`), so eight arbiters
        compete per cycle.  SPAA's readiness test skips busy outputs
        and picks uniformly between two adaptive candidates with no
        cross-arbiter coordination; OPF (the Figure 2 straw man) aims
        the oldest packet at its first-choice output unconditionally.
        """
        check_free = self.config.algorithm != "OPF"
        nominated_ports: set[InputPort] = set()
        nominations: list[Nomination] = []
        for packet in packets:  # oldest first
            port = packet.port
            if port in nominated_ports:
                continue
            for read_port in range(2):
                row = row_of(port, read_port)
                outputs = [
                    out
                    for out in packet.outputs
                    if self.config.matrix.connected(row, out)
                    and (not check_free or out in free_outputs)
                ]
                if not outputs:
                    continue
                choice = outputs[self._rng.randrange(len(outputs))]
                nominations.append(
                    Nomination(
                        row=row,
                        packet=packet.uid,
                        outputs=(choice,),
                        source=self._source_of(port),
                        age=-packet.age,
                        group=int(port),
                        group_capacity=2,
                    )
                )
                nominated_ports.add(port)
                break
        return nominations

    @staticmethod
    def _source_of(port: InputPort) -> SourceKind:
        return SourceKind.NETWORK if port.is_network else SourceKind.LOCAL


def measure_matches(config: StandaloneConfig, faults=None) -> float:
    """Mean matches per arbitration for one configuration.

    *faults* (a :class:`repro.resilience.FaultConfig`) injects
    matching-layer grant suppression into every trial; each call builds
    a fresh injector, so a given (config, faults) pair is deterministic.
    """
    return StandaloneRouterModel(config, faults=faults).run().mean


def find_mcm_saturation_load(
    base: StandaloneConfig | None = None,
    tolerance: float = 0.01,
    max_load: int = 512,
) -> int:
    """The load where MCM's match count stops improving.

    Doubles the load until the incremental gain falls below
    *tolerance* (relative), then returns the smaller load -- the knee
    of the MCM curve that Figure 8 normalizes its x-axis by.
    """
    base = base or StandaloneConfig()
    config = replace(base, algorithm="MCM")
    load = 4
    current = measure_matches(replace(config, load=load))
    while load < max_load:
        nxt = measure_matches(replace(config, load=load * 2))
        if nxt - current < tolerance * max(current, 1e-9):
            return load
        load *= 2
        current = nxt
    return max_load
