"""The full-network timing model (Figures 10 and 11).

An event-driven simulation of a torus of 21364 routers running the
coherence-protocol workload.  The model's fidelity centres on what the
paper's comparison depends on:

* every arbitration actually runs the algorithm under study over the
  router's live nominations (matching quality is emergent, not
  approximated);
* each algorithm's latency, initiation interval, nomination fan-out
  and pipelined tail follow the hardware numbers in
  :mod:`repro.core.timing` -- the launch/resolve split exposes SPAA's
  one-per-cycle pipelining and its speculation collisions;
* virtual cut-through with per-class buffering, adaptive routing in
  the minimal rectangle and dateline escape channels produce real
  back-pressure, so tree saturation (and the Rotary Rule's rescue)
  emerges rather than being scripted.

Simplifications (see DESIGN.md section 5): packets occupy exactly one
router's buffer at a time (header cut-through is approximated by
letting a packet arbitrate the moment its header arrives), credits are
visible immediately, and local-port enqueue bandwidth is not modelled.
"""

from __future__ import annotations

import random
from functools import partial

from repro.coherence.protocol import CoherenceEngine
from repro.core.antistarvation import AntiStarvationTracker
from repro.core.registry import ArbiterContext, algorithm_timing, make_arbiter
from repro.network.channels import entry_channel
from repro.network.packets import Packet
from repro.network.topology import Torus2D
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.resilience.faults import (
    REASON_LINK_RETRIES_EXHAUSTED,
    FaultConfig,
    FaultInjector,
)
from repro.resilience.invariants import (
    InFlightTracker,
    InvariantChecker,
    InvariantConfig,
)
from repro.resilience.watchdog import ProgressWatchdog, WatchdogConfig
from repro.router.ports import (
    InputPort,
    LOCAL_INPUTS,
    TORUS_OUTPUTS,
    network_rows,
)
from repro.router.router import Dispatch, Launch, Router
from repro.sim.config import SimulationConfig
from repro.sim.engine import EventQueue
from repro.sim.metrics import BNFPoint, NetworkStats
from repro.sim.traffic import PoissonInjector, make_pattern


class NetworkSimulator:
    """One timing-model run: build with a config, call :meth:`run`.

    Pass a :class:`repro.obs.telemetry.Telemetry` to collect arbiter
    counters, per-port utilization and (with a real sink) a JSONL
    event trace; the default :data:`~repro.obs.telemetry.NULL_TELEMETRY`
    keeps every instrumented site down to one branch.

    The resilience layer (:mod:`repro.resilience`) attaches the same
    way: ``faults`` takes a :class:`~repro.resilience.FaultConfig` (or
    a built :class:`~repro.resilience.FaultInjector`), ``invariants``
    an :class:`~repro.resilience.InvariantConfig` or checker, and
    ``watchdog`` a :class:`~repro.resilience.WatchdogConfig` or
    :class:`~repro.resilience.ProgressWatchdog`.  All three default to
    off, costing one ``is None`` check per hook site.
    """

    def __init__(
        self,
        config: SimulationConfig,
        telemetry: Telemetry | None = None,
        faults: FaultConfig | FaultInjector | None = None,
        invariants: InvariantConfig | InvariantChecker | None = None,
        watchdog: WatchdogConfig | ProgressWatchdog | None = None,
        finalize_at_drain: bool = False,
        heartbeat=None,
        heartbeat_interval_cycles: float = 1_000.0,
    ) -> None:
        self.config = config
        #: optional liveness callable (see repro.resilience.supervisor):
        #: driven from inside the event loop via a periodic tick, so a
        #: wedged loop stops beating -- which is the whole point.
        self.heartbeat = heartbeat
        self._heartbeat_interval = float(heartbeat_interval_cycles)
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        if faults is not None and not isinstance(faults, FaultInjector):
            faults = FaultInjector(faults)
        if invariants is not None and not isinstance(invariants, InvariantChecker):
            invariants = InvariantChecker(invariants)
        if watchdog is not None and not isinstance(watchdog, ProgressWatchdog):
            watchdog = ProgressWatchdog(watchdog)
        self.faults = faults
        self.invariants = invariants
        self.watchdog = watchdog
        #: keep the telemetry sink open through :meth:`drain` even for
        #: unguarded runs, so drain-warn/drain-time diagnostics land in
        #: the trace; guarded runs always behave this way.
        self.finalize_at_drain = finalize_at_drain
        #: incremental in-flight uid registry (duplicate/age checks in
        #: O(buffered) instead of a full buffer walk); only maintained
        #: when an invariant checker is attached, so the unguarded hot
        #: path pays a single ``is None`` test per transition.
        self._inflight = InFlightTracker() if invariants is not None else None
        #: whole-run packet accounting (the conservation invariant's
        #: ground truth; window-relative figures live in ``stats``).
        self.total_injected = 0
        self.total_delivered = 0
        self.total_dropped = 0
        self.packets_in_transit = 0
        self.packets_sinking = 0
        #: set by :meth:`drain`: True when the network quiesced inside
        #: the budget, False when packets were left unaccounted.
        self.drained_clean: bool | None = None
        self._telemetry_finalized = False
        network = config.network
        self.topology = Torus2D(network.width, network.height)
        self.clocks = network.effective_clocks
        self.link = network.effective_link
        base_timing = (
            config.arbitration_override
            if config.arbitration_override is not None
            else algorithm_timing(config.algorithm)
        )
        self.timing = base_timing.scaled(network.pipeline_scale)
        self.queue = EventQueue()
        self.stats = NetworkStats(num_routers=self.topology.num_nodes)

        seed = config.seed
        self._traffic_rng = random.Random(seed)
        self._engine_rng = random.Random(seed + 1)
        self._pattern = make_pattern(
            config.traffic.pattern, self.topology, self._traffic_rng
        )
        self._injector = PoissonInjector(
            config.traffic.injection_rate, self._traffic_rng
        )

        self.routers = [
            self._build_router(node, random.Random(seed + 1000 + node))
            for node in range(self.topology.num_nodes)
        ]
        for router in self.routers:
            router.output_tail_cycles = float(self.timing.tail_cycles)
        self._wire_topology()

        self._link_faults_active = faults is not None and faults.affects_links
        if faults is not None and faults.affects_grants:
            for router in self.routers:
                router.grant_filter = faults.filter_grants

        self.engine = CoherenceEngine(
            host=self,
            num_nodes=self.topology.num_nodes,
            mshr_limit=config.traffic.mshr_limit,
            two_hop_fraction=config.traffic.two_hop_fraction,
            memory_latency_ns=config.traffic.memory_latency_ns,
            l2_latency_cycles=config.traffic.l2_latency_cycles,
            rng=self._engine_rng,
            io_fraction=config.traffic.io_fraction,
        )
        self.engine.on_transaction_complete = self._transaction_complete

        #: per (node, local input port) queues of packets awaiting
        #: buffer space -- the injection back-pressure path.
        self._pending: dict[tuple[int, InputPort], list[Packet]] = {
            (node, port): []
            for node in range(self.topology.num_nodes)
            for port in LOCAL_INPUTS
        }
        self._hop_latency = self.link.hop_latency_cycles(self.clocks)
        self._window_start = float(config.warmup_cycles)
        self._window_end = float(config.total_cycles)
        #: instrumentation hooks (see repro.sim.observers); empty by
        #: default so the hot path pays a single truthiness check.
        self._observers: list = []
        if self.telemetry.enabled:
            self._wire_telemetry()

    def _wire_telemetry(self) -> None:
        """Hand the shared Telemetry to every instrumented component."""
        telemetry = self.telemetry
        for router in self.routers:
            router.telemetry = telemetry
            router.arbiter.telemetry = telemetry
            router.antistarvation.telemetry = telemetry
            router.antistarvation.node = router.node

    def _build_router(self, node: int, rng: random.Random) -> Router:
        context = ArbiterContext(
            num_rows=16,
            num_outputs=7,
            network_rows=network_rows(),
            rng=rng,
        )
        return Router(
            node=node,
            topology=self.topology,
            arbiter=make_arbiter(self.config.algorithm, context),
            buffer_plan=self.config.network.buffer_plan,
            matrix=self.config.network.matrix,
            antistarvation=AntiStarvationTracker(self.config.antistarvation),
            rng=rng,
            torus_cycles_per_flit=self.clocks.core_cycles_per_flit_on_link,
            local_cycles_per_flit=1.0,
        )

    def _wire_topology(self) -> None:
        for router in self.routers:
            for output in TORUS_OUTPUTS:
                direction = output.direction
                neighbor = self.routers[
                    self.topology.neighbor(router.node, direction)
                ]
                in_port = InputPort(int(direction.opposite))
                router.downstream[output] = (neighbor, in_port)

    # -- ProtocolHost interface -------------------------------------------

    @property
    def now(self) -> float:
        return self.queue.now

    def cycles_per_ns(self) -> float:
        return self.clocks.core_ghz

    def schedule_after(self, delay_cycles: float, callback) -> None:
        self.queue.schedule_after(delay_cycles, callback)

    def enqueue_local(self, node: int, port: InputPort, packet: Packet) -> None:
        if port.is_network:
            raise ValueError("local injection must use a local input port")
        self.total_injected += 1
        if self._in_window(self.queue.now):
            self.stats.packets_injected += 1
        tel = self.telemetry
        if tel.enabled:
            tel.on_injection(
                self.queue.now,
                node,
                packet.uid,
                packet.pclass.label,
                packet.destination,
            )
        self._pending[(node, port)].append(packet)
        self._drain_pending(node, port)

    # -- simulation loop ----------------------------------------------------

    def run(self) -> NetworkStats:
        """Simulate warmup + measurement and return the window's stats."""
        tel = self.telemetry
        if tel.enabled:
            tel.open_run(self.config, model="timing")
        for node in range(self.topology.num_nodes):
            self.queue.schedule_at(
                self._injector.next_interval(), partial(self._injection_attempt, node)
            )
        if self.invariants is not None:
            self.queue.schedule_after(
                self.invariants.config.check_interval_cycles, self._invariant_tick
            )
        if self.watchdog is not None:
            self.queue.schedule_after(
                self.watchdog.config.window_cycles, self._watchdog_tick
            )
        if self.heartbeat is not None:
            self.heartbeat()  # "simulation entered its event loop"
            self.queue.schedule_after(
                self._heartbeat_interval, self._heartbeat_tick
            )
        self.queue.run_until(self._window_end)
        if self.invariants is not None:
            self.invariants.check_network(self, full=True)
        self.stats.window_ns = (
            self.config.measure_cycles * self.clocks.cycle_ns
        )
        self.stats.transactions_aborted = self.engine.transactions_aborted
        # Guarded runs (and runs built with finalize_at_drain) are
        # expected to be drained afterwards, and the interesting
        # diagnostics (drain-warn, drain-time watchdog fires) happen
        # there -- keep the sink open until then.
        if tel.enabled and not (self._guarded() or self.finalize_at_drain):
            self._finalize_telemetry()
        return self.stats

    def _guarded(self) -> bool:
        return (
            self.faults is not None
            or self.invariants is not None
            or self.watchdog is not None
        )

    def _finalize_telemetry(self) -> None:
        if self._telemetry_finalized:
            return
        self._telemetry_finalized = True
        self.telemetry.finalize(
            packets_delivered=self.stats.packets_delivered,
            flits_delivered=self.stats.flits_delivered,
        )

    def drain(self, max_extra_cycles: float = 1_000_000.0) -> bool:
        """After :meth:`run`, let in-flight traffic finish.

        Injection stops at the measurement window's end, so the event
        queue empties once every outstanding transaction completes.
        Used by conservation tests and by examples that want a quiesced
        network to inspect.

        Returns True when the network quiesced (no packet buffered,
        pending, in transit or sinking) inside the cycle budget; False
        -- also recorded on :attr:`drained_clean` and as a telemetry
        ``drain-warn`` event -- when the budget ran out first, which is
        how a deadlocked run looks from the outside.

        Runs with a fault injector, invariant checker or watchdog
        attached finalize their telemetry here rather than in
        :meth:`run`, so drain-time diagnostics reach the trace; such
        runs should always be drained.
        """
        self.queue.run_until_idle(self._window_end + max_extra_cycles)
        clean = self._outstanding_work() == 0
        self.drained_clean = clean
        self.stats.transactions_aborted = self.engine.transactions_aborted
        tel = self.telemetry
        if tel.enabled:
            if not clean:
                tel.on_drain_exhausted(
                    self.queue.now,
                    self.total_buffered_packets(),
                    self.total_pending_injections(),
                    self.packets_in_transit,
                )
            self._finalize_telemetry()
        return clean

    def bnf_point(self) -> BNFPoint:
        """Run and summarize as one Burton-Normal-Form point."""
        stats = self.run()
        counters = (
            self.telemetry.arbitration_summary()
            if self.telemetry.enabled
            else None
        )
        return BNFPoint(
            offered_rate=self.config.traffic.injection_rate,
            throughput=stats.delivered_flits_per_router_ns(),
            latency_ns=stats.packet_latency_ns.mean,
            transaction_latency_ns=stats.transaction_latency_ns.mean,
            packets_delivered=stats.packets_delivered,
            counters=counters,
        )

    @property
    def window_end_cycles(self) -> float:
        """End of the measurement window (warmup + measure cycles)."""
        return self._window_end

    def _in_window(self, time: float) -> bool:
        return self._window_start <= time < self._window_end

    # -- injection ------------------------------------------------------------

    def _injection_attempt(self, node: int) -> None:
        if self.queue.now < self._window_end:
            self.queue.schedule_after(
                self._injector.next_interval(),
                partial(self._injection_attempt, node),
            )
        home = self._pattern.destination(node)
        transaction = self.engine.try_start_transaction(node, home)
        if self._in_window(self.queue.now):
            if transaction is None:
                self.stats.transactions_throttled += 1
            else:
                self.stats.transactions_started += 1

    def _drain_pending(self, node: int, port: InputPort) -> None:
        queue = self._pending[(node, port)]
        if not queue:
            return
        router = self.routers[node]
        buffer = router.buffers[port]
        tracker = self._inflight
        drained = 0
        for packet in queue:
            if not buffer.inject(packet, entry_channel(packet.pclass)):
                break
            if tracker is not None:
                tracker.add(packet, node, port)
            drained += 1
        if drained:
            del queue[:drained]
            self._request_launch(router)

    # -- arbitration launches ---------------------------------------------------

    def _request_launch(self, router: Router, delay: float = 0.0) -> None:
        time = max(
            self.queue.now + delay,
            router.last_launch_time + self.timing.initiation_interval,
        )
        scheduled = router.launch_scheduled_at
        if scheduled is not None and self.queue.now <= scheduled <= time:
            return  # an attempt at least as early is already queued
        router.launch_scheduled_at = time
        self.queue.schedule_at(time, partial(self._try_launch, router))

    def _try_launch(self, router: Router) -> None:
        now = self.queue.now
        if router.launch_scheduled_at is not None and router.launch_scheduled_at <= now:
            router.launch_scheduled_at = None
        if now < router.last_launch_time + self.timing.initiation_interval:
            return  # a stale attempt inside the initiation window
        tel = self.telemetry
        began = tel.profiler.begin() if tel.profiling else 0.0
        launch = router.nominate(
            now,
            now,  # readiness: the output must be free *now* (no hiding)
            self.timing.fanout,
            self.timing.nominations_per_port,
        )
        if tel.profiling:
            tel.profiler.add("arbitration", began)
        if launch is None:
            # Arrivals, departures and credit releases all generate
            # wake-ups, but an output's busy window expiring is pure
            # passage of time: if every buffered packet wants a busy
            # output, nothing else will ever re-kick this router (the
            # request for that wake can be swallowed by the
            # _request_launch dedup when an earlier, doomed attempt is
            # already queued).  Re-arm at the next output-free time.
            if router.total_buffered():
                next_free = min(
                    (t for t in router.output_busy_until if t > now),
                    default=None,
                )
                if next_free is not None:
                    self._request_launch(router, delay=next_free - now)
            return
        router.last_launch_time = now
        self.queue.schedule_at(
            now + self.timing.decision_latency,
            partial(self._resolve, router, launch),
        )
        # Keep the pipeline hot: try again one initiation interval on.
        self._request_launch(router, delay=self.timing.initiation_interval)

    def _resolve(self, router: Router, launch: Launch) -> None:
        now = self.queue.now
        tel = self.telemetry
        began = tel.profiler.begin() if tel.profiling else 0.0
        dispatches = router.resolve(now, launch)
        if tel.profiling:
            tel.profiler.add("arbitration", began)
        for dispatch in dispatches:
            self._apply_dispatch(router, dispatch)
        # Losers (and newly uncovered heads) can renominate immediately.
        self._request_launch(router)

    def attach_observer(self, observer) -> None:
        """Register an instrumentation observer before (or during) a run."""
        observer.on_attach(self)
        self._observers.append(observer)

    def _apply_dispatch(self, router: Router, dispatch: Dispatch) -> None:
        now = self.queue.now
        plan = dispatch.plan
        if self._inflight is not None:
            # The grant removed the packet from its input buffer
            # (Router.resolve); it is now in transit or sinking.
            self._inflight.discard(dispatch.packet)
        if self._observers:
            for observer in self._observers:
                observer.on_dispatch(self, router, dispatch)
        # Wake the router when the output frees: the arbitration
        # latency becomes a real bubble between packets on a busy
        # output -- the effect behind the paper's "each additional
        # pipeline cycle costs ~5% throughput under heavy load".
        free_again = self.timing.tail_cycles + dispatch.service_cycles
        self._request_launch(router, delay=free_again)

        # The departure freed a buffer slot: wake whoever feeds it.
        if plan.in_port.is_network:
            upstream = self.routers[router.upstream_node(plan.in_port)]
            self._request_launch(upstream)
        else:
            self._drain_pending(router.node, plan.in_port)

        packet = dispatch.packet
        if plan.target_channel is None:
            delivery_delay = (
                self.timing.tail_cycles
                + self.link.local_port_cycles
                + packet.flits * router.local_cycles_per_flit
            )
            self.packets_sinking += 1
            self.queue.schedule_after(
                delivery_delay, partial(self._delivered, packet)
            )
        else:
            neighbor, in_port = router.downstream[plan.output]
            arrival_delay = self.timing.tail_cycles + self._hop_latency
            self.packets_in_transit += 1
            if self._link_faults_active:
                self.queue.schedule_after(
                    arrival_delay,
                    partial(
                        self._link_arrival,
                        neighbor,
                        in_port,
                        plan.target_channel,
                        packet,
                        0,
                    ),
                )
            else:
                self.queue.schedule_after(
                    arrival_delay,
                    partial(
                        self._arrive, neighbor, in_port, plan.target_channel, packet
                    ),
                )

    def _arrive(self, router: Router, port: InputPort, channel, packet: Packet) -> None:
        tel = self.telemetry
        began = tel.profiler.begin() if tel.profiling else 0.0
        self.packets_in_transit -= 1
        router.buffers[port].commit(packet, channel)
        if self._inflight is not None:
            self._inflight.add(packet, router.node, port)
        packet.waiting_since = self.queue.now
        if tel.profiling:
            tel.profiler.add("traversal", began)
        self._request_launch(router)

    # -- fault injection ------------------------------------------------------

    def _link_arrival(
        self, router: Router, port: InputPort, channel, packet: Packet, attempt: int
    ) -> None:
        """Arrival through a faulty link: deliver, retry, or drop.

        Models the 21364's link-level retransmission protocol with the
        injector's bounded-retry policy: a faulted traversal is resent
        after an exponential backoff (the packet stays logically "on
        the link" -- its downstream reservation is held), and a packet
        that exhausts its retries is dropped with a recorded reason.
        """
        fault = self.faults.link_fault(packet)
        if fault is None:
            self._arrive(router, port, channel, packet)
            return
        now = self.queue.now
        self.stats.link_faults += 1
        tel = self.telemetry
        if tel.enabled:
            tel.on_link_fault(now, router.node, packet.uid, fault, attempt)
        retry = self.faults.retry
        if attempt >= retry.max_retries:
            self._drop_packet(
                router, port, channel, packet, REASON_LINK_RETRIES_EXHAUSTED
            )
            return
        self.stats.link_retries += 1
        if tel.enabled:
            tel.on_link_retry()
        # Jittered backoff (seeded, from the injector's dedicated
        # stream): packets faulted in the same burst de-synchronize
        # instead of retrying -- and re-colliding -- in lockstep.
        self.queue.schedule_after(
            self.faults.retry_backoff_cycles(attempt) + self._hop_latency,
            partial(self._link_arrival, router, port, channel, packet, attempt + 1),
        )

    def _drop_packet(
        self, router: Router, port: InputPort, channel, packet: Packet, reason: str
    ) -> None:
        """Remove a packet from the accounting, with its reason."""
        router.buffers[port].cancel_reservation(channel)
        if self._inflight is not None:
            # Dropped packets die on the link (never buffered here);
            # the discard is a defensive no-op that keeps the registry
            # honest if drop semantics ever change.
            self._inflight.discard(packet)
        self.packets_in_transit -= 1
        self.total_dropped += 1
        self.stats.packets_dropped += 1
        reasons = self.stats.drops_by_reason
        reasons[reason] = reasons.get(reason, 0) + 1
        tel = self.telemetry
        if tel.enabled:
            tel.on_drop(
                self.queue.now, router.node, packet.uid, packet.pclass.label, reason
            )
        # Let the owning transaction abort (frees the MSHR) so the rest
        # of the workload keeps flowing.
        self.engine.on_packet_dropped(packet)
        # The cancelled reservation freed a slot: wake the upstream
        # router that feeds this input port.
        self._request_launch(self.routers[router.upstream_node(port)])

    # -- resilience ticks -----------------------------------------------------

    def recovery_kick(self) -> None:
        """Re-arm arbitration launches everywhere (watchdog remediation).

        A lost wake-up wedges the network with every router waiting for
        a launch request that never comes; re-requesting a launch at
        every router (and re-draining every injection queue) is exactly
        the event such a bug swallowed.  A true protocol deadlock is
        unaffected -- the kicked launches find no grantable nomination
        -- which is what lets the watchdog tell the two apart.
        """
        for router in self.routers:
            self._request_launch(router)
        for node, port in self._pending:
            self._drain_pending(node, port)

    def _invariant_tick(self) -> None:
        self.invariants.check_network(self)
        if self.queue.now < self._window_end or self._outstanding_work():
            self.queue.schedule_after(
                self.invariants.config.check_interval_cycles, self._invariant_tick
            )

    def _watchdog_tick(self) -> None:
        self.watchdog.observe(self)
        if self.queue.now < self._window_end or self._outstanding_work():
            self.queue.schedule_after(
                self.watchdog.config.window_cycles, self._watchdog_tick
            )

    def _heartbeat_tick(self) -> None:
        # Deliberately cycle-scheduled, not thread-driven: the beat
        # only fires while the event loop is actually making progress,
        # so a wedged simulation goes silent and the supervisor's
        # staleness threshold catches it.  Stops rescheduling once the
        # window closed with nothing outstanding (same termination
        # rule as the invariant/watchdog ticks, so drain still ends).
        self.heartbeat()
        if self.queue.now < self._window_end or self._outstanding_work():
            self.queue.schedule_after(
                self._heartbeat_interval, self._heartbeat_tick
            )

    # -- delivery & statistics ------------------------------------------------------

    def _delivered(self, packet: Packet) -> None:
        now = self.queue.now
        self.packets_sinking -= 1
        self.total_delivered += 1
        if self._observers:
            for observer in self._observers:
                observer.on_delivery(self, packet)
        tel = self.telemetry
        if tel.enabled:
            began = tel.profiler.begin() if tel.profiling else 0.0
            tel.on_delivery(
                now,
                packet.destination,
                packet.uid,
                packet.pclass.label,
                now - packet.injected_at,
                packet.hops,
            )
            if tel.profiling:
                tel.profiler.add("delivery", began)
        if self._in_window(now):
            self.stats.packets_delivered += 1
            self.stats.flits_delivered += packet.flits
            latency_ns = (now - packet.injected_at) * self.clocks.cycle_ns
            self.stats.packet_latency_ns.add(latency_ns)
            self.stats.latency_sample.add(latency_ns)
        self.engine.on_packet_delivered(packet)

    def _transaction_complete(self, transaction) -> None:
        if self._in_window(self.queue.now):
            self.stats.transactions_completed += 1
            latency_ns = (
                self.queue.now - transaction.started_at
            ) * self.clocks.cycle_ns
            self.stats.transaction_latency_ns.add(latency_ns)

    # -- debugging helpers --------------------------------------------------------------

    def total_buffered_packets(self) -> int:
        return sum(router.total_buffered() for router in self.routers)

    def total_pending_injections(self) -> int:
        return sum(len(queue) for queue in self._pending.values())

    def _outstanding_work(self) -> int:
        """Packets still owed a delivery or drop (conservation residue)."""
        return (
            self.total_buffered_packets()
            + self.total_pending_injections()
            + self.packets_in_transit
            + self.packets_sinking
        )


def simulate(config: SimulationConfig) -> NetworkStats:
    """Convenience one-shot: build a simulator and run it."""
    return NetworkSimulator(config).run()


def simulate_bnf_point(config: SimulationConfig) -> BNFPoint:
    """Convenience one-shot returning a BNF summary point."""
    return NetworkSimulator(config).bnf_point()
