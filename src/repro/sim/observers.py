"""Pluggable instrumentation for the timing model.

Observers attach to a :class:`repro.sim.timing_model.NetworkSimulator`
and sample its state as events happen, without touching the hot path
when none are registered.  They exist for the questions the paper
answers with prose rather than figures -- e.g. "the network produces a
cyclic pattern of network link utilization with extremely high levels
of uniform random input traffic ... the period of this cycle increases
with the diameter of the network" (section 3.4) -- and for debugging.

Three observers ship with the library:

* :class:`ThroughputTimeline` -- delivered flits bucketed into fixed
  windows; its :meth:`oscillation` quantifies the clog/clear cycle.
* :class:`BufferOccupancyProbe` -- periodic snapshots of total buffered
  packets (the tree-saturation signature).
* :class:`PacketTracer` -- per-packet hop logs for a sampled subset.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.network.packets import Packet


class Observer:
    """Base class; all hooks are optional no-ops."""

    def on_attach(self, simulator) -> None:
        """Called once when registered, before the run starts."""

    def on_dispatch(self, simulator, router, dispatch) -> None:
        """A packet won arbitration and left *router*."""

    def on_delivery(self, simulator, packet: Packet) -> None:
        """A packet sank at its destination's local port."""


class ThroughputTimeline(Observer):
    """Delivered flits per fixed-size window of core cycles.

    The paper describes saturated networks clogging and clearing
    cyclically; this observer makes that visible as an oscillating
    delivered-throughput series and summarizes it with
    :meth:`oscillation` (coefficient of variation across windows) and
    :meth:`dominant_period` (autocorrelation peak, in windows).
    """

    def __init__(self, window_cycles: float = 500.0) -> None:
        if window_cycles <= 0:
            raise ValueError("window must be positive")
        self.window_cycles = window_cycles
        self.windows: list[int] = []

    def on_delivery(self, simulator, packet: Packet) -> None:
        index = int(simulator.now // self.window_cycles)
        while len(self.windows) <= index:
            self.windows.append(0)
        self.windows[index] += packet.flits

    def series(self, skip_windows: int = 0) -> list[int]:
        """Flits per window, optionally skipping warmup windows."""
        return self.windows[skip_windows:]

    def oscillation(self, skip_windows: int = 0) -> float:
        """Coefficient of variation of the windowed throughput."""
        series = self.series(skip_windows)
        if len(series) < 2:
            return 0.0
        mean = sum(series) / len(series)
        if mean == 0:
            return 0.0
        variance = sum((v - mean) ** 2 for v in series) / (len(series) - 1)
        return math.sqrt(variance) / mean

    def dominant_period(self, skip_windows: int = 0) -> int | None:
        """Lag (in windows) of the highest autocorrelation peak.

        Returns None when the series is too short or shows no positive
        off-zero peak -- i.e. no discernible cycle.
        """
        series = [float(v) for v in self.series(skip_windows)]
        n = len(series)
        if n < 8:
            return None
        mean = sum(series) / n
        centered = [v - mean for v in series]
        denominator = sum(v * v for v in centered)
        if denominator == 0:
            return None
        best_lag, best_value = None, 0.0
        previous = 1.0
        descending = False
        for lag in range(1, n // 2):
            value = sum(
                centered[i] * centered[i + lag] for i in range(n - lag)
            ) / denominator
            if value < previous:
                descending = True
            # First local maximum after the initial descent.
            if descending and value > best_value and value > previous:
                best_lag, best_value = lag, value
            previous = value
        return best_lag


class BufferOccupancyProbe(Observer):
    """Total buffered packets, sampled on a fixed cycle cadence.

    Cheap enough to leave on: it samples at most once per
    ``min_interval_cycles`` regardless of event rate.

    Sampling is driven by a self-rescheduling timer (plus a cheap
    opportunistic sample on dispatch), not by dispatches alone: a
    saturated, clogged network can go whole intervals without any
    dispatch, which is exactly when the occupancy curve matters --
    dispatch-only sampling went blind at the top of the tree-saturation
    spike.  When the attached simulator cannot schedule events (bare
    test doubles), the probe degrades to dispatch-driven sampling.
    """

    def __init__(self, min_interval_cycles: float = 250.0) -> None:
        if min_interval_cycles <= 0:
            raise ValueError("min_interval_cycles must be positive")
        self.min_interval_cycles = min_interval_cycles
        self.samples: list[tuple[float, int]] = []
        self._next_sample = 0.0
        self._simulator = None

    def on_attach(self, simulator) -> None:
        self._simulator = simulator
        if hasattr(simulator, "schedule_after"):
            simulator.schedule_after(self.min_interval_cycles, self._tick)

    def _tick(self) -> None:
        simulator = self._simulator
        now = simulator.now
        if now >= self._next_sample:
            self.samples.append((now, simulator.total_buffered_packets()))
            self._next_sample = now + self.min_interval_cycles
        window_end = getattr(simulator, "window_end_cycles", None)
        if window_end is None or now < window_end:
            simulator.schedule_after(self.min_interval_cycles, self._tick)

    def on_dispatch(self, simulator, router, dispatch) -> None:
        now = simulator.now
        if now >= self._next_sample:
            self.samples.append((now, simulator.total_buffered_packets()))
            self._next_sample = now + self.min_interval_cycles

    def peak(self) -> int:
        return max((count for _, count in self.samples), default=0)

    def mean(self) -> float:
        if not self.samples:
            return 0.0
        return sum(count for _, count in self.samples) / len(self.samples)


@dataclass(slots=True)
class HopRecord:
    """One hop of a traced packet."""

    time: float
    node: int
    output: int
    service_cycles: float


@dataclass
class PacketTrace:
    """The full story of one traced packet."""

    uid: int
    pclass: str
    source: int
    destination: int
    injected_at: float
    hops: list[HopRecord] = field(default_factory=list)
    delivered_at: float | None = None

    @property
    def hop_count(self) -> int:
        return len(self.hops)


class PacketTracer(Observer):
    """Records hop-by-hop logs for every Nth packet.

    Tracing every packet of a long run would dominate memory; the
    sampling rate keeps it proportionate while still catching
    representative journeys (and any pathological ones: the longest
    trace is usually the interesting one).
    """

    def __init__(self, sample_every: int = 100, max_traces: int = 10_000) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.sample_every = sample_every
        self.max_traces = max_traces
        self.traces: dict[int, PacketTrace] = {}

    def _trace_for(self, packet: Packet) -> PacketTrace | None:
        trace = self.traces.get(packet.uid)
        if trace is not None:
            return trace
        if packet.uid % self.sample_every != 0:
            return None
        if len(self.traces) >= self.max_traces:
            return None
        trace = PacketTrace(
            uid=packet.uid,
            pclass=packet.pclass.label,
            source=packet.source,
            destination=packet.destination,
            injected_at=packet.injected_at,
        )
        self.traces[packet.uid] = trace
        return trace

    def on_dispatch(self, simulator, router, dispatch) -> None:
        trace = self._trace_for(dispatch.packet)
        if trace is not None:
            trace.hops.append(
                HopRecord(
                    time=dispatch.grant_time,
                    node=router.node,
                    output=int(dispatch.plan.output),
                    service_cycles=dispatch.service_cycles,
                )
            )

    def on_delivery(self, simulator, packet: Packet) -> None:
        trace = self.traces.get(packet.uid)
        if trace is not None:
            trace.delivered_at = simulator.now

    def completed(self) -> list[PacketTrace]:
        return [t for t in self.traces.values() if t.delivered_at is not None]

    def longest(self) -> PacketTrace | None:
        completed = self.completed()
        if not completed:
            return None
        return max(completed, key=lambda t: t.delivered_at - t.injected_at)
