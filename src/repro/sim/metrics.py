"""Performance metrics: running statistics and Burton-Normal-Form points.

The paper reports Burton Normal Form (BNF) graphs: average packet
latency (nanoseconds, vertical) against delivered throughput
(flits/router/ns, horizontal).  A load sweep produces one
:class:`BNFPoint` per offered load; :class:`BNFCurve` collects them.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field


class RunningStats:
    """Numerically stable streaming mean/variance (Welford)."""

    __slots__ = ("count", "_mean", "_m2", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        if self.count < 2:
            return math.nan
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        variance = self.variance
        return math.sqrt(variance) if variance == variance else math.nan

    def merge(self, other: "RunningStats") -> None:
        """Fold another accumulator into this one (Chan's formula)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return
        total = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self._mean += delta * other.count / total
        self.count = total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)


class ReservoirSampler:
    """Fixed-size uniform sample of a stream (Vitter's algorithm R).

    Keeps percentile queries cheap on multi-hundred-thousand-packet
    runs without storing every latency.  Deterministic given the seed,
    like everything else in the simulator.  The sorted view is cached
    between queries and invalidated on :meth:`add`, so reading many
    percentiles off a settled sample sorts once instead of per call.
    """

    __slots__ = ("capacity", "count", "_values", "_rng", "_sorted")

    def __init__(self, capacity: int = 4096, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.count = 0
        self._values: list[float] = []
        self._rng = random.Random(seed)
        self._sorted: list[float] | None = None

    def add(self, value: float) -> None:
        self.count += 1
        if len(self._values) < self.capacity:
            self._values.append(value)
            self._sorted = None
            return
        index = self._rng.randrange(self.count)
        if index < self.capacity:
            self._values[index] = value
            self._sorted = None

    def percentile(self, q: float) -> float:
        """The q-quantile (0 <= q <= 1) of the sampled distribution."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be within [0, 1]")
        if not self._values:
            return math.nan
        ordered = self._sorted
        if ordered is None:
            ordered = self._sorted = sorted(self._values)
        position = q * (len(ordered) - 1)
        low = int(position)
        high = min(low + 1, len(ordered) - 1)
        if ordered[low] == ordered[high]:
            return ordered[low]
        fraction = position - low
        # Linear interpolation, clamped against floating-point wobble
        # so percentiles stay monotone in q.
        value = ordered[low] * (1 - fraction) + ordered[high] * fraction
        return min(max(value, ordered[low]), ordered[high])

    @property
    def sampled(self) -> int:
        return len(self._values)


@dataclass
class NetworkStats:
    """Everything measured during one timing-model run's window."""

    #: per-packet network latency in nanoseconds (injection to last
    #: flit delivered), over packets delivered inside the window.
    packet_latency_ns: RunningStats = field(default_factory=RunningStats)
    #: uniform sample of packet latencies for percentile queries.
    latency_sample: ReservoirSampler = field(default_factory=ReservoirSampler)
    #: per-transaction latency in nanoseconds (miss issued to block
    #: response delivered).
    transaction_latency_ns: RunningStats = field(default_factory=RunningStats)
    flits_delivered: int = 0
    packets_delivered: int = 0
    transactions_completed: int = 0
    transactions_started: int = 0
    transactions_throttled: int = 0
    packets_injected: int = 0
    window_ns: float = 0.0
    num_routers: int = 1
    #: resilience accounting (whole run, not just the measurement
    #: window): injected link faults, retransmissions they triggered,
    #: packets dropped after exhausting retries (by recorded reason)
    #: and coherence transactions aborted by those drops.
    link_faults: int = 0
    link_retries: int = 0
    packets_dropped: int = 0
    drops_by_reason: dict = field(default_factory=dict)
    transactions_aborted: int = 0

    def delivered_flits_per_router_ns(self) -> float:
        """The paper's throughput metric."""
        if self.window_ns <= 0:
            return 0.0
        return self.flits_delivered / (self.num_routers * self.window_ns)

    def latency_percentile_ns(self, q: float) -> float:
        """Packet-latency percentile over the measurement window."""
        return self.latency_sample.percentile(q)


@dataclass(frozen=True, slots=True)
class BNFPoint:
    """One point of a Burton-Normal-Form latency/throughput curve."""

    offered_rate: float
    throughput: float
    latency_ns: float
    transaction_latency_ns: float = math.nan
    packets_delivered: int = 0
    #: optional per-algorithm arbiter counters for this point (from
    #: repro.obs telemetry); excluded from equality so instrumented and
    #: plain runs of the same config compare equal.
    counters: dict | None = field(default=None, compare=False)

    def as_row(self) -> tuple[float, float, float]:
        return (self.offered_rate, self.throughput, self.latency_ns)

    def as_dict(self) -> dict:
        """JSON-serializable form (sweep checkpoint journals)."""
        return {
            "offered_rate": self.offered_rate,
            "throughput": self.throughput,
            "latency_ns": self.latency_ns,
            "transaction_latency_ns": self.transaction_latency_ns,
            "packets_delivered": self.packets_delivered,
            "counters": self.counters,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BNFPoint":
        """Inverse of :meth:`as_dict` (journal resume)."""
        return cls(
            offered_rate=float(data["offered_rate"]),
            throughput=float(data["throughput"]),
            latency_ns=float(data["latency_ns"]),
            transaction_latency_ns=float(
                data.get("transaction_latency_ns", math.nan)
            ),
            packets_delivered=int(data.get("packets_delivered", 0)),
            counters=data.get("counters"),
        )


@dataclass
class BNFCurve:
    """A labelled series of BNF points (one algorithm's sweep)."""

    label: str
    points: list[BNFPoint] = field(default_factory=list)

    def add(self, point: BNFPoint) -> None:
        self.points.append(point)

    def peak_throughput(self) -> float:
        """Best delivered throughput anywhere on the curve."""
        return max((p.throughput for p in self.points), default=0.0)

    def throughput_at_latency(self, latency_ns: float) -> float:
        """Delivered throughput where the curve crosses *latency_ns*.

        The paper states results like "11% higher throughput at about
        83 ns average latency"; this interpolates the curve the same
        way.  Points are sorted by throughput; the latency is assumed
        monotone along the sweep (it is, up to noise, below
        saturation).  Returns the interpolated throughput, or the peak
        throughput if the curve never gets that slow.
        """
        points = sorted(self.points, key=lambda p: p.latency_ns)
        if not points:
            return 0.0
        if latency_ns <= points[0].latency_ns:
            return points[0].throughput
        best = points[0].throughput
        for earlier, later in zip(points, points[1:]):
            best = max(best, earlier.throughput)
            if earlier.latency_ns <= latency_ns <= later.latency_ns:
                span = later.latency_ns - earlier.latency_ns
                if span <= 0:
                    return max(best, later.throughput)
                t = (latency_ns - earlier.latency_ns) / span
                crossing = earlier.throughput + t * (
                    later.throughput - earlier.throughput
                )
                return max(best, crossing)
        return max(best, points[-1].throughput)
