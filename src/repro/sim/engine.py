"""A deterministic event-driven simulation kernel.

The paper's models were written in the (proprietary) Asim framework;
this is our substitute.  Events are (time, sequence, callback) tuples
on a binary heap: ties in time break by insertion order, so a given
seed always replays the exact same schedule.  Time is measured in core
clock cycles as a float (torus flit times are multiples of 1.5 cycles).
"""

from __future__ import annotations

import heapq
import math
from typing import Callable


class EventQueue:
    """Time-ordered callback queue with FIFO tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = 0
        self.now = 0.0

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Run *callback* when the clock reaches *time*."""
        if not math.isfinite(time):
            # NaN would silently corrupt the heap ordering (every
            # comparison is False) and inf would wedge run_until_idle;
            # both are always latent arithmetic bugs upstream.
            raise ValueError(f"event time must be finite, got {time!r}")
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} before now={self.now}")
        heapq.heappush(self._heap, (time, self._sequence, callback))
        self._sequence += 1

    def schedule_after(self, delay: float, callback: Callable[[], None]) -> None:
        """Run *callback* after *delay* cycles."""
        if not math.isfinite(delay):
            raise ValueError(f"delay must be finite, got {delay!r}")
        if delay < 0:
            raise ValueError("delay cannot be negative")
        self.schedule_at(self.now + delay, callback)

    def run_until(self, end_time: float) -> None:
        """Process events with time <= *end_time*, in order.

        The clock finishes at *end_time* even if the queue drains
        early; events scheduled beyond the horizon stay queued (and are
        simply never run by this call).
        """
        heap = self._heap
        while heap and heap[0][0] <= end_time:
            time, _, callback = heapq.heappop(heap)
            self.now = time
            callback()
        self.now = end_time

    def run_until_idle(self, max_time: float = float("inf")) -> None:
        """Drain every event (up to a safety horizon)."""
        heap = self._heap
        while heap and heap[0][0] <= max_time:
            time, _, callback = heapq.heappop(heap)
            self.now = time
            callback()

    @property
    def pending(self) -> int:
        return len(self._heap)
