"""Load sweeps: produce Burton-Normal-Form curves from the timing model."""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Sequence

from repro.obs.sink import JsonlSink
from repro.obs.telemetry import Telemetry
from repro.sim.config import SimulationConfig
from repro.sim.metrics import BNFCurve
from repro.sim.timing_model import NetworkSimulator


def trace_filename(algorithm: str, rate: float) -> str:
    """Canonical per-point trace name, e.g. ``SPAA-base_rate0.01.jsonl``."""
    return f"{algorithm}_rate{rate:g}.jsonl"


def _point_telemetry(
    algorithm: str,
    rate: float,
    telemetry_dir: Path | str | None,
    collect_counters: bool,
) -> Telemetry | None:
    if telemetry_dir is not None:
        path = Path(telemetry_dir) / trace_filename(algorithm, rate)
        path.parent.mkdir(parents=True, exist_ok=True)
        return Telemetry(sink=JsonlSink(path))
    if collect_counters:
        return Telemetry()
    return None


def sweep_algorithm(
    config: SimulationConfig,
    rates: Sequence[float],
    progress: Callable[[str], None] | None = None,
    telemetry_dir: Path | str | None = None,
    collect_counters: bool = False,
    observer_factory: Callable[[str, float], Sequence] | None = None,
) -> BNFCurve:
    """Run one algorithm over a set of offered loads.

    Args:
        config: base configuration; the rate is filled in per point.
        rates: offered loads to sweep.
        progress: optional per-point status callback.
        telemetry_dir: when set, each point writes a JSONL telemetry
            trace (``<algorithm>_rate<rate>.jsonl``) into this
            directory, readable with ``repro obs summarize``, and the
            returned points carry their arbiter counters.
        collect_counters: attach sink-less telemetry so every
            :class:`~repro.sim.metrics.BNFPoint` carries its
            per-algorithm nomination/grant/conflict counters without
            writing trace files.  Implied by *telemetry_dir*.
        observer_factory: called as ``factory(algorithm, rate)`` before
            each point; the returned observers (see
            :mod:`repro.sim.observers`) are attached to that point's
            simulator.
    """
    curve = BNFCurve(label=config.algorithm)
    for rate in rates:
        telemetry = _point_telemetry(
            config.algorithm, rate, telemetry_dir, collect_counters
        )
        simulator = NetworkSimulator(config.with_rate(rate), telemetry=telemetry)
        if observer_factory is not None:
            for observer in observer_factory(config.algorithm, rate):
                simulator.attach_observer(observer)
        point = simulator.bnf_point()
        curve.add(point)
        if progress is not None:
            progress(
                f"{config.algorithm} rate={rate:.4g} -> "
                f"thr={point.throughput:.3f} flits/router/ns, "
                f"lat={point.latency_ns:.1f} ns"
            )
    return curve


def sweep_algorithms(
    config: SimulationConfig,
    algorithms: Sequence[str],
    rates: Sequence[float],
    progress: Callable[[str], None] | None = None,
    telemetry_dir: Path | str | None = None,
    collect_counters: bool = False,
) -> dict[str, BNFCurve]:
    """Run several algorithms over the same loads (one Figure 10 panel)."""
    return {
        algorithm: sweep_algorithm(
            config.with_algorithm(algorithm),
            rates,
            progress,
            telemetry_dir=telemetry_dir,
            collect_counters=collect_counters,
        )
        for algorithm in algorithms
    }


def geometric_rates(low: float, high: float, count: int) -> list[float]:
    """Geometrically spaced offered loads (dense near saturation)."""
    if count < 2:
        raise ValueError("need at least two rates")
    if not 0 < low < high:
        raise ValueError("need 0 < low < high")
    ratio = (high / low) ** (1.0 / (count - 1))
    return [low * ratio**i for i in range(count)]


def throughput_gain_at_latency(
    winner: BNFCurve, loser: BNFCurve, latency_ns: float
) -> float:
    """Relative throughput advantage at a fixed average latency.

    This is how the paper states results ("SPAA-base provides about
    11% higher throughput ... when the average packet latency is about
    83 nanoseconds"): both curves are cut at the same latency and the
    throughputs compared.
    """
    winner_throughput = winner.throughput_at_latency(latency_ns)
    loser_throughput = loser.throughput_at_latency(latency_ns)
    if loser_throughput <= 0:
        return float("inf")
    return winner_throughput / loser_throughput - 1.0
