"""Load sweeps: produce Burton-Normal-Form curves from the timing model.

Sweeps can run *guarded*: pass a fault schedule
(:class:`~repro.resilience.FaultConfig`), an invariant cadence
(:class:`~repro.resilience.InvariantConfig`) and/or a watchdog
(:class:`~repro.resilience.WatchdogConfig`) and every point runs with
the resilience layer attached; pass a
:class:`~repro.resilience.SweepJournal` and every finished point is
checkpointed, failed points are retried with fresh seeds (and optional
wall-clock backoff), and a re-run with ``resume=True`` skips the
points already journalled -- a crashed hours-long paper-preset sweep
restarts where it stopped instead of from zero.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Sequence

from repro.obs.profiler import PhaseProfiler
from repro.obs.sink import JsonlSink
from repro.obs.telemetry import Telemetry
from repro.resilience.checkpoint import SweepJournal
from repro.resilience.faults import FaultConfig, FaultInjector
from repro.resilience.invariants import InvariantChecker, InvariantConfig
from repro.resilience.supervisor import SupervisorConfig
from repro.resilience.watchdog import ProgressWatchdog, WatchdogConfig
from repro.sim.config import SimulationConfig
from repro.sim.metrics import BNFCurve, BNFPoint
from repro.sim.timing_model import NetworkSimulator


def trace_filename(algorithm: str, rate: float) -> str:
    """Canonical per-point trace name, e.g. ``SPAA-base_rate0.01.jsonl``.

    The rate is rendered with ``repr`` -- Python's shortest exact
    round-trip form -- so distinct floats always get distinct files:
    ``0.3`` and the accumulation artifact ``0.30000000000000004`` were
    previously collapsed to the same ``%g`` name, silently overwriting
    one point's trace with the other's.
    """
    return f"{algorithm}_rate{float(rate)!r}.jsonl"


def parse_trace_filename(name: str) -> tuple[str, float]:
    """Invert :func:`trace_filename` (exact: repr round-trips floats).

    Splits on the *rightmost* ``_rate`` marker, so algorithm labels
    containing underscores survive.
    """
    stem = name[: -len(".jsonl")] if name.endswith(".jsonl") else name
    algorithm, sep, rate_text = stem.rpartition("_rate")
    if not sep or not algorithm:
        raise ValueError(f"not a sweep trace filename: {name!r}")
    try:
        rate = float(rate_text)
    except ValueError as error:
        raise ValueError(f"not a sweep trace filename: {name!r}") from error
    return algorithm, rate


def _point_telemetry(
    algorithm: str,
    rate: float,
    telemetry_dir: Path | str | None,
    collect_counters: bool,
    profile: bool = False,
) -> Telemetry | None:
    if telemetry_dir is not None:
        path = Path(telemetry_dir) / trace_filename(algorithm, rate)
        path.parent.mkdir(parents=True, exist_ok=True)
        return Telemetry(sink=JsonlSink(path), profile=profile)
    if collect_counters or profile:
        return Telemetry(profile=profile)
    return None


@dataclass(frozen=True)
class SweepGuard:
    """One bundle of resilience settings for a (multi-)sweep.

    The figure runners (:mod:`repro.experiments.figure10` / ``figure11``)
    and the CLI thread this single object down to
    :func:`sweep_algorithm` instead of seven loose keyword arguments.
    ``journal_path`` may be a directory; :meth:`scoped` then derives a
    per-panel journal file so identical (algorithm, rate) points in
    different panels never collide.
    """

    faults: FaultConfig | None = None
    invariants: InvariantConfig | None = None
    watchdog: WatchdogConfig | None = None
    journal_path: Path | str | None = None
    resume: bool = False
    max_attempts: int = 1
    retry_backoff_s: float = 0.0
    #: run parallel sweeps under a PointSupervisor (heartbeats,
    #: per-point deadlines, reaping, quarantine); serial sweeps ignore
    #: it -- there is no worker process to supervise.
    supervisor: SupervisorConfig | None = None
    #: a live :class:`repro.service.ServiceServer` -- sweep points are
    #: leased to the connected remote fleet instead of a local pool.
    fleet: object | None = None

    def scoped(self, name: str) -> "SweepGuard":
        """A copy whose journal lives at ``<journal_path>/<name>.journal.jsonl``."""
        if self.journal_path is None:
            return self
        return replace(
            self,
            journal_path=Path(self.journal_path) / f"{name}.journal.jsonl",
        )

    def sweep_kwargs(self) -> dict:
        """The keyword arguments :func:`sweep_algorithm` expects."""
        return {
            "faults": self.faults,
            "invariants": self.invariants,
            "watchdog": self.watchdog,
            "journal": (
                SweepJournal(self.journal_path)
                if self.journal_path is not None
                else None
            ),
            "resume": self.resume,
            "max_attempts": self.max_attempts,
            "retry_backoff_s": self.retry_backoff_s,
            "supervisor": self.supervisor,
            "fleet": self.fleet,
        }


class SweepPointError(RuntimeError):
    """A sweep point kept failing after its retry budget ran out."""

    def __init__(
        self, algorithm: str, rate: float, attempts: int, cause: BaseException
    ) -> None:
        self.algorithm = algorithm
        self.rate = rate
        self.attempts = attempts
        super().__init__(
            f"{algorithm} rate={rate!r} failed {attempts} attempt(s): "
            f"{type(cause).__name__}: {cause}"
        )


def _run_point(
    config: SimulationConfig,
    rate: float,
    telemetry: Telemetry | None,
    observer_factory,
    faults: FaultConfig | None,
    invariants: InvariantConfig | None,
    watchdog: WatchdogConfig | None,
    attempt: int,
    heartbeat: Callable[[], None] | None = None,
    heartbeat_interval_cycles: float = 1_000.0,
) -> tuple[BNFPoint, dict | None]:
    """One guarded point; returns (point, resilience summary or None).

    Retries re-seed both the simulation and the fault schedule (a
    deterministic failure would otherwise recur verbatim), keeping the
    first attempt byte-identical to an unguarded run.  *heartbeat*
    (supervised workers) is called from inside the event loop on a
    cycle cadence; it never influences the simulation itself.
    """
    point_config = config.with_rate(rate)
    if attempt:
        point_config = replace(
            point_config, seed=point_config.seed + 7919 * attempt
        )
    injector = (
        FaultInjector(faults.with_seed(faults.seed + attempt))
        if faults is not None
        else None
    )
    checker = InvariantChecker(invariants) if invariants is not None else None
    dog = ProgressWatchdog(watchdog) if watchdog is not None else None
    simulator = NetworkSimulator(
        point_config,
        telemetry=telemetry,
        faults=injector,
        invariants=checker,
        watchdog=dog,
        heartbeat=heartbeat,
        heartbeat_interval_cycles=heartbeat_interval_cycles,
    )
    if observer_factory is not None:
        for observer in observer_factory(config.algorithm, rate):
            simulator.attach_observer(observer)
    point = simulator.bnf_point()
    if injector is None and checker is None and dog is None:
        return point, None
    # Guarded points quiesce the network so the accounting closes: a
    # run that cannot drain is a failure (deadlock), not a data point.
    drained = simulator.drain()
    if checker is not None:
        checker.check_network(simulator, full=True)
        checker.raise_if_violated()
    if not drained:
        raise RuntimeError(
            f"network failed to quiesce: {simulator.total_buffered_packets()} "
            f"buffered, {simulator.total_pending_injections()} pending, "
            f"{simulator.packets_in_transit} in transit after drain budget"
        )
    resilience = {
        "faults_injected": injector.total_faults() if injector else 0,
        "fault_counts": dict(injector.counts) if injector else {},
        "link_retries": simulator.stats.link_retries,
        "packets_dropped": simulator.stats.packets_dropped,
        "invariant_checks": checker.checks_run if checker else 0,
        "invariant_violations": len(checker.violations) if checker else 0,
        "watchdog_fires": dog.fired if dog else 0,
        "drained_clean": drained,
    }
    return point, resilience


def sweep_algorithm(
    config: SimulationConfig,
    rates: Sequence[float],
    progress: Callable[[str], None] | None = None,
    telemetry_dir: Path | str | None = None,
    collect_counters: bool = False,
    observer_factory: Callable[[str, float], Sequence] | None = None,
    faults: FaultConfig | None = None,
    invariants: InvariantConfig | None = None,
    watchdog: WatchdogConfig | None = None,
    journal: SweepJournal | None = None,
    resume: bool = False,
    max_attempts: int = 1,
    retry_backoff_s: float = 0.0,
    workers: int = 1,
    supervisor: SupervisorConfig | None = None,
    fleet=None,
    profile_into: PhaseProfiler | None = None,
) -> BNFCurve:
    """Run one algorithm over a set of offered loads.

    Args:
        config: base configuration; the rate is filled in per point.
        rates: offered loads to sweep.
        progress: optional per-point status callback.
        telemetry_dir: when set, each point writes a JSONL telemetry
            trace (``<algorithm>_rate<rate>.jsonl``) into this
            directory, readable with ``repro obs summarize``, and the
            returned points carry their arbiter counters.
        collect_counters: attach sink-less telemetry so every
            :class:`~repro.sim.metrics.BNFPoint` carries its
            per-algorithm nomination/grant/conflict counters without
            writing trace files.  Implied by *telemetry_dir*.
        observer_factory: called as ``factory(algorithm, rate)`` before
            each point; the returned observers (see
            :mod:`repro.sim.observers`) are attached to that point's
            simulator.
        faults: inject this fault schedule into every point (re-seeded
            per retry attempt).
        invariants: run periodic invariant sweeps in every point; any
            violation fails the point (and triggers a retry).
        watchdog: attach a progress watchdog to every point.
        journal: checkpoint every finished point (and every failure)
            to this :class:`~repro.resilience.SweepJournal`.
        resume: with a journal, skip points whose latest record is a
            success and splice the journalled
            :class:`~repro.sim.metrics.BNFPoint` into the curve.
        max_attempts: tries per point before giving up; retries bump
            the simulation and fault seeds so a deterministic failure
            is not replayed verbatim.
        retry_backoff_s: wall-clock sleep before attempt *n* grows as
            ``retry_backoff_s * 2**(n-1)`` (0 disables sleeping).
        workers: with ``workers > 1`` the points run in a spawn-context
            process pool (see :mod:`repro.sim.parallel`) with bitwise
            identical per-point results; 1 (the default) keeps the
            serial in-process path.
        supervisor: with ``workers > 1``, run the pool under a
            :class:`~repro.resilience.PointSupervisor` -- workers
            heartbeat from inside the event loop, hung or dead workers
            are reaped at the configured deadline/staleness bound and
            replaced, and points that crash their worker
            ``quarantine_after`` times are quarantined instead of
            retried forever.  Ignored by the serial path (there is no
            worker process to supervise).
        fleet: a live :class:`repro.service.ServiceServer`; points are
            leased to its connected remote workers (always supervised)
            regardless of *workers*.
        profile_into: when set, every point runs with phase profiling
            enabled and its arbitration/traversal/delivery wall-time
            attribution is merged into this
            :class:`~repro.obs.profiler.PhaseProfiler` -- serial points
            by direct merge, pooled points via the serialized profile
            record the worker ships back.  Points resumed from a
            journal contribute nothing (they did not run).
    """
    if max_attempts < 1:
        raise ValueError("max_attempts must be at least 1")
    if workers > 1 or fleet is not None:
        if observer_factory is not None:
            raise ValueError(
                "observer_factory is not supported with workers > 1 "
                "(observers cannot cross the process boundary); attach "
                "telemetry instead or run serially"
            )
        from repro.sim.parallel import ParallelSweepRunner

        return ParallelSweepRunner(
            workers=workers, supervisor=supervisor, fleet=fleet
        ).run_algorithm(
            config,
            rates,
            progress=progress,
            telemetry_dir=telemetry_dir,
            collect_counters=collect_counters,
            faults=faults,
            invariants=invariants,
            watchdog=watchdog,
            journal=journal,
            resume=resume,
            max_attempts=max_attempts,
            retry_backoff_s=retry_backoff_s,
            profile_into=profile_into,
        )
    curve = BNFCurve(label=config.algorithm)
    # Mark this process as the journal's single writer for the whole
    # sweep; a concurrent run over the same journal fails fast instead
    # of interleaving checkpoint lines.
    lock = journal.lock() if journal is not None else None
    if lock is not None:
        lock.acquire()
    try:
        for rate in rates:
            if resume and journal is not None:
                cached = journal.completed_point(config.algorithm, rate)
                if cached is not None:
                    curve.add(cached)
                    if progress is not None:
                        progress(
                            f"{config.algorithm} rate={rate:.4g} -> resumed "
                            f"from journal"
                        )
                    continue
            point = None
            resilience = None
            attempts = 0
            for attempt in range(max_attempts):
                attempts = attempt + 1
                if attempt and retry_backoff_s > 0:
                    time.sleep(retry_backoff_s * 2 ** (attempt - 1))
                telemetry = _point_telemetry(
                    config.algorithm,
                    rate,
                    telemetry_dir,
                    collect_counters,
                    profile=profile_into is not None,
                )
                try:
                    point, resilience = _run_point(
                        config,
                        rate,
                        telemetry,
                        observer_factory,
                        faults,
                        invariants,
                        watchdog,
                        attempt,
                    )
                    break
                except Exception as error:
                    if journal is not None:
                        journal.record_failure(
                            config.algorithm, rate, attempts, error
                        )
                    if progress is not None:
                        progress(
                            f"{config.algorithm} rate={rate:.4g} attempt "
                            f"{attempts}/{max_attempts} failed: "
                            f"{type(error).__name__}: {error}"
                        )
                    if attempts >= max_attempts:
                        raise SweepPointError(
                            config.algorithm, rate, attempts, error
                        ) from error
            assert point is not None
            if profile_into is not None and telemetry is not None:
                profile_into.merge(telemetry.profiler)
            if journal is not None:
                journal.record_success(
                    config.algorithm,
                    rate,
                    point,
                    attempts=attempts,
                    resilience=resilience,
                )
            curve.add(point)
            if progress is not None:
                progress(
                    f"{config.algorithm} rate={rate:.4g} -> "
                    f"thr={point.throughput:.3f} flits/router/ns, "
                    f"lat={point.latency_ns:.1f} ns"
                )
        if resume and journal is not None:
            # The sweep finished with every point journalled as a
            # success; retry history is now dead weight, so rewrite
            # latest-wins.
            journal.compact()
    finally:
        if lock is not None:
            lock.release()
    return curve


def sweep_algorithms(
    config: SimulationConfig,
    algorithms: Sequence[str],
    rates: Sequence[float],
    progress: Callable[[str], None] | None = None,
    telemetry_dir: Path | str | None = None,
    collect_counters: bool = False,
    faults: FaultConfig | None = None,
    invariants: InvariantConfig | None = None,
    watchdog: WatchdogConfig | None = None,
    journal: SweepJournal | None = None,
    resume: bool = False,
    max_attempts: int = 1,
    retry_backoff_s: float = 0.0,
    workers: int = 1,
    supervisor: SupervisorConfig | None = None,
    fleet=None,
    profile_into: PhaseProfiler | None = None,
) -> dict[str, BNFCurve]:
    """Run several algorithms over the same loads (one Figure 10 panel).

    With ``workers > 1`` every (algorithm, rate) point of the whole
    panel is fanned out over one shared process pool (see
    :mod:`repro.sim.parallel`); with *fleet* set, over the service's
    connected remote workers.  Either way a slow algorithm's
    saturation tail overlaps the next algorithm's points instead of
    serializing.
    """
    if workers > 1 or fleet is not None:
        from repro.sim.parallel import ParallelSweepRunner

        return ParallelSweepRunner(
            workers=workers, supervisor=supervisor, fleet=fleet
        ).run(
            config,
            algorithms,
            rates,
            progress=progress,
            telemetry_dir=telemetry_dir,
            collect_counters=collect_counters,
            faults=faults,
            invariants=invariants,
            watchdog=watchdog,
            journal=journal,
            resume=resume,
            max_attempts=max_attempts,
            retry_backoff_s=retry_backoff_s,
            profile_into=profile_into,
        )
    return {
        algorithm: sweep_algorithm(
            config.with_algorithm(algorithm),
            rates,
            progress,
            telemetry_dir=telemetry_dir,
            collect_counters=collect_counters,
            faults=faults,
            invariants=invariants,
            watchdog=watchdog,
            journal=journal,
            resume=resume,
            max_attempts=max_attempts,
            retry_backoff_s=retry_backoff_s,
            profile_into=profile_into,
        )
        for algorithm in algorithms
    }


def sweep_standalone(
    configs: Sequence,
    faults=None,
    backend: str = "object",
    progress: Callable[[str], None] | None = None,
) -> list[float]:
    """Mean matches for a list of standalone-model configurations.

    The standalone twin of :func:`sweep_algorithm`: the Figure 8/9
    runners build one :class:`~repro.sim.standalone.StandaloneConfig`
    per curve point and this evaluates them in order.  *backend*
    selects the object oracle or the vectorized kernels for every
    point; *faults* applies one matching-layer fault schedule to all
    of them.
    """
    from repro.sim.standalone import measure_matches

    means: list[float] = []
    for config in configs:
        mean = measure_matches(config, faults=faults, backend=backend)
        means.append(mean)
        if progress is not None:
            progress(
                f"{config.algorithm} load={config.load} "
                f"occ={config.occupancy:.2g} -> {mean:.3f} matches"
            )
    return means


def geometric_rates(low: float, high: float, count: int) -> list[float]:
    """Geometrically spaced offered loads (dense near saturation)."""
    if count < 2:
        raise ValueError("need at least two rates")
    if not 0 < low < high:
        raise ValueError("need 0 < low < high")
    ratio = (high / low) ** (1.0 / (count - 1))
    return [low * ratio**i for i in range(count)]


def throughput_gain_at_latency(
    winner: BNFCurve, loser: BNFCurve, latency_ns: float
) -> float:
    """Relative throughput advantage at a fixed average latency.

    This is how the paper states results ("SPAA-base provides about
    11% higher throughput ... when the average packet latency is about
    83 nanoseconds"): both curves are cut at the same latency and the
    throughputs compared.
    """
    winner_throughput = winner.throughput_at_latency(latency_ns)
    loser_throughput = loser.throughput_at_latency(latency_ns)
    if loser_throughput <= 0:
        return float("inf")
    return winner_throughput / loser_throughput - 1.0
