"""Load sweeps: produce Burton-Normal-Form curves from the timing model."""

from __future__ import annotations

from typing import Callable, Sequence

from repro.sim.config import SimulationConfig
from repro.sim.metrics import BNFCurve
from repro.sim.timing_model import NetworkSimulator


def sweep_algorithm(
    config: SimulationConfig,
    rates: Sequence[float],
    progress: Callable[[str], None] | None = None,
) -> BNFCurve:
    """Run one algorithm over a set of offered loads."""
    curve = BNFCurve(label=config.algorithm)
    for rate in rates:
        point = NetworkSimulator(config.with_rate(rate)).bnf_point()
        curve.add(point)
        if progress is not None:
            progress(
                f"{config.algorithm} rate={rate:.4g} -> "
                f"thr={point.throughput:.3f} flits/router/ns, "
                f"lat={point.latency_ns:.1f} ns"
            )
    return curve


def sweep_algorithms(
    config: SimulationConfig,
    algorithms: Sequence[str],
    rates: Sequence[float],
    progress: Callable[[str], None] | None = None,
) -> dict[str, BNFCurve]:
    """Run several algorithms over the same loads (one Figure 10 panel)."""
    return {
        algorithm: sweep_algorithm(
            config.with_algorithm(algorithm), rates, progress
        )
        for algorithm in algorithms
    }


def geometric_rates(low: float, high: float, count: int) -> list[float]:
    """Geometrically spaced offered loads (dense near saturation)."""
    if count < 2:
        raise ValueError("need at least two rates")
    if not 0 < low < high:
        raise ValueError("need 0 < low < high")
    ratio = (high / low) ** (1.0 / (count - 1))
    return [low * ratio**i for i in range(count)]


def throughput_gain_at_latency(
    winner: BNFCurve, loser: BNFCurve, latency_ns: float
) -> float:
    """Relative throughput advantage at a fixed average latency.

    This is how the paper states results ("SPAA-base provides about
    11% higher throughput ... when the average packet latency is about
    83 nanoseconds"): both curves are cut at the same latency and the
    throughputs compared.
    """
    winner_throughput = winner.throughput_at_latency(latency_ns)
    loser_throughput = loser.throughput_at_latency(latency_ns)
    if loser_throughput <= 0:
        return float("inf")
    return winner_throughput / loser_throughput - 1.0
