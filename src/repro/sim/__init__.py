"""Simulation layer: kernel, configs, metrics, standalone & timing models."""

from repro.sim.config import (
    DESTINATION_PATTERNS,
    HARDWARE_NODE_LIMIT,
    NetworkConfig,
    SimulationConfig,
    TrafficConfig,
    fast_run,
    paper_run,
    saturation_buffer_plan,
)
from repro.sim.engine import EventQueue
from repro.sim.metrics import (
    BNFCurve,
    BNFPoint,
    NetworkStats,
    ReservoirSampler,
    RunningStats,
)
from repro.sim.observers import (
    BufferOccupancyProbe,
    Observer,
    PacketTrace,
    PacketTracer,
    ThroughputTimeline,
)
from repro.sim.parallel import (
    ParallelSweepRunner,
    PointResult,
    PointSpec,
)
from repro.sim.standalone import (
    StandaloneConfig,
    StandaloneRouterModel,
    find_mcm_saturation_load,
    measure_matches,
)
from repro.sim.sweep import (
    SweepGuard,
    SweepPointError,
    geometric_rates,
    parse_trace_filename,
    sweep_algorithm,
    sweep_algorithms,
    throughput_gain_at_latency,
    trace_filename,
)
from repro.sim.timing_model import (
    NetworkSimulator,
    simulate,
    simulate_bnf_point,
)
from repro.sim.traffic import (
    BitReversalPattern,
    DestinationPattern,
    PerfectShufflePattern,
    PoissonInjector,
    UniformPattern,
    make_pattern,
)

__all__ = [
    "BNFCurve",
    "BNFPoint",
    "BitReversalPattern",
    "BufferOccupancyProbe",
    "Observer",
    "PacketTrace",
    "PacketTracer",
    "ThroughputTimeline",
    "DESTINATION_PATTERNS",
    "DestinationPattern",
    "EventQueue",
    "HARDWARE_NODE_LIMIT",
    "NetworkConfig",
    "NetworkSimulator",
    "NetworkStats",
    "ParallelSweepRunner",
    "PerfectShufflePattern",
    "PointResult",
    "PointSpec",
    "PoissonInjector",
    "ReservoirSampler",
    "RunningStats",
    "SimulationConfig",
    "StandaloneConfig",
    "StandaloneRouterModel",
    "SweepGuard",
    "SweepPointError",
    "TrafficConfig",
    "UniformPattern",
    "fast_run",
    "find_mcm_saturation_load",
    "geometric_rates",
    "make_pattern",
    "measure_matches",
    "paper_run",
    "parse_trace_filename",
    "saturation_buffer_plan",
    "simulate",
    "simulate_bnf_point",
    "sweep_algorithm",
    "sweep_algorithms",
    "throughput_gain_at_latency",
    "trace_filename",
]
