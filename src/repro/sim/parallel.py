"""Parallel sweep execution over the checkpoint journal.

A load sweep is embarrassingly parallel: every (algorithm, rate) point
is an independent simulation whose seed derives only from its config,
and PR 2's :class:`~repro.resilience.SweepJournal` already treats each
point as an independently checkpointed unit of work.  This module adds
the missing piece -- a :class:`ParallelSweepRunner` that treats the
journal as a shared work queue:

* the **parent** claims the pending (algorithm, ``repr(rate)``) keys
  (points whose latest journal record is not a success), submits one
  picklable :class:`PointSpec` *per attempt* to the pool, reschedules
  failed attempts itself (retry backoff waits in the parent, so a
  backing-off point never occupies a worker slot), and splices results
  back through the journal's resume path as they complete;
* each **worker** reconstructs its resilience objects (fault injector,
  invariant checker, watchdog) from their config specs, runs the point
  with exactly the serial code path (:func:`repro.sim.sweep._run_point`
  -- same seeding, same retry re-seeding), and writes its own
  per-point telemetry trace file, so no two processes ever share a
  sink;
* the parent is the journal's **single writer**, so the JSONL file
  stays line-atomic and a crashed parallel sweep resumes with
  ``resume=True`` exactly like a crashed serial one.

Two execution substrates share this orchestration:

* the default :class:`~concurrent.futures.ProcessPoolExecutor` path,
  where a dead worker still aborts the sweep (now with the in-flight
  points journalled as ``worker-lost`` failures first, so ``--resume``
  retries them);
* the **supervised** path (pass ``supervisor=SupervisorConfig(...)``),
  where a :class:`~repro.resilience.PointSupervisor` owns the worker
  processes outright: workers heartbeat from inside the simulation
  event loop, hung or dead workers are reaped at a wall-clock deadline
  or heartbeat-staleness threshold and the pool replenished, crashed
  points are retried and -- after ``quarantine_after`` crashes --
  quarantined, and the sweep *degrades* (finishes every healthy point,
  then raises :class:`SweepSupervisionError`) instead of hanging or
  aborting.

Determinism: a point's result depends only on its
:class:`~repro.sim.config.SimulationConfig` (plus the attempt-indexed
seed bumps), never on scheduling or supervision, so ``workers=N``
produces bitwise identical per-point stats to ``workers=1``.  Only the
journal's line *order* differs (completion order instead of sweep
order), which the latest-wins reader never observes.
"""

from __future__ import annotations

import heapq
import itertools
import json
import multiprocessing
import os
import signal
import time
import traceback
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    wait as futures_wait,
)
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Sequence

from repro.obs.profiler import PhaseProfiler
from repro.resilience.checkpoint import SweepJournal, rate_key
from repro.resilience.faults import FaultConfig
from repro.resilience.invariants import InvariantConfig
from repro.resilience.supervisor import PointSupervisor, SupervisorConfig
from repro.resilience.watchdog import WatchdogConfig
from repro.sim.config import SimulationConfig
from repro.sim.metrics import BNFCurve, BNFPoint

#: the parent-side supervisor's own trace file inside a telemetry dir
#: (worker-lost/point-timeout/quarantined events + counters).
SUPERVISOR_TRACE_NAME = "supervisor.jsonl"

#: the fleet coordinator's trace file (lease grants/expiries, worker
#: connects, duplicate deliveries) when a sweep runs over the service.
SERVICE_TRACE_NAME = "service.jsonl"

#: test-only chaos hooks, used by the test suite and the CI smoke jobs
#: to fault a worker deterministically: wedge (spin without
#: heartbeating) or SIGKILL the worker that picks up a matching point.
#: Values are ``"*"``, ``"<algorithm>"`` or ``"<algorithm>:<rate_key>"``.
#: With REPRO_TEST_FAULT_ONCE_FILE set, the first matching worker
#: claims the file (O_EXCL) and faults; later attempts run normally --
#: that is how CI proves a reaped point completes on retry.
WEDGE_POINT_ENV = "REPRO_TEST_WEDGE_POINT"
KILL_POINT_ENV = "REPRO_TEST_KILL_POINT"
FAULT_ONCE_FILE_ENV = "REPRO_TEST_FAULT_ONCE_FILE"


@dataclass(frozen=True)
class PointSpec:
    """One attempt of one sweep point, picklable across a spawn boundary.

    Resilience settings travel as their *config* dataclasses; the
    worker builds the live injector/checker/watchdog itself, because
    those carry RNG state and open-ended references that must not leak
    between points (and would not survive pickling meaningfully).
    """

    config: SimulationConfig
    rate: float
    telemetry_dir: str | None
    collect_counters: bool
    faults: FaultConfig | None
    invariants: InvariantConfig | None
    watchdog: WatchdogConfig | None
    max_attempts: int
    retry_backoff_s: float
    #: arm phase profiling in the worker; the per-point attribution
    #: comes back serialized in :attr:`PointResult.profile`.
    profile: bool = False
    #: which attempt this spec runs (0-based); the parent bumps it when
    #: rescheduling a failed point, and :func:`repro.sim.sweep._run_point`
    #: derives the attempt's seed bumps from it exactly like serial.
    attempt: int = 0
    #: cadence of the in-loop heartbeat tick under supervision.
    heartbeat_interval_cycles: float = 1_000.0

    @property
    def key(self) -> tuple[str, str]:
        return (self.config.algorithm, rate_key(self.rate))


@dataclass(frozen=True)
class PointResult:
    """What a worker sends back: a point, or the trail of failures."""

    algorithm: str
    rate: float
    attempts: int
    point: BNFPoint | None
    resilience: dict | None
    #: one pre-formatted ``"TypeName: message"`` per failed attempt, in
    #: attempt order, so the parent can journal each failure exactly as
    #: the serial runner would have.
    failures: tuple[str, ...] = ()
    #: the worker's serialized ``profile`` record (phase wall-time
    #: attribution) when the spec asked for profiling, else ``None``.
    profile: dict | None = None

    @property
    def ok(self) -> bool:
        return self.point is not None


class WorkerPointFailure(RuntimeError):
    """A point failed inside a worker; str() is the worker's last error."""


class SweepSupervisionError(RuntimeError):
    """A supervised sweep finished degraded: some points never landed.

    Raised *after* every healthy point completed and every outcome was
    journalled, so a ``--resume`` rerun retries exactly the points
    listed here.  ``failed`` maps (algorithm, rate_key) to the last
    in-task error of points that exhausted ``max_attempts``;
    ``quarantined`` maps keys of poison points that crashed their
    worker ``quarantine_after`` times.
    """

    def __init__(
        self,
        failed: dict[tuple[str, str], str],
        quarantined: dict[tuple[str, str], str],
    ) -> None:
        self.failed = dict(failed)
        self.quarantined = dict(quarantined)
        parts = []
        if self.failed:
            keys = ", ".join(
                f"{algorithm} rate={key}" for algorithm, key in sorted(self.failed)
            )
            parts.append(f"{len(self.failed)} point(s) failed: {keys}")
        if self.quarantined:
            keys = ", ".join(
                f"{algorithm} rate={key}"
                for algorithm, key in sorted(self.quarantined)
            )
            parts.append(f"{len(self.quarantined)} point(s) quarantined: {keys}")
        super().__init__(
            "supervised sweep degraded -- "
            + "; ".join(parts)
            + " (all outcomes journalled; rerun with --resume to retry)"
        )


# -- test fault hooks ------------------------------------------------------


def _test_fault_matches(value: str, spec: PointSpec) -> bool:
    if value == "*":
        return True
    algorithm, _, key = value.partition(":")
    if algorithm != spec.config.algorithm:
        return False
    return not key or key == rate_key(spec.rate)


def _claim_once_file() -> bool:
    """True when this worker may fault (once-file absent or claimed)."""
    path = os.environ.get(FAULT_ONCE_FILE_ENV)
    if not path:
        return True
    try:
        os.close(os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
    except FileExistsError:
        return False
    return True


def _maybe_test_fault(spec: PointSpec) -> None:
    wedge = os.environ.get(WEDGE_POINT_ENV)
    if wedge and _test_fault_matches(wedge, spec) and _claim_once_file():
        while True:  # no heartbeats: the supervisor must reap us
            time.sleep(3600)
    kill = os.environ.get(KILL_POINT_ENV)
    if kill and _test_fault_matches(kill, spec) and _claim_once_file():
        os.kill(os.getpid(), getattr(signal, "SIGKILL", signal.SIGTERM))


# -- worker entries --------------------------------------------------------


def run_point_attempt(spec: PointSpec, heartbeat=None) -> PointResult:
    """Worker entry: run exactly one attempt of one sweep point.

    Module-level (picklable by reference) and importing lazily, so a
    spawn-context worker only pays the import once per process, not
    per point.  The attempt index rides on the spec; retry scheduling
    (and its backoff sleep) is the parent's job, so a failed attempt
    returns immediately and frees its worker slot.

    *heartbeat* (supervised pools) is threaded into the simulator's
    heartbeat tick: the beat comes from inside the event loop, so a
    wedged simulation goes silent and gets reaped.
    """
    from repro.sim.sweep import _point_telemetry, _run_point

    _maybe_test_fault(spec)
    telemetry = _point_telemetry(
        spec.config.algorithm,
        spec.rate,
        spec.telemetry_dir,
        spec.collect_counters,
        profile=spec.profile,
    )
    try:
        point, resilience = _run_point(
            spec.config,
            spec.rate,
            telemetry,
            None,
            spec.faults,
            spec.invariants,
            spec.watchdog,
            spec.attempt,
            heartbeat=heartbeat,
            heartbeat_interval_cycles=spec.heartbeat_interval_cycles,
        )
    except Exception as error:
        return PointResult(
            algorithm=spec.config.algorithm,
            rate=spec.rate,
            attempts=spec.attempt + 1,
            point=None,
            resilience=None,
            failures=(f"{type(error).__name__}: {error}",),
        )
    return PointResult(
        algorithm=spec.config.algorithm,
        rate=spec.rate,
        attempts=spec.attempt + 1,
        point=point,
        resilience=resilience,
        failures=(),
        profile=(
            telemetry.profiler.to_record()
            if spec.profile and telemetry is not None
            else None
        ),
    )


def run_point_spec(spec: PointSpec) -> PointResult:
    """Run one sweep point with the full serial retry loop, in-process.

    The pool itself schedules per-attempt (:func:`run_point_attempt`)
    with parent-side backoff; this compatibility entry keeps the whole
    attempt loop -- sleeps included -- inside one call for direct
    users and tests.
    """
    failures: list[str] = []
    for attempt in range(spec.attempt, spec.max_attempts):
        if attempt and spec.retry_backoff_s > 0:
            time.sleep(spec.retry_backoff_s * 2 ** (attempt - 1))
        result = run_point_attempt(replace(spec, attempt=attempt))
        if result.ok:
            return replace(result, failures=tuple(failures))
        failures.extend(result.failures)
    return PointResult(
        algorithm=spec.config.algorithm,
        rate=spec.rate,
        attempts=spec.max_attempts,
        point=None,
        resilience=None,
        failures=tuple(failures),
    )


def _supervised_point(spec: PointSpec, heartbeat) -> PointResult:
    """The :class:`~repro.resilience.PointSupervisor` task runner."""
    return run_point_attempt(spec, heartbeat=heartbeat)


def _rerun_quarantined_serially(spec: PointSpec) -> str:
    """Re-run a quarantined point in-process to capture the traceback.

    Only used with ``SupervisorConfig.rerun_quarantined``: a point
    that crashes its *worker* gives the journal nothing but an
    exitcode, while an in-process run surfaces the real Python
    traceback -- at the cost of betting the parent that the crash was
    an exception, not a process-killer.  The test fault hooks are
    deliberately not consulted here.
    """
    from repro.sim.sweep import _point_telemetry, _run_point

    telemetry = _point_telemetry(
        spec.config.algorithm, spec.rate, None, spec.collect_counters
    )
    try:
        _run_point(
            spec.config,
            spec.rate,
            telemetry,
            None,
            spec.faults,
            spec.invariants,
            spec.watchdog,
            spec.attempt,
        )
    except Exception:
        return traceback.format_exc(limit=8).strip()
    return "completed cleanly in-process"


def _backoff_delay(retry_backoff_s: float, next_attempt: int) -> float:
    """Serial-identical exponential backoff before attempt *next_attempt*."""
    if next_attempt <= 0 or retry_backoff_s <= 0:
        return 0.0
    return retry_backoff_s * 2 ** (next_attempt - 1)


class ParallelSweepRunner:
    """Fan a (multi-)algorithm load sweep out over a process pool.

    The public entry points are :meth:`run` (several algorithms, the
    shape :func:`repro.sim.sweep.sweep_algorithms` needs) and
    :meth:`run_algorithm` (a single curve).  ``workers=1`` is valid
    but pointless -- the sweep functions only delegate here when
    ``workers > 1``.

    Pass a :class:`~repro.resilience.SupervisorConfig` as *supervisor*
    to run the pool under a :class:`~repro.resilience.PointSupervisor`
    (heartbeats, per-point deadlines, worker reaping, poison-point
    quarantine) instead of a bare ``ProcessPoolExecutor``.
    """

    def __init__(
        self,
        workers: int,
        mp_context: str = "spawn",
        supervisor: SupervisorConfig | None = None,
        fleet=None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = workers
        #: spawn keeps workers free of inherited parent state (open
        #: sinks, RNGs, the loaded journal), so per-point determinism
        #: holds regardless of platform default start method.
        self.mp_context = mp_context
        #: a live :class:`repro.service.ServiceServer` to schedule over
        #: remote fleet workers instead of a local pool.  Fleet runs
        #: are always supervised -- leases need a policy.
        self.fleet = fleet
        if fleet is not None and supervisor is None:
            supervisor = SupervisorConfig()
        self.supervisor = supervisor

    # -- public API ------------------------------------------------------

    def run(
        self,
        config: SimulationConfig,
        algorithms: Sequence[str],
        rates: Sequence[float],
        progress: Callable[[str], None] | None = None,
        telemetry_dir: Path | str | None = None,
        collect_counters: bool = False,
        faults: FaultConfig | None = None,
        invariants: InvariantConfig | None = None,
        watchdog: WatchdogConfig | None = None,
        journal: SweepJournal | None = None,
        resume: bool = False,
        max_attempts: int = 1,
        retry_backoff_s: float = 0.0,
        profile_into: PhaseProfiler | None = None,
    ) -> dict[str, BNFCurve]:
        """Sweep every (algorithm, rate) pair through the pool.

        All algorithms share one pool, so a slow algorithm's tail
        overlaps the next algorithm's points instead of serializing
        behind it.  Returns curves with points in ``rates`` order --
        identical to the serial :func:`sweep_algorithms`.

        With *profile_into* set, every worker runs its point with phase
        profiling armed and ships the serialized attribution back in
        its :class:`PointResult`; the parent merges the records into
        *profile_into* and into the sweep manifest, so "where did the
        pool's wall time go" survives the process boundary.

        The sweep manifest is written even when the sweep fails (in a
        ``finally``), so an aborted run still documents what it did.
        """
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        started = time.perf_counter()
        completed: dict[tuple[str, str], BNFPoint] = {}
        resumed_keys: set[tuple[str, str]] = set()
        pending: list[PointSpec] = []
        heartbeat_cycles = (
            self.supervisor.heartbeat_interval_cycles
            if self.supervisor is not None
            else 1_000.0
        )
        for algorithm in algorithms:
            algo_config = config.with_algorithm(algorithm)
            for rate in rates:
                if resume and journal is not None:
                    cached = journal.completed_point(algorithm, rate)
                    if cached is not None:
                        key = (algorithm, rate_key(rate))
                        completed[key] = cached
                        resumed_keys.add(key)
                        if progress is not None:
                            progress(
                                f"{algorithm} rate={rate:.4g} -> resumed "
                                f"from journal"
                            )
                        continue
                pending.append(PointSpec(
                    config=algo_config,
                    rate=rate,
                    telemetry_dir=(
                        str(telemetry_dir) if telemetry_dir is not None else None
                    ),
                    collect_counters=collect_counters,
                    faults=faults,
                    invariants=invariants,
                    watchdog=watchdog,
                    max_attempts=max_attempts,
                    retry_backoff_s=retry_backoff_s,
                    profile=profile_into is not None,
                    heartbeat_interval_cycles=heartbeat_cycles,
                ))
        failed: dict[tuple[str, str], str] = {}
        quarantined: dict[tuple[str, str], str] = {}
        supervisor_summary: dict | None = None
        # The lock marks this parent as the journal's single writer;
        # a concurrent sweep over the same journal fails fast instead
        # of interleaving lines.
        lock = journal.lock() if journal is not None else None
        if lock is not None:
            lock.acquire()
        try:
            if pending:
                if self.supervisor is not None:
                    failed, quarantined, supervisor_summary = (
                        self._drain_supervised(
                            pending, completed, journal, progress,
                            max_attempts, profile_into, telemetry_dir,
                        )
                    )
                else:
                    self._drain_pool(
                        pending, completed, journal, progress, max_attempts,
                        profile_into,
                    )
        finally:
            if lock is not None:
                lock.release()
            if telemetry_dir is not None:
                self._write_sweep_manifest(
                    Path(telemetry_dir),
                    algorithms,
                    rates,
                    journal,
                    time.perf_counter() - started,
                    resumed_keys=resumed_keys,
                    profile=profile_into,
                    supervisor_summary=supervisor_summary,
                )
        if failed or quarantined:
            raise SweepSupervisionError(failed, quarantined)
        if resume and journal is not None:
            # A resumed sweep that reached this line replayed (or
            # re-ran) every point, so the retry history is dead weight:
            # rewrite the journal latest-wins.
            journal.compact()
        return {
            algorithm: BNFCurve(
                label=algorithm,
                points=[
                    completed[(algorithm, rate_key(rate))] for rate in rates
                ],
            )
            for algorithm in algorithms
        }

    def run_algorithm(
        self,
        config: SimulationConfig,
        rates: Sequence[float],
        **kwargs,
    ) -> BNFCurve:
        """Single-curve form (what ``sweep_algorithm(workers=N)`` uses)."""
        curves = self.run(config, (config.algorithm,), rates, **kwargs)
        return curves[config.algorithm]

    # -- shared result handling ------------------------------------------

    def _complete_point(
        self,
        result: PointResult,
        completed: dict[tuple[str, str], BNFPoint],
        journal: SweepJournal | None,
        progress: Callable[[str], None] | None,
        profile_into: PhaseProfiler | None,
    ) -> None:
        if profile_into is not None and result.profile is not None:
            profile_into.merge_record(result.profile)
        if journal is not None:
            journal.record_success(
                result.algorithm,
                result.rate,
                result.point,
                attempts=result.attempts,
                resilience=result.resilience,
            )
        completed[(result.algorithm, rate_key(result.rate))] = result.point
        if progress is not None:
            progress(
                f"{result.algorithm} rate={result.rate:.4g} -> "
                f"thr={result.point.throughput:.3f} flits/router/ns, "
                f"lat={result.point.latency_ns:.1f} ns"
            )

    def _journal_attempt_failure(
        self,
        result: PointResult,
        journal: SweepJournal | None,
        progress: Callable[[str], None] | None,
        max_attempts: int,
    ) -> None:
        message = result.failures[-1]
        if journal is not None:
            journal.record_failure(
                result.algorithm, result.rate, result.attempts, message
            )
        if progress is not None:
            progress(
                f"{result.algorithm} rate={result.rate:.4g} "
                f"attempt {result.attempts}/{max_attempts} failed: "
                f"{message}"
            )

    # -- executor-pool plumbing ------------------------------------------

    def _drain_pool(
        self,
        pending: list[PointSpec],
        completed: dict[tuple[str, str], BNFPoint],
        journal: SweepJournal | None,
        progress: Callable[[str], None] | None,
        max_attempts: int,
        profile_into: PhaseProfiler | None = None,
    ) -> None:
        """Run the pending specs; journal results in completion order.

        Retries are rescheduled *here*, not inside the worker: a failed
        attempt returns immediately, its backoff elapses on the
        parent's delayed heap, and the worker slot serves other points
        meanwhile.
        """
        from repro.sim.sweep import SweepPointError

        context = multiprocessing.get_context(self.mp_context)
        workers = min(self.workers, len(pending))
        #: (ready_at, seq, spec) -- retries waiting out their backoff.
        delayed: list[tuple[float, int, PointSpec]] = []
        seq = itertools.count()
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=context
        ) as pool:
            futures = {
                pool.submit(run_point_attempt, spec): spec for spec in pending
            }
            while futures or delayed:
                now = time.monotonic()
                while delayed and delayed[0][0] <= now:
                    _, _, spec = heapq.heappop(delayed)
                    futures[pool.submit(run_point_attempt, spec)] = spec
                if not futures:
                    time.sleep(max(0.0, delayed[0][0] - time.monotonic()))
                    continue
                timeout = (
                    max(0.0, delayed[0][0] - time.monotonic())
                    if delayed
                    else None
                )
                done, _ = futures_wait(
                    set(futures), timeout=timeout, return_when=FIRST_COMPLETED
                )
                broken: list[tuple[PointSpec, BaseException]] = []
                for future in done:
                    spec = futures.pop(future)
                    try:
                        result: PointResult = future.result()
                    except Exception as error:
                        # Worker death: BrokenProcessPool (which also
                        # failed every other pending future in this
                        # batch) or a result that broke unpickling.
                        # Journal the in-flight point(s) as worker-lost
                        # failures *before* surfacing the error, so a
                        # --resume rerun retries them.
                        if journal is not None:
                            journal.record_failure(
                                spec.config.algorithm,
                                spec.rate,
                                spec.attempt + 1,
                                f"{type(error).__name__}: {error}",
                                reason="worker-lost",
                            )
                        broken.append((spec, error))
                        continue
                    if result.ok:
                        self._complete_point(
                            result, completed, journal, progress, profile_into
                        )
                        continue
                    self._journal_attempt_failure(
                        result, journal, progress, max_attempts
                    )
                    if result.attempts < max_attempts:
                        retry = replace(spec, attempt=result.attempts)
                        heapq.heappush(delayed, (
                            time.monotonic() + _backoff_delay(
                                spec.retry_backoff_s, result.attempts
                            ),
                            next(seq),
                            retry,
                        ))
                        continue
                    # Fail the sweep like the serial runner: everything
                    # already journalled stays journalled, the rest is
                    # abandoned (their futures are cancelled) and a
                    # --resume rerun picks them up.
                    pool.shutdown(wait=False, cancel_futures=True)
                    raise SweepPointError(
                        result.algorithm,
                        result.rate,
                        result.attempts,
                        WorkerPointFailure(result.failures[-1]),
                    )
                if broken:
                    spec, error = broken[0]
                    pool.shutdown(wait=False, cancel_futures=True)
                    raise SweepPointError(
                        spec.config.algorithm,
                        spec.rate,
                        spec.attempt + 1,
                        WorkerPointFailure(
                            f"worker process died before returning this "
                            f"point ({type(error).__name__}: {error}); "
                            f"use supervisor=SupervisorConfig(...) to "
                            f"survive worker loss"
                        ),
                    )

    # -- supervised plumbing ---------------------------------------------

    def _drain_supervised(
        self,
        pending: list[PointSpec],
        completed: dict[tuple[str, str], BNFPoint],
        journal: SweepJournal | None,
        progress: Callable[[str], None] | None,
        max_attempts: int,
        profile_into: PhaseProfiler | None,
        telemetry_dir: Path | str | None,
    ) -> tuple[dict, dict, dict]:
        """Run the pending specs under a :class:`PointSupervisor`.

        Unlike the executor path, supervision *degrades*: a point that
        exhausts its attempts or gets quarantined is recorded and the
        rest of the sweep continues; the caller raises
        :class:`SweepSupervisionError` at the end if anything is
        missing.  Returns (failed, quarantined, supervisor summary).
        """
        assert self.supervisor is not None
        specs: dict[tuple[str, str], PointSpec] = {
            spec.key: spec for spec in pending
        }
        failed: dict[tuple[str, str], str] = {}
        quarantined: dict[tuple[str, str], str] = {}
        telemetry = None
        if telemetry_dir is not None:
            from repro.obs.sink import JsonlSink
            from repro.obs.telemetry import Telemetry

            trace_name = (
                SERVICE_TRACE_NAME
                if self.fleet is not None
                else SUPERVISOR_TRACE_NAME
            )
            path = Path(telemetry_dir) / trace_name
            path.parent.mkdir(parents=True, exist_ok=True)
            telemetry = Telemetry(sink=JsonlSink(path))
        if self.fleet is not None:
            # Same policy, same event vocabulary, remote holders: the
            # coordinator leases specs to connected fleet workers and
            # this loop below cannot tell the difference.
            from repro.service.coordinator import FleetCoordinator

            supervisor = FleetCoordinator(
                self.fleet,
                config=self.supervisor,
                telemetry=telemetry,
                resubmit_crashed=True,
                task_kind="sweep-point",
            )
        else:
            supervisor = PointSupervisor(
                workers=min(self.workers, len(pending)),
                runner=_supervised_point,
                config=self.supervisor,
                mp_context=self.mp_context,
                telemetry=telemetry,
                resubmit_crashed=True,
            )
        try:
            with supervisor:
                for spec in pending:
                    supervisor.submit(spec.key, spec)
                while supervisor.outstanding:
                    event = supervisor.next_event()
                    key = event.task_id
                    spec = specs[key]
                    if event.kind == "result":
                        result: PointResult = event.result
                        if result.ok:
                            self._complete_point(
                                result, completed, journal, progress,
                                profile_into,
                            )
                            continue
                        self._journal_attempt_failure(
                            result, journal, progress, max_attempts
                        )
                        if result.attempts < max_attempts:
                            retry = replace(spec, attempt=result.attempts)
                            specs[key] = retry
                            supervisor.submit(
                                key,
                                retry,
                                delay_s=_backoff_delay(
                                    spec.retry_backoff_s, result.attempts
                                ),
                            )
                        else:
                            failed[key] = result.failures[-1]
                    elif event.kind in ("worker-lost", "timeout"):
                        # The supervisor already resubmitted (or will
                        # quarantine); journal the crash so the retry
                        # trail survives a parent crash too.
                        if journal is not None:
                            journal.record_failure(
                                spec.config.algorithm,
                                spec.rate,
                                spec.attempt + 1,
                                event.detail,
                                reason=event.kind,
                            )
                        if progress is not None:
                            progress(
                                f"{spec.config.algorithm} "
                                f"rate={spec.rate:.4g} {event.kind} "
                                f"(crash {event.crashes}/"
                                f"{self.supervisor.quarantine_after}): "
                                f"{event.detail}"
                            )
                    elif event.kind == "quarantined":
                        detail = event.detail
                        if self.supervisor.rerun_quarantined:
                            detail = (
                                f"{detail}; serial re-run: "
                                f"{_rerun_quarantined_serially(spec)}"
                            )
                        if journal is not None:
                            journal.record_quarantined(
                                spec.config.algorithm,
                                spec.rate,
                                crashes=event.crashes,
                                error=detail,
                            )
                        quarantined[key] = detail
                        if progress is not None:
                            progress(
                                f"{spec.config.algorithm} "
                                f"rate={spec.rate:.4g} quarantined after "
                                f"{event.crashes} supervised crash(es)"
                            )
            summary = supervisor.summary()
        finally:
            if telemetry is not None:
                telemetry.finalize()
        return failed, quarantined, summary

    # -- the sweep manifest ----------------------------------------------

    def _write_sweep_manifest(
        self,
        telemetry_dir: Path,
        algorithms: Sequence[str],
        rates: Sequence[float],
        journal: SweepJournal | None,
        wall_time_s: float,
        resumed_keys: set[tuple[str, str]],
        profile: PhaseProfiler | None = None,
        supervisor_summary: dict | None = None,
    ) -> None:
        """Merge the per-worker traces into one sweep-level manifest.

        Workers each write their own per-point trace file (no sink is
        ever shared across processes); this parent-side manifest is the
        piece that ties them back together -- one JSON document mapping
        every (algorithm, rate) to its trace file, alongside the pool
        shape and wall time, so ``repro obs`` users and notebooks can
        enumerate a parallel sweep's traces without globbing.  Points
        resumed from the journal produced no trace in *this* run, so
        they carry ``"trace": null`` and ``"resumed": true`` instead of
        pointing at a file that may not exist in this telemetry dir.
        """
        from repro.sim.sweep import trace_filename

        points = []
        for algorithm in algorithms:
            for rate in rates:
                resumed = (algorithm, rate_key(rate)) in resumed_keys
                points.append({
                    "algorithm": algorithm,
                    "rate": rate,
                    "rate_key": rate_key(rate),
                    "trace": (
                        None if resumed else trace_filename(algorithm, rate)
                    ),
                    "resumed": resumed,
                })
        manifest = {
            "kind": "parallel-sweep-manifest",
            "workers": self.workers,
            "mp_context": self.mp_context,
            "wall_time_s": wall_time_s,
            "resumed_points": len(resumed_keys),
            "journal": str(journal.path) if journal is not None else None,
            "points": points,
        }
        if supervisor_summary is not None:
            # Tuning knobs + live reap/quarantine totals, and where the
            # supervisor's own trace (events + counters) landed.
            manifest["supervisor"] = {
                **supervisor_summary,
                "trace": (
                    SERVICE_TRACE_NAME
                    if self.fleet is not None
                    else SUPERVISOR_TRACE_NAME
                ),
            }
        if profile is not None:
            # The workers' merged phase attribution: where the pool's
            # aggregate wall time went (arbitration/traversal/delivery).
            manifest["profile"] = profile.to_record()["phases"]
        telemetry_dir.mkdir(parents=True, exist_ok=True)
        path = telemetry_dir / "sweep_manifest.json"
        path.write_text(json.dumps(manifest, indent=2) + "\n", encoding="utf-8")
