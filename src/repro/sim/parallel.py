"""Parallel sweep execution over the checkpoint journal.

A load sweep is embarrassingly parallel: every (algorithm, rate) point
is an independent simulation whose seed derives only from its config,
and PR 2's :class:`~repro.resilience.SweepJournal` already treats each
point as an independently checkpointed unit of work.  This module adds
the missing piece -- a :class:`ParallelSweepRunner` that treats the
journal as a shared work queue:

* the **parent** claims the pending (algorithm, ``repr(rate)``) keys
  (points whose latest journal record is not a success), submits one
  picklable :class:`PointSpec` per key to a spawn-context
  :class:`~concurrent.futures.ProcessPoolExecutor`, and splices
  results back through the journal's resume path as they complete;
* each **worker** reconstructs its resilience objects (fault injector,
  invariant checker, watchdog) from their config specs, runs the point
  with exactly the serial code path (:func:`repro.sim.sweep._run_point`
  -- same seeding, same retry re-seeding), and writes its own
  per-point telemetry trace file, so no two processes ever share a
  sink;
* the parent is the journal's **single writer**, so the JSONL file
  stays line-atomic and a crashed parallel sweep resumes with
  ``resume=True`` exactly like a crashed serial one.

Determinism: a point's result depends only on its
:class:`~repro.sim.config.SimulationConfig` (plus the attempt-indexed
seed bumps), never on scheduling, so ``workers=N`` produces bitwise
identical per-point stats to ``workers=1``.  Only the journal's line
*order* differs (completion order instead of sweep order), which the
latest-wins reader never observes.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

from repro.obs.profiler import PhaseProfiler
from repro.resilience.checkpoint import SweepJournal, rate_key
from repro.resilience.faults import FaultConfig
from repro.resilience.invariants import InvariantConfig
from repro.resilience.watchdog import WatchdogConfig
from repro.sim.config import SimulationConfig
from repro.sim.metrics import BNFCurve, BNFPoint


@dataclass(frozen=True)
class PointSpec:
    """One unit of work, picklable across a spawn boundary.

    Resilience settings travel as their *config* dataclasses; the
    worker builds the live injector/checker/watchdog itself, because
    those carry RNG state and open-ended references that must not leak
    between points (and would not survive pickling meaningfully).
    """

    config: SimulationConfig
    rate: float
    telemetry_dir: str | None
    collect_counters: bool
    faults: FaultConfig | None
    invariants: InvariantConfig | None
    watchdog: WatchdogConfig | None
    max_attempts: int
    retry_backoff_s: float
    #: arm phase profiling in the worker; the per-point attribution
    #: comes back serialized in :attr:`PointResult.profile`.
    profile: bool = False

    @property
    def key(self) -> tuple[str, str]:
        return (self.config.algorithm, rate_key(self.rate))


@dataclass(frozen=True)
class PointResult:
    """What a worker sends back: a point, or the trail of failures."""

    algorithm: str
    rate: float
    attempts: int
    point: BNFPoint | None
    resilience: dict | None
    #: one pre-formatted ``"TypeName: message"`` per failed attempt, in
    #: attempt order, so the parent can journal each failure exactly as
    #: the serial runner would have.
    failures: tuple[str, ...] = ()
    #: the worker's serialized ``profile`` record (phase wall-time
    #: attribution) when the spec asked for profiling, else ``None``.
    profile: dict | None = None

    @property
    def ok(self) -> bool:
        return self.point is not None


class WorkerPointFailure(RuntimeError):
    """A point failed inside a worker; str() is the worker's last error."""


def run_point_spec(spec: PointSpec) -> PointResult:
    """Worker entry: run one sweep point with the serial retry loop.

    Module-level (picklable by reference) and importing lazily, so a
    spawn-context worker only pays the import once per process, not
    per point.  Mirrors :func:`repro.sim.sweep.sweep_algorithm`'s
    attempt loop exactly: retries sleep the same exponential backoff
    and bump the same simulation/fault seeds.
    """
    from repro.sim.sweep import _point_telemetry, _run_point

    failures: list[str] = []
    for attempt in range(spec.max_attempts):
        if attempt and spec.retry_backoff_s > 0:
            time.sleep(spec.retry_backoff_s * 2 ** (attempt - 1))
        telemetry = _point_telemetry(
            spec.config.algorithm,
            spec.rate,
            spec.telemetry_dir,
            spec.collect_counters,
            profile=spec.profile,
        )
        try:
            point, resilience = _run_point(
                spec.config,
                spec.rate,
                telemetry,
                None,
                spec.faults,
                spec.invariants,
                spec.watchdog,
                attempt,
            )
        except Exception as error:
            failures.append(f"{type(error).__name__}: {error}")
            continue
        return PointResult(
            algorithm=spec.config.algorithm,
            rate=spec.rate,
            attempts=attempt + 1,
            point=point,
            resilience=resilience,
            failures=tuple(failures),
            profile=(
                telemetry.profiler.to_record()
                if spec.profile and telemetry is not None
                else None
            ),
        )
    return PointResult(
        algorithm=spec.config.algorithm,
        rate=spec.rate,
        attempts=spec.max_attempts,
        point=None,
        resilience=None,
        failures=tuple(failures),
    )


class ParallelSweepRunner:
    """Fan a (multi-)algorithm load sweep out over a process pool.

    The public entry points are :meth:`run` (several algorithms, the
    shape :func:`repro.sim.sweep.sweep_algorithms` needs) and
    :meth:`run_algorithm` (a single curve).  ``workers=1`` is valid
    but pointless -- the sweep functions only delegate here when
    ``workers > 1``.
    """

    def __init__(self, workers: int, mp_context: str = "spawn") -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = workers
        #: spawn keeps workers free of inherited parent state (open
        #: sinks, RNGs, the loaded journal), so per-point determinism
        #: holds regardless of platform default start method.
        self.mp_context = mp_context

    # -- public API ------------------------------------------------------

    def run(
        self,
        config: SimulationConfig,
        algorithms: Sequence[str],
        rates: Sequence[float],
        progress: Callable[[str], None] | None = None,
        telemetry_dir: Path | str | None = None,
        collect_counters: bool = False,
        faults: FaultConfig | None = None,
        invariants: InvariantConfig | None = None,
        watchdog: WatchdogConfig | None = None,
        journal: SweepJournal | None = None,
        resume: bool = False,
        max_attempts: int = 1,
        retry_backoff_s: float = 0.0,
        profile_into: PhaseProfiler | None = None,
    ) -> dict[str, BNFCurve]:
        """Sweep every (algorithm, rate) pair through the pool.

        All algorithms share one pool, so a slow algorithm's tail
        overlaps the next algorithm's points instead of serializing
        behind it.  Returns curves with points in ``rates`` order --
        identical to the serial :func:`sweep_algorithms`.

        With *profile_into* set, every worker runs its point with phase
        profiling armed and ships the serialized attribution back in
        its :class:`PointResult`; the parent merges the records into
        *profile_into* and into the sweep manifest, so "where did the
        pool's wall time go" survives the process boundary.
        """
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        started = time.perf_counter()
        completed: dict[tuple[str, str], BNFPoint] = {}
        pending: list[PointSpec] = []
        for algorithm in algorithms:
            algo_config = config.with_algorithm(algorithm)
            for rate in rates:
                if resume and journal is not None:
                    cached = journal.completed_point(algorithm, rate)
                    if cached is not None:
                        completed[(algorithm, rate_key(rate))] = cached
                        if progress is not None:
                            progress(
                                f"{algorithm} rate={rate:.4g} -> resumed "
                                f"from journal"
                            )
                        continue
                pending.append(PointSpec(
                    config=algo_config,
                    rate=rate,
                    telemetry_dir=(
                        str(telemetry_dir) if telemetry_dir is not None else None
                    ),
                    collect_counters=collect_counters,
                    faults=faults,
                    invariants=invariants,
                    watchdog=watchdog,
                    max_attempts=max_attempts,
                    retry_backoff_s=retry_backoff_s,
                    profile=profile_into is not None,
                ))
        if pending:
            self._drain_pool(
                pending, completed, journal, progress, max_attempts,
                profile_into,
            )
        if resume and journal is not None:
            # A resumed sweep that reached this line replayed (or
            # re-ran) every point, so the retry history is dead weight:
            # rewrite the journal latest-wins.
            journal.compact()
        curves = {
            algorithm: BNFCurve(
                label=algorithm,
                points=[
                    completed[(algorithm, rate_key(rate))] for rate in rates
                ],
            )
            for algorithm in algorithms
        }
        if telemetry_dir is not None:
            self._write_sweep_manifest(
                Path(telemetry_dir),
                algorithms,
                rates,
                journal,
                time.perf_counter() - started,
                resumed=len(completed) - len(pending)
                if resume and journal is not None
                else 0,
                profile=profile_into,
            )
        return curves

    def run_algorithm(
        self,
        config: SimulationConfig,
        rates: Sequence[float],
        **kwargs,
    ) -> BNFCurve:
        """Single-curve form (what ``sweep_algorithm(workers=N)`` uses)."""
        curves = self.run(config, (config.algorithm,), rates, **kwargs)
        return curves[config.algorithm]

    # -- pool plumbing ---------------------------------------------------

    def _drain_pool(
        self,
        pending: list[PointSpec],
        completed: dict[tuple[str, str], BNFPoint],
        journal: SweepJournal | None,
        progress: Callable[[str], None] | None,
        max_attempts: int,
        profile_into: PhaseProfiler | None = None,
    ) -> None:
        """Run the pending specs; journal results in completion order."""
        from repro.sim.sweep import SweepPointError

        context = multiprocessing.get_context(self.mp_context)
        workers = min(self.workers, len(pending))
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=context
        ) as pool:
            futures = {
                pool.submit(run_point_spec, spec): spec for spec in pending
            }
            for future in as_completed(futures):
                result: PointResult = future.result()
                if journal is not None:
                    for attempt, message in enumerate(result.failures, start=1):
                        journal.record_failure(
                            result.algorithm, result.rate, attempt, message
                        )
                if progress is not None:
                    for attempt, message in enumerate(result.failures, start=1):
                        progress(
                            f"{result.algorithm} rate={result.rate:.4g} "
                            f"attempt {attempt}/{max_attempts} failed: "
                            f"{message}"
                        )
                if not result.ok:
                    # Fail the sweep like the serial runner: everything
                    # already journalled stays journalled, the rest is
                    # abandoned (their futures are cancelled) and a
                    # --resume rerun picks them up.
                    pool.shutdown(wait=False, cancel_futures=True)
                    raise SweepPointError(
                        result.algorithm,
                        result.rate,
                        result.attempts,
                        WorkerPointFailure(result.failures[-1]),
                    )
                if profile_into is not None and result.profile is not None:
                    profile_into.merge_record(result.profile)
                if journal is not None:
                    journal.record_success(
                        result.algorithm,
                        result.rate,
                        result.point,
                        attempts=result.attempts,
                        resilience=result.resilience,
                    )
                completed[
                    (result.algorithm, rate_key(result.rate))
                ] = result.point
                if progress is not None:
                    progress(
                        f"{result.algorithm} rate={result.rate:.4g} -> "
                        f"thr={result.point.throughput:.3f} "
                        f"flits/router/ns, "
                        f"lat={result.point.latency_ns:.1f} ns"
                    )

    def _write_sweep_manifest(
        self,
        telemetry_dir: Path,
        algorithms: Sequence[str],
        rates: Sequence[float],
        journal: SweepJournal | None,
        wall_time_s: float,
        resumed: int,
        profile: PhaseProfiler | None = None,
    ) -> None:
        """Merge the per-worker traces into one sweep-level manifest.

        Workers each write their own per-point trace file (no sink is
        ever shared across processes); this parent-side manifest is the
        piece that ties them back together -- one JSON document mapping
        every (algorithm, rate) to its trace file, alongside the pool
        shape and wall time, so ``repro obs`` users and notebooks can
        enumerate a parallel sweep's traces without globbing.
        """
        from repro.sim.sweep import trace_filename

        points = [
            {
                "algorithm": algorithm,
                "rate": rate,
                "rate_key": rate_key(rate),
                "trace": trace_filename(algorithm, rate),
            }
            for algorithm in algorithms
            for rate in rates
        ]
        manifest = {
            "kind": "parallel-sweep-manifest",
            "workers": self.workers,
            "mp_context": self.mp_context,
            "wall_time_s": wall_time_s,
            "resumed_points": resumed,
            "journal": str(journal.path) if journal is not None else None,
            "points": points,
        }
        if profile is not None:
            # The workers' merged phase attribution: where the pool's
            # aggregate wall time went (arbitration/traversal/delivery).
            manifest["profile"] = profile.to_record()["phases"]
        telemetry_dir.mkdir(parents=True, exist_ok=True)
        path = telemetry_dir / "sweep_manifest.json"
        path.write_text(json.dumps(manifest, indent=2) + "\n", encoding="utf-8")
