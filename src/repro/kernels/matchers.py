"""Vectorized arbitration kernels over bitmask/array trial batches.

Each kernel evaluates *all trials at once* and returns per-trial match
counts, plus (optionally) the per-trial grant lists **in the exact
order the object-path arbiter emits them** -- ascending output for
SPAA, ascending row for OPF and PIM1's accept loop, wave-sweep order
for WFA.  Emission order matters because the fault injector's
grant-suppression draws are sequential per grant: replaying grants in
any other order would consume its RNG stream differently and break
bitwise parity.

The kernels assume the default connection matrix (each packet
nominates through exactly one read-port row -- see
:mod:`repro.kernels.workload`), which makes WFA's granted-*packet*
check redundant: a packet's nominations all share one row, so the
granted-row check subsumes it.

Cross-trial arbiter state vectorizes two ways:

* WFA's priority pointer advances only on arbitrations with at least
  one usable nomination, so the pointer at trial ``t`` is the
  exclusive running count of non-empty earlier trials, mod the
  rotation period -- one ``cumsum``.
* SPAA's least-recently-selected history is a genuine sequential
  recurrence (each grant reorders future priorities), so its grant
  step runs as a tight Python loop over primitive lists, with the
  expensive parts (workload, nomination construction, output choices)
  still batched.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.types import Grant
from repro.kernels import rng as krng
from repro.kernels.workload import NO_OUTPUT, BatchWorkload
from repro.router.ports import NUM_OUTPUT_PORTS, NUM_ROWS

#: "empty cell" marker in the per-cell uid tables (any uid is smaller).
SENTINEL = 1 << 30


def cell_table(workload: BatchWorkload) -> np.ndarray:
    """The per-cell nomination table: min uid per (trial, row, output).

    Cell ``(t, r, o)`` holds the oldest (lowest-uid) packet that
    nominates ``(r, o)`` in trial ``t``, or :data:`SENTINEL` when the
    cell is unrequested.  This is the array form of the object path's
    per-cell nominations after the arbiter's oldest-wins reduction
    (WFA's ``_beats``, PIM's oldest-of-row pick): ages are ``-uid`` and
    uids are unique, so "oldest" is exactly "minimum uid".
    """
    trials, load = workload.trials, workload.load
    cells = np.full((trials, NUM_ROWS, NUM_OUTPUT_PORTS), SENTINEL, np.int64)
    t_grid = np.broadcast_to(
        np.arange(trials, dtype=np.int64)[:, None], (trials, load)
    )
    uid_grid = np.broadcast_to(
        np.arange(load, dtype=np.int64)[None, :], (trials, load)
    )
    first = workload.conn1
    np.minimum.at(
        cells,
        (t_grid[first], workload.row[first], workload.out1[first]),
        uid_grid[first],
    )
    second = workload.out2 != NO_OUTPUT
    np.minimum.at(
        cells,
        (t_grid[second], workload.row[second], workload.out2[second]),
        uid_grid[second],
    )
    return cells


# -- WFA -------------------------------------------------------------------


def wfa_kernel(
    workload: BatchWorkload, rotary: bool, collect: bool
) -> tuple[np.ndarray, list[list[Grant]] | None]:
    """Wrapped wave-front arbitration, all trials per sweep step."""
    trials = workload.trials
    cells = cell_table(workload)
    valid = (cells != SENTINEL) & workload.free_bool[:, None, :]
    nonempty = valid.any(axis=(1, 2))

    # The object arbiter returns early (pointer untouched) on empty
    # usable sets, so the pointer at trial t counts non-empty trials
    # strictly before t.
    advanced = np.cumsum(nonempty) - nonempty
    if rotary:
        # The rotary ring is the eight network rows, which are rows
        # 0..7 in ring order under the default port numbering.
        pointer = advanced % (8 * NUM_OUTPUT_PORTS)
        start_row = pointer % 8
        start_col = (pointer // 8) % NUM_OUTPUT_PORTS
    else:
        pointer = advanced % (NUM_ROWS * NUM_OUTPUT_PORTS)
        start_row = pointer // NUM_OUTPUT_PORTS
        start_col = pointer % NUM_OUTPUT_PORTS

    row_free = np.full(trials, (1 << NUM_ROWS) - 1, np.int64)
    col_free = np.full(trials, (1 << NUM_OUTPUT_PORTS) - 1, np.int64)
    counts = np.zeros(trials, np.int64)
    t_all = np.arange(trials)
    steps: list[tuple[np.ndarray, ...]] = []
    for diagonal in range(NUM_ROWS):
        for col_offset in range(NUM_OUTPUT_PORTS):
            col = (start_col + col_offset) % NUM_OUTPUT_PORTS
            row = (start_row + diagonal - col_offset) % NUM_ROWS
            ok = (
                valid[t_all, row, col]
                & (((row_free >> row) & 1) != 0)
                & (((col_free >> col) & 1) != 0)
            )
            if not ok.any():
                continue
            row_free &= ~np.where(ok, np.int64(1) << row, 0)
            col_free &= ~np.where(ok, np.int64(1) << col, 0)
            counts += ok
            if collect:
                sel = np.nonzero(ok)[0]
                srow, scol = row[sel], col[sel]
                steps.append((sel, srow, scol, cells[sel, srow, scol]))
    if not collect:
        return counts, None
    per_trial: list[list[Grant]] = [[] for _ in range(trials)]
    for sel, srow, scol, suid in steps:
        for t, r, c, u in zip(
            sel.tolist(), srow.tolist(), scol.tolist(), suid.tolist()
        ):
            per_trial[t].append(Grant(row=r, packet=u, output=c))
    return counts, per_trial


# -- PIM1 ------------------------------------------------------------------


def pim1_kernel(
    workload: BatchWorkload, collect: bool
) -> tuple[np.ndarray, list[list[Grant]] | None]:
    """One nominate/grant/accept round of PIM, all trials at once.

    Grant: each output draws ``k`` (keyed by the output) and takes the
    ``k+1``-th requesting row in ascending order -- the array form of
    ``rows[rng.randrange(len(rows))]`` over the sorted row set.
    Accept: each row with offers draws ``j`` (keyed by the row) and
    takes its ``j+1``-th offering output in ascending order, matching
    the object path's per-row offer lists built in sorted-output order.
    """
    trials = workload.trials
    cells = cell_table(workload)
    requested = (cells != SENTINEL) & workload.free_bool[:, None, :]

    t = np.arange(trials, dtype=np.uint64)[:, None]
    outs = np.arange(NUM_OUTPUT_PORTS, dtype=np.uint64)[None, :]
    n_rows = requested.sum(axis=1)  # (T, 7) requesting rows per output
    k = krng.words(workload.seed, t, krng.D_PIM_GRANT, 0, outs) % np.maximum(
        n_rows, 1
    ).astype(np.uint64)
    row_rank = np.cumsum(requested, axis=1)
    offers = requested & (row_rank == (k.astype(np.int64) + 1)[:, None, :])

    n_offers = offers.sum(axis=2)  # (T, 16) offers per row
    rows = np.arange(NUM_ROWS, dtype=np.uint64)[None, :]
    j = krng.words(workload.seed, t, krng.D_PIM_ACCEPT, 0, rows) % np.maximum(
        n_offers, 1
    ).astype(np.uint64)
    offer_rank = np.cumsum(offers, axis=2)
    accepted = offers & (offer_rank == (j.astype(np.int64) + 1)[:, :, None])

    counts = (n_offers > 0).sum(axis=1)
    if not collect:
        return counts, None
    per_trial: list[list[Grant]] = [[] for _ in range(trials)]
    # nonzero is row-major: trials ascending, rows ascending within a
    # trial -- exactly the accept loop's ascending-row emission order.
    for t_i, r, o in zip(*(idx.tolist() for idx in np.nonzero(accepted))):
        per_trial[t_i].append(
            Grant(row=r, packet=int(cells[t_i, r, o]), output=o)
        )
    return counts, per_trial


# -- single-output nominations (SPAA, OPF) ---------------------------------


@dataclass(frozen=True)
class SingleOutputBatch:
    """At most one nomination per input port per trial, as (T, 8) arrays."""

    valid: np.ndarray  #: the port nominated this trial
    row: np.ndarray  #: nominating read-port row
    out: np.ndarray  #: the single chosen output
    uid: np.ndarray  #: the nominated packet


def single_output_batch(
    workload: BatchWorkload, check_free: bool
) -> SingleOutputBatch:
    """Batched form of the object path's single-output nominations.

    Per (trial, port): the oldest packet with at least one usable
    candidate wins the port's nomination slot, then picks uniformly
    among its usable candidates *in packet-output order* (first
    direction before second), keyed by the packet's uid -- matching
    ``outputs[rng(len(outputs))]`` on the object path.
    """
    trials, load = workload.trials, workload.load
    tp = np.arange(trials)[:, None]

    cand1 = workload.conn1
    cand2 = workload.out2 != NO_OUTPUT
    if check_free:
        cand1 = cand1 & workload.free_bool[tp, workload.out1]
        safe2 = np.where(cand2, workload.out2, 0)
        cand2 = cand2 & workload.free_bool[tp, safe2]
    n_cand = cand1.astype(np.int64) + cand2

    uid_or_load = np.where(
        n_cand > 0, np.arange(load, dtype=np.int64)[None, :], load
    )
    sel_uid = np.empty((trials, 8), np.int64)
    for port in range(8):
        sel_uid[:, port] = np.where(
            workload.port == port, uid_or_load, load
        ).min(axis=1)
    valid = sel_uid < load
    s = np.where(valid, sel_uid, 0)

    n_s = n_cand[tp, s]
    out1_s = workload.out1[tp, s]
    out2_s = workload.out2[tp, s]
    k = krng.words(
        workload.seed,
        np.arange(trials, dtype=np.uint64)[:, None],
        krng.D_NOM_CHOICE,
        s.astype(np.uint64),
    ) % np.maximum(n_s, 1).astype(np.uint64)
    chosen = np.where(
        n_s == 2,
        np.where(k == 0, out1_s, out2_s),
        np.where(cand1[tp, s], out1_s, out2_s),
    )
    return SingleOutputBatch(
        valid=valid, row=workload.row[tp, s], out=chosen, uid=sel_uid
    )


def opf_kernel(
    workload: BatchWorkload, collect: bool
) -> tuple[np.ndarray, list[list[Grant]] | None]:
    """Uncoordinated oldest-packet-first: lowest claiming row per output.

    OPF nominations skip the free check (the straw man aims blindly);
    the arbiter then drops busy-output claims, scans rows ascending and
    grants each output's first claimant.
    """
    trials = workload.trials
    noms = single_output_batch(workload, check_free=False)
    tp = np.arange(trials)[:, None]
    ok = noms.valid & workload.free_bool[tp, np.where(noms.valid, noms.out, 0)]

    counts = np.zeros(trials, np.int64)
    winners: list[tuple[int, np.ndarray, np.ndarray, np.ndarray]] = []
    for out in range(NUM_OUTPUT_PORTS):
        claims = ok & (noms.out == out)
        has = claims.any(axis=1)
        counts += has
        if collect and has.any():
            port_idx = np.where(claims, noms.row, NUM_ROWS).argmin(axis=1)
            sel = np.nonzero(has)[0]
            winners.append((
                out,
                sel,
                noms.row[sel, port_idx[sel]],
                noms.uid[sel, port_idx[sel]],
            ))
    if not collect:
        return counts, None
    # The object arbiter scans rows ascending, so order each trial's
    # grants by winner row (rows are unique within a trial).
    flat: list[tuple[int, int, int, int]] = []
    for out, sel, srow, suid in winners:
        flat.extend(
            zip(sel.tolist(), srow.tolist(), suid.tolist(), [out] * len(sel))
        )
    flat.sort()
    per_trial: list[list[Grant]] = [[] for _ in range(trials)]
    for t, r, u, out in flat:
        per_trial[t].append(Grant(row=r, packet=u, output=out))
    return counts, per_trial


def spaa_kernel(
    workload: BatchWorkload, rotary: bool, collect: bool
) -> tuple[np.ndarray, list[list[Grant]] | None]:
    """SPAA's grant step: vectorized nominations, sequential LRS loop.

    The least-recently-selected history couples every trial to all
    earlier grants, so the grant step itself is a Python loop -- but
    over primitive lists prepared by the batched nomination
    construction, not over packet/Nomination objects.
    """
    trials = workload.trials
    noms = single_output_batch(workload, check_free=True)
    valid_l = noms.valid.tolist()
    row_l = noms.row.tolist()
    out_l = noms.out.tolist()
    uid_l = noms.uid.tolist()

    last = [[-1] * NUM_ROWS for _ in range(NUM_OUTPUT_PORTS)]
    clock = 0
    counts = np.zeros(trials, np.int64)
    per_trial: list[list[Grant]] | None = [] if collect else None
    for t in range(trials):
        by_out: dict[int, list[tuple[int, int]]] = {}
        t_valid, t_row, t_out, t_uid = valid_l[t], row_l[t], out_l[t], uid_l[t]
        for port in range(8):
            if t_valid[port]:
                by_out.setdefault(t_out[port], []).append(
                    (t_row[port], t_uid[port])
                )
        grants: list[Grant] = []
        for out in sorted(by_out):
            candidates = by_out[out]
            if rotary:
                # Rotary Rule: network rows (torus read ports, rows
                # 0..7) pre-empt local ones; LRS breaks ties within.
                network = [c for c in candidates if c[0] < 8]
                if network:
                    candidates = network
            history = last[out]
            win_row, win_uid = min(
                candidates, key=lambda c: (history[c[0]], c[0])
            )
            clock += 1
            history[win_row] = clock
            if collect:
                grants.append(Grant(row=win_row, packet=win_uid, output=out))
        counts[t] = len(by_out)
        if collect:
            per_trial.append(grants)
    return counts, per_trial
