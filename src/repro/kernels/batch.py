"""Run one standalone-model point end to end on the batched backend.

:func:`run_batched` is the vectorized twin of
:meth:`repro.sim.standalone.StandaloneRouterModel.run`: same config in,
bit-identical :class:`~repro.sim.metrics.RunningStats` out.  Match
counts feed the Welford accumulator one trial at a time in trial order,
so mean/variance/min/max are not merely close to the object path's --
they are the same floating-point values.

Grant *objects* are only materialized when someone needs them (a fault
injector, whose per-grant suppression draws are sequential, or a
``trial_hook``, which the parity tests use to diff per-trial grants);
a plain measurement stays entirely in array land plus one cheap
counts loop.
"""

from __future__ import annotations

from repro.core.registry import canonical_name
from repro.kernels import matchers, workload
from repro.sim.metrics import RunningStats


def run_batched(
    config, faults=None, heartbeat=None, trial_hook=None
) -> RunningStats:
    """All trials of *config* (a ``StandaloneConfig``) as batched ops.

    *faults* accepts a ``FaultConfig`` or a built ``FaultInjector``,
    like the object model.  *trial_hook* (``hook(trial, grants)``) sees
    every trial's post-fault grant list in object-path emission order.
    *heartbeat* is driven between kernel phases and along the
    per-trial accumulation loop.
    """
    if faults is not None and not hasattr(faults, "filter_matching"):
        from repro.resilience.faults import FaultInjector

        faults = FaultInjector(faults)
    collect = faults is not None or trial_hook is not None

    if heartbeat is not None:
        heartbeat()
    batch = workload.generate(config)
    if heartbeat is not None:
        heartbeat()
    counts, per_trial = _dispatch(config, batch, collect)
    if heartbeat is not None:
        heartbeat()

    stats = RunningStats()
    if not collect:
        for count in counts.tolist():
            stats.add(float(count))
        return stats
    for trial, grants in enumerate(per_trial):
        if heartbeat is not None and trial % 4096 == 0:
            heartbeat()
        if faults is not None:
            grants = faults.filter_matching(grants, trial)
        if trial_hook is not None:
            trial_hook(trial, grants)
        stats.add(float(len(grants)))
    return stats


def _dispatch(config, batch, collect):
    algorithm = canonical_name(config.algorithm)
    if algorithm == "WFA-base":
        return matchers.wfa_kernel(batch, rotary=False, collect=collect)
    if algorithm == "WFA-rotary":
        return matchers.wfa_kernel(batch, rotary=True, collect=collect)
    if algorithm == "PIM1":
        return matchers.pim1_kernel(batch, collect=collect)
    if algorithm == "OPF":
        return matchers.opf_kernel(batch, collect=collect)
    if algorithm == "SPAA-base":
        return matchers.spaa_kernel(batch, rotary=False, collect=collect)
    if algorithm == "SPAA-rotary":
        return matchers.spaa_kernel(batch, rotary=True, collect=collect)
    raise ValueError(
        f"no vectorized kernel for {config.algorithm!r}; "
        "the caller should have fallen back to the object backend"
    )
