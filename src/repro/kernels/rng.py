"""The counter-based per-trial RNG stream shared by both backends.

The standalone matching model (:mod:`repro.sim.standalone`) used to
draw from one sequential ``random.Random``: the value of draw *k*
depended on every draw before it, across trials and across purposes.
That coupling is exactly what makes a batched backend impossible to
keep bit-identical -- a vectorized kernel cannot replay a Mersenne
Twister whose consumption pattern is data dependent.

This module replaces the sequential stream with a *keyed* stream:
every logical draw is addressed by a ``(trial, domain, a, b)`` counter
tuple and its value is a pure function of ``(seed, trial, domain, a,
b)``.  Consumption order is irrelevant -- the object path evaluates
keys lazily inside its branches, the vectorized path evaluates whole
key grids at once, and both obtain the same words.  The key schedule
(which draw site uses which key) is therefore the **draw-order
contract** between the backends; it is documented per call site in
docs/kernels.md and pinned by the seed-stability tests in
tests/sim/test_standalone.py.

The word function is a chained splitmix64 finalizer:

    seed_hash   = mix64(seed ^ SALT)
    trial_base  = mix64(seed_hash + trial * GAMMA)
    word        = mix64(trial_base + pack(domain, a, b) * GAMMA)

with ``pack(domain, a, b) = domain << 48 | a << 24 | b`` (so ``a`` and
``b`` must stay below 2**24 -- loads, rows, outputs and PIM rounds all
do, by orders of magnitude).  The same arithmetic runs as Python ints
here and as ``uint64`` arrays in :mod:`repro.kernels` -- see
:func:`words` -- and tests/kernels/test_rng.py asserts the two agree
bit for bit.

Derived draws:

* ``randbelow(n) = word % n`` -- the tiny modulo bias is irrelevant at
  these moduli (<= 8) and buys an identical formula on both sides.
* ``uniform() = (word >> 11) * 2**-53`` -- the top 53 bits as a float
  in [0, 1), the same construction CPython uses.

Everything in this module is stdlib-only so the object path never
needs numpy; the array variant imports numpy lazily.
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1
_GAMMA = 0x9E3779B97F4A7C15
_SALT = 0x5851F42D4C957F2D

#: key-packing field widths; ``a`` and ``b`` each get 24 bits.
_A_SHIFT = 24
_D_SHIFT = 48
KEY_FIELD_LIMIT = 1 << _A_SHIFT

# -- draw domains (the "what is this draw for" half of every key) -----------

#: input port of packet ``a`` (randbelow 8).
D_PORT = 1
#: local-vs-torus coin of packet ``a`` (uniform vs ``local_fraction``).
D_LOCAL_COIN = 2
#: local output pick of packet ``a`` (randbelow 3 over L0/L1/IO).
D_LOCAL_OUT = 3
#: first adaptive direction of packet ``a`` (randbelow 4).
D_FIRST_DIR = 4
#: two-direction coin of packet ``a`` (uniform vs ``two_direction_fraction``).
D_TWO_COIN = 5
#: second adaptive direction of packet ``a`` (randbelow 3 over the rest).
D_SECOND_DIR = 6
#: busy-output sample, swap-remove step ``a`` (randbelow 7 - a).
D_BUSY = 7
#: SPAA/OPF single-output pick of packet ``a`` (randbelow len(candidates)).
D_NOM_CHOICE = 8
#: PIM grant step, round ``a``, output ``b`` (randbelow len(rows)).
D_PIM_GRANT = 9
#: PIM accept step, round ``a``, row ``b`` (randbelow len(offers)).
D_PIM_ACCEPT = 10
#: sequential fallback for arbiters outside the keyed protocol
#: (draw index ``a`` within the trial); never used by the vectorized set.
D_SEQ = 11


def mix64(z: int) -> int:
    """The splitmix64 finalizer (Stafford's Mix13), a 64-bit bijection."""
    z &= _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def seed_hash(seed: int) -> int:
    """Pre-mixed seed, shared by the scalar and array word functions."""
    return mix64((seed & _MASK64) ^ _SALT)


def pack_key(domain: int, a: int, b: int) -> int:
    """``domain << 48 | a << 24 | b`` with bounds checking."""
    if not 0 <= a < KEY_FIELD_LIMIT or not 0 <= b < KEY_FIELD_LIMIT:
        raise ValueError(f"key fields out of range: a={a}, b={b}")
    return (domain << _D_SHIFT) | (a << _A_SHIFT) | b


class TrialStream:
    """Scalar (object-path) view of the keyed stream for one seed."""

    __slots__ = ("seed", "_hash", "_trial", "_base")

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._hash = seed_hash(seed)
        self._trial = -1
        self._base = 0

    def _trial_base(self, trial: int) -> int:
        if trial != self._trial:
            self._trial = trial
            self._base = mix64(self._hash + trial * _GAMMA)
        return self._base

    def word(self, trial: int, domain: int, a: int = 0, b: int = 0) -> int:
        """The 64-bit word at key ``(trial, domain, a, b)``."""
        return mix64(self._trial_base(trial) + pack_key(domain, a, b) * _GAMMA)

    def randbelow(
        self, trial: int, domain: int, a: int, b: int, n: int
    ) -> int:
        """Keyed integer draw in ``[0, n)`` (``word % n``)."""
        if n < 1:
            raise ValueError("randbelow needs n >= 1")
        return self.word(trial, domain, a, b) % n

    def uniform(self, trial: int, domain: int, a: int = 0, b: int = 0) -> float:
        """Keyed float draw in ``[0, 1)`` (top 53 bits of the word)."""
        return (self.word(trial, domain, a, b) >> 11) * 2.0**-53


def words(seed: int, trial, domain: int, a=0, b=0):
    """Vectorized :meth:`TrialStream.word` over numpy broadcastables.

    ``trial``, ``a`` and ``b`` may be scalars or arrays; the result
    has their broadcast shape with dtype ``uint64`` and is bit-equal
    to the scalar path element by element.  Imported lazily so the
    object path never requires numpy.
    """
    import numpy as np

    gamma = np.uint64(_GAMMA)
    trial = np.asarray(trial, dtype=np.uint64)
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    packed = (
        (np.uint64(domain) << np.uint64(_D_SHIFT))
        | (a << np.uint64(_A_SHIFT))
        | b
    )
    # uint64 wraparound is the point of the construction; numpy warns
    # about it on 0-d operands, so silence overflow locally.
    with np.errstate(over="ignore"):
        base = _mix64_np(np.uint64(seed_hash(seed)) + trial * gamma)
        return _mix64_np(base + packed * gamma)


def uniforms(seed: int, trial, domain: int, a=0, b=0):
    """Vectorized :meth:`TrialStream.uniform` (float64 in [0, 1))."""
    import numpy as np

    w = words(seed, trial, domain, a, b)
    return (w >> np.uint64(11)).astype(np.float64) * 2.0**-53


def _mix64_np(z):
    import numpy as np

    c1 = np.uint64(0xBF58476D1CE4E5B9)
    c2 = np.uint64(0x94D049BB133111EB)
    z = (z ^ (z >> np.uint64(30))) * c1
    z = (z ^ (z >> np.uint64(27))) * c2
    return z ^ (z >> np.uint64(31))


#: tag kinds accepted by :meth:`KeyedTrialRandom.keyed_draw`.
_TAG_DOMAINS = {
    "pim-grant": D_PIM_GRANT,
    "pim-accept": D_PIM_ACCEPT,
}


class KeyedTrialRandom:
    """The keyed stream behind a ``random.Random``-shaped facade.

    The standalone model hands this to :class:`~repro.core.registry.
    ArbiterContext` in place of a ``random.Random``.  Arbiters that
    implement the keyed protocol (PIM) call :meth:`keyed_draw` with an
    explicit ``(kind, a, b)`` tag; anything else falls back to the
    plain ``randrange``/``random`` methods, which burn sequential
    ``D_SEQ`` slots within the current trial -- still deterministic,
    but outside the vectorized contract (such arbiters run on the
    object backend only).
    """

    def __init__(self, stream: TrialStream) -> None:
        self._stream = stream
        self.trial = 0
        self._seq = 0

    def set_trial(self, trial: int) -> None:
        """Re-key to *trial* and reset the sequential-fallback counter."""
        self.trial = trial
        self._seq = 0

    def keyed_draw(self, tag: tuple, n: int) -> int:
        """Draw in ``[0, n)`` at the key named by ``(kind, a, b)``."""
        kind, a, b = tag
        domain = _TAG_DOMAINS.get(kind)
        if domain is None:
            raise ValueError(f"unknown keyed-draw tag kind {kind!r}")
        return self._stream.randbelow(self.trial, domain, a, b, n)

    # -- random.Random-compatible fallbacks --------------------------------

    def randrange(self, n: int) -> int:
        index = self._seq
        self._seq += 1
        return self._stream.randbelow(self.trial, D_SEQ, index, 0, n)

    def random(self) -> float:
        index = self._seq
        self._seq += 1
        return self._stream.uniform(self.trial, D_SEQ, index)
