"""Numpy-backed batched matching kernels (the ``vectorized`` backend).

The standalone matching model (Figures 8 and 9) measures thousands of
independent trials per point; the object path arbitrates them one
Nomination object at a time.  This package evaluates *all* trials of a
point as batched array operations -- uint bitmask free sets, ``(T, L)``
packet arrays, ``(T, 16, 7)`` request tables -- and is bit-identical to
the object path by construction: both draw from the keyed counter-based
RNG stream of :mod:`repro.kernels.rng`, and the parity tests
(tests/kernels/) diff per-trial grants and ``RunningStats`` exactly.

Select it with ``backend="vectorized"`` on
:class:`~repro.sim.standalone.StandaloneRouterModel` /
:func:`~repro.sim.standalone.measure_matches`, or ``--backend
vectorized`` on the CLI.  The object path remains the reference
oracle -- see docs/kernels.md for the backend policy and the kernel
coverage table.

Everything importing numpy is kept out of this module's import path so
the object backend works without the ``kernels`` extra installed.
"""

from __future__ import annotations

from repro.core.registry import canonical_name
from repro.router.connection_matrix import DEFAULT_CONNECTION_MATRIX

#: algorithms with a vectorized kernel (canonical names); everything
#: else falls back to the object path.
VECTORIZED_ALGORITHMS: tuple[str, ...] = (
    "OPF",
    "PIM1",
    "SPAA-base",
    "SPAA-rotary",
    "WFA-base",
    "WFA-rotary",
)

#: pip extra that provides numpy.
INSTALL_HINT = "pip install 'repro[kernels]'"


def numpy_available() -> bool:
    """Whether the ``kernels`` extra (numpy) is importable."""
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def supports(config) -> tuple[bool, str | None]:
    """Can *config* (a ``StandaloneConfig``) run vectorized?

    Returns ``(True, None)`` or ``(False, reason)``.  The kernels bake
    in the default connection matrix (packet outputs are all-torus or
    all-local, one nominating row per packet), so custom matrices and
    un-vectorized algorithms fall back to the object path.
    """
    algorithm = canonical_name(config.algorithm)
    if algorithm not in VECTORIZED_ALGORITHMS:
        return False, f"no vectorized kernel for algorithm {config.algorithm!r}"
    if config.matrix.cells != DEFAULT_CONNECTION_MATRIX.cells:
        return False, "vectorized kernels require the default connection matrix"
    return True, None
