"""Batched workload generation: all trials of one point as arrays.

One :class:`BatchWorkload` holds every trial of one standalone-model
measurement as ``(trials, load)``-shaped arrays plus per-trial
free-output bitmasks, generated from the keyed RNG stream of
:mod:`repro.kernels.rng` so it is bit-identical (packet for packet,
busy output for busy output) to what
:meth:`repro.sim.standalone.StandaloneRouterModel._generate_packets`
and ``_generate_free_outputs`` produce trial by trial.

The layout bakes in the *default* 16x7 connection matrix (Figure 5):
read port 0 of every input port drives the four torus outputs, read
port 1 the three local outputs, minus the MC0-rp1->L0 and MC1-rp1->L1
cells.  Under that matrix a packet's candidate outputs are either all
torus or all local, so each packet nominates through exactly one read
port and ``row`` below is well-defined per packet.  The backend switch
refuses non-default matrices (see :func:`repro.kernels.supports`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kernels import rng as krng
from repro.router.ports import NUM_OUTPUT_PORTS

#: (row, output) cells absent from the default matrix: a memory
#: controller never targets its own local output port.
_MC0_RP1_ROW, _MC0_BLOCKED_OUT = 11, 4  # L-MC0 rp1 -> G-L0
_MC1_RP1_ROW, _MC1_BLOCKED_OUT = 13, 5  # L-MC1 rp1 -> G-L1

#: "no second output" marker in :attr:`BatchWorkload.out2`.
NO_OUTPUT = -1


@dataclass(frozen=True)
class BatchWorkload:
    """All trials of one standalone config, as ``(T, L)`` arrays.

    Attributes:
        seed: the config's seed (kernels key further draws off it).
        port: input port of each packet, ``0..7``.
        local: True where the packet targets a local output.
        row: the read-port-arbiter row the packet nominates through
            (``2*port`` for torus packets, ``2*port + 1`` for local).
        out1: first (or only) candidate output.
        out2: second torus candidate, or :data:`NO_OUTPUT`.
        conn1: whether ``(row, out1)`` is wired in the default matrix
            (False only for the two blocked memory-controller cells).
        free_bool: ``(T, 7)`` -- True where the output port is free.
    """

    seed: int
    port: np.ndarray
    local: np.ndarray
    row: np.ndarray
    out1: np.ndarray
    out2: np.ndarray
    conn1: np.ndarray
    free_bool: np.ndarray

    @property
    def trials(self) -> int:
        return self.port.shape[0]

    @property
    def load(self) -> int:
        return self.port.shape[1]


def generate(config) -> BatchWorkload:
    """Materialize every trial of *config* (a ``StandaloneConfig``)."""
    trials, load, seed = config.trials, config.load, config.seed
    t = np.arange(trials, dtype=np.uint64)[:, None]
    uid = np.arange(load, dtype=np.uint64)[None, :]

    port = (krng.words(seed, t, krng.D_PORT, uid) % np.uint64(8)).astype(np.int64)
    local = krng.uniforms(seed, t, krng.D_LOCAL_COIN, uid) < config.local_fraction

    # Local packets: one of the three local outputs (L0=4, L1=5, IO=6).
    local_out = 4 + (
        krng.words(seed, t, krng.D_LOCAL_OUT, uid) % np.uint64(3)
    ).astype(np.int64)

    # Torus packets: first direction uniform over the four torus
    # outputs; the optional second direction indexes the remaining
    # three exactly like the object path's pop-then-index (the swap is
    # ``k2 + (k2 >= first)``).
    first = (krng.words(seed, t, krng.D_FIRST_DIR, uid) % np.uint64(4)).astype(
        np.int64
    )
    two = (
        krng.uniforms(seed, t, krng.D_TWO_COIN, uid)
        < config.two_direction_fraction
    )
    k2 = (krng.words(seed, t, krng.D_SECOND_DIR, uid) % np.uint64(3)).astype(
        np.int64
    )
    second = k2 + (k2 >= first)

    out1 = np.where(local, local_out, first)
    out2 = np.where(~local & two, second, NO_OUTPUT)
    row = 2 * port + local
    conn1 = ~(
        local
        & (
            ((row == _MC0_RP1_ROW) & (out1 == _MC0_BLOCKED_OUT))
            | ((row == _MC1_RP1_ROW) & (out1 == _MC1_BLOCKED_OUT))
        )
    )

    return BatchWorkload(
        seed=seed,
        port=port,
        local=local,
        row=row,
        out1=out1,
        out2=out2,
        conn1=conn1,
        free_bool=_free_outputs(trials, seed, config.occupancy),
    )


def _free_outputs(trials: int, seed: int, occupancy: float) -> np.ndarray:
    """Per-trial free-output flags via the object path's swap-remove.

    The object path samples ``busy_count`` distinct outputs with a
    partial Fisher-Yates (draw an index into the shrinking pool, swap
    the last element in); each step's draw is keyed by its step index,
    so the same loop runs here over whole trial columns at once.
    """
    busy_count = round(occupancy * NUM_OUTPUT_PORTS)
    free = np.ones((trials, NUM_OUTPUT_PORTS), dtype=bool)
    if busy_count == 0:
        return free
    pool = np.tile(np.arange(NUM_OUTPUT_PORTS, dtype=np.int64), (trials, 1))
    t = np.arange(trials, dtype=np.uint64)
    rows = np.arange(trials)
    for step in range(busy_count):
        size = NUM_OUTPUT_PORTS - step
        idx = (
            krng.words(seed, t, krng.D_BUSY, step) % np.uint64(size)
        ).astype(np.int64)
        free[rows, pool[rows, idx]] = False
        pool[rows, idx] = pool[rows, size - 1]
    return free
