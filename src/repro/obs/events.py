"""Typed trace events and the trace schema version.

Every record in a trace (see :mod:`repro.obs.sink`) is one JSON object
with a ``kind`` discriminator.  The event classes here are the typed
in-process form; ``to_record()`` flattens one to its wire dict.  The
schema is versioned so ``repro obs`` can refuse (or adapt to) traces
written by a different layout -- bump :data:`OBS_SCHEMA_VERSION`
whenever a record's fields change meaning.

Record kinds
------------

=========== =====================================================
kind        written by
=========== =====================================================
manifest    trace header: config, seed, versions (one per trace)
inject      a packet entered a local injection queue
nominate    a read-port arbiter nominated a packet (events mode)
grant       a packet won arbitration and left a router
conflict    an arbitration left nominations unserved
starve      anti-starvation draining engaged or released
deliver     a packet sank at its destination
link-fault  a link traversal lost/corrupted a flit (fault injection)
grant-fault an arbiter grant was suppressed/mis-routed/stalled
drop        a packet was dropped, with its reason (retries exhausted)
invariant   a runtime invariant check failed
watchdog    the progress watchdog fired; carries the stall snapshot
watchdog-remediation  a watchdog recovery kick resolved (remediated
            -- progress resumed -- or deadlocked -- kick failed)
drain-warn  a post-run drain exhausted its budget with packets left
worker-lost a supervised pool worker died mid-task (see
            repro.resilience.supervisor); time is seconds since the
            supervisor started, not simulated cycles
point-timeout a supervised task was reaped at its wall-clock deadline
            or heartbeat-staleness threshold
quarantined a poison task was abandoned after repeated supervised
            crashes
counters    final metrics-registry snapshot (one per trace)
profile     final phase-profiler summary (one per trace)
run-end     trace footer: wall time, event count
=========== =====================================================
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import ClassVar

#: bump when any record layout changes incompatibly.
OBS_SCHEMA_VERSION = 1


@dataclass(frozen=True, slots=True)
class InjectionEvent:
    """A packet entered a node's local injection queue."""

    kind: ClassVar[str] = "inject"
    time: float
    node: int
    packet: int
    pclass: str
    destination: int

    def to_record(self) -> dict:
        record = asdict(self)
        record["kind"] = self.kind
        return record


@dataclass(frozen=True, slots=True)
class NominationEvent:
    """One read-port arbiter nominated a packet for outputs."""

    kind: ClassVar[str] = "nominate"
    time: float
    node: int
    row: int
    packet: int
    outputs: tuple[int, ...]

    def to_record(self) -> dict:
        record = asdict(self)
        record["kind"] = self.kind
        record["outputs"] = list(self.outputs)
        return record


@dataclass(frozen=True, slots=True)
class GrantEvent:
    """A packet won arbitration and is leaving through *output*."""

    kind: ClassVar[str] = "grant"
    time: float
    node: int
    row: int
    packet: int
    output: int
    #: cycles the output port stays busy serving this packet
    #: (pipeline tail + flit service); per-port utilization sums these.
    busy_cycles: float

    def to_record(self) -> dict:
        record = asdict(self)
        record["kind"] = self.kind
        return record


@dataclass(frozen=True, slots=True)
class ConflictEvent:
    """An arbitration pass left *count* live nominations unserved."""

    kind: ClassVar[str] = "conflict"
    time: float
    node: int
    algorithm: str
    count: int

    def to_record(self) -> dict:
        record = asdict(self)
        record["kind"] = self.kind
        return record


@dataclass(frozen=True, slots=True)
class StarvationEvent:
    """Anti-starvation draining engaged (or released) at a router."""

    kind: ClassVar[str] = "starve"
    time: float
    node: int
    old_count: int
    engaged: bool

    def to_record(self) -> dict:
        record = asdict(self)
        record["kind"] = self.kind
        return record


@dataclass(frozen=True, slots=True)
class DeliveryEvent:
    """A packet sank at its destination's local port."""

    kind: ClassVar[str] = "deliver"
    time: float
    node: int
    packet: int
    pclass: str
    latency_cycles: float
    hops: int

    def to_record(self) -> dict:
        record = asdict(self)
        record["kind"] = self.kind
        return record


@dataclass(frozen=True, slots=True)
class LinkFaultEvent:
    """A packet's link traversal faulted (injected drop/corruption).

    ``attempt`` counts retransmissions already consumed; the link
    retry protocol resends until its bound, then the packet drops
    (see :class:`PacketDropEvent`).
    """

    kind: ClassVar[str] = "link-fault"
    time: float
    node: int
    packet: int
    fault: str
    attempt: int

    def to_record(self) -> dict:
        record = asdict(self)
        record["kind"] = self.kind
        return record


@dataclass(frozen=True, slots=True)
class GrantFaultEvent:
    """Injected grant faults at one router (suppress/misroute/stall)."""

    kind: ClassVar[str] = "grant-fault"
    time: float
    node: int
    fault: str
    count: int

    def to_record(self) -> dict:
        record = asdict(self)
        record["kind"] = self.kind
        return record


@dataclass(frozen=True, slots=True)
class PacketDropEvent:
    """A packet left the accounting as dropped, with its reason."""

    kind: ClassVar[str] = "drop"
    time: float
    node: int
    packet: int
    pclass: str
    reason: str

    def to_record(self) -> dict:
        record = asdict(self)
        record["kind"] = self.kind
        return record


@dataclass(frozen=True, slots=True)
class InvariantViolationEvent:
    """A runtime invariant check failed (see repro.resilience)."""

    kind: ClassVar[str] = "invariant"
    time: float
    name: str
    detail: str

    def to_record(self) -> dict:
        record = asdict(self)
        record["kind"] = self.kind
        return record


@dataclass(frozen=True, slots=True)
class WatchdogEvent:
    """The progress watchdog fired; carries the full stall snapshot."""

    kind: ClassVar[str] = "watchdog"
    time: float
    diagnostic: dict

    def to_record(self) -> dict:
        return {"kind": self.kind, "time": self.time, "diagnostic": self.diagnostic}


@dataclass(frozen=True, slots=True)
class WatchdogRemediationEvent:
    """A watchdog recovery kick resolved: the stall was a lost wake-up
    (``remediated``) or a true protocol deadlock (``deadlocked``)."""

    kind: ClassVar[str] = "watchdog-remediation"
    time: float
    outcome: str

    def to_record(self) -> dict:
        record = asdict(self)
        record["kind"] = self.kind
        return record


@dataclass(frozen=True, slots=True)
class DrainWarningEvent:
    """A post-run drain ran out of budget with packets unaccounted."""

    kind: ClassVar[str] = "drain-warn"
    time: float
    buffered: int
    pending: int
    in_transit: int

    def to_record(self) -> dict:
        record = asdict(self)
        record["kind"] = self.kind
        return record


@dataclass(frozen=True, slots=True)
class WorkerLostEvent:
    """A supervised pool worker died while running a task.

    Supervisor events carry wall-clock seconds since the supervisor
    started (there is no simulated clock in the parent), the task's
    string form, and the task's supervised crash count so far.
    """

    kind: ClassVar[str] = "worker-lost"
    time: float
    task: str
    detail: str
    crashes: int

    def to_record(self) -> dict:
        record = asdict(self)
        record["kind"] = self.kind
        return record


@dataclass(frozen=True, slots=True)
class PointTimeoutEvent:
    """A supervised task was reaped at a deadline or staleness bound."""

    kind: ClassVar[str] = "point-timeout"
    time: float
    task: str
    detail: str
    crashes: int

    def to_record(self) -> dict:
        record = asdict(self)
        record["kind"] = self.kind
        return record


@dataclass(frozen=True, slots=True)
class QuarantineEvent:
    """A poison task was abandoned after repeated supervised crashes."""

    kind: ClassVar[str] = "quarantined"
    time: float
    task: str
    crashes: int
    detail: str

    def to_record(self) -> dict:
        record = asdict(self)
        record["kind"] = self.kind
        return record


@dataclass(frozen=True, slots=True)
class LeaseGrantedEvent:
    """The fleet coordinator leased a task to a remote worker.

    Service events carry wall-clock seconds since the coordinator
    started, the task's string form, the worker's name, and the
    table-unique lease dispatch id (``reassigned`` marks re-grants
    after a crash or expiry).
    """

    kind: ClassVar[str] = "lease-granted"
    time: float
    task: str
    worker: str
    dispatch: int
    reassigned: bool

    def to_record(self) -> dict:
        record = asdict(self)
        record["kind"] = self.kind
        return record


@dataclass(frozen=True, slots=True)
class LeaseExpiredEvent:
    """A lease blew its deadline or heartbeat bound; the worker is kicked."""

    kind: ClassVar[str] = "lease-expired"
    time: float
    task: str
    worker: str
    detail: str

    def to_record(self) -> dict:
        record = asdict(self)
        record["kind"] = self.kind
        return record


@dataclass(frozen=True, slots=True)
class WorkerConnectEvent:
    """A remote fleet worker joined (or rejoined) the coordinator."""

    kind: ClassVar[str] = "worker-connect"
    time: float
    worker: str

    def to_record(self) -> dict:
        record = asdict(self)
        record["kind"] = self.kind
        return record


@dataclass(frozen=True, slots=True)
class DuplicateResultEvent:
    """A stale delivery (expired/re-granted lease) was discarded."""

    kind: ClassVar[str] = "duplicate-result"
    time: float
    task: str
    worker: str

    def to_record(self) -> dict:
        record = asdict(self)
        record["kind"] = self.kind
        return record


EVENT_TYPES = (
    InjectionEvent,
    NominationEvent,
    GrantEvent,
    ConflictEvent,
    StarvationEvent,
    DeliveryEvent,
    LinkFaultEvent,
    GrantFaultEvent,
    PacketDropEvent,
    InvariantViolationEvent,
    WatchdogEvent,
    WatchdogRemediationEvent,
    DrainWarningEvent,
    WorkerLostEvent,
    PointTimeoutEvent,
    QuarantineEvent,
    LeaseGrantedEvent,
    LeaseExpiredEvent,
    WorkerConnectEvent,
    DuplicateResultEvent,
)

#: kind string -> event class, for readers that want typed access.
EVENT_KINDS: dict[str, type] = {cls.kind: cls for cls in EVENT_TYPES}
