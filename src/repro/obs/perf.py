"""Benchmark observability: structured perf records, trajectory, gate.

Every ``benchmarks/bench_*.py`` run produces per-area ``BENCH_<area>.json``
files at the repository root plus one appended line per area in
``results/perf/history.jsonl`` -- the repo's performance trajectory.
A record pins everything a later reader needs to trust (or reject) a
comparison: the machine fingerprint (python, platform, CPU count), the
git SHA, the bench preset, per-bench wall time, the domain throughput
metrics the bench registered (arbitrations/sec, flits/sec,
scenarios/sec, ...) and a per-phase wall-clock attribution from
:class:`~repro.obs.profiler.PhaseProfiler`.

Three consumers live in :mod:`repro.obs.cli` under ``repro obs perf``:

* ``report`` renders the trajectory of ``history.jsonl``;
* ``diff`` compares two records field by field (reusing
  :class:`~repro.obs.analysis.MetricDelta`);
* ``gate`` fails when a metric regresses beyond a noise tolerance
  against the last comparable history entry -- "comparable" means same
  area, same preset and the *same machine fingerprint*, because wall
  times from different machines gate nothing but noise.

``check`` (the lint hook) statically verifies every bench module
registers at least one domain metric through the ``perf_record``
fixture, so new benchmarks cannot silently opt out of the trajectory.
"""

from __future__ import annotations

import ast
import contextlib
import datetime
import json
import os
import platform
import subprocess
import sys
import uuid
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.analysis import MetricDelta
from repro.obs.profiler import PhaseProfiler

#: version of the BENCH_*.json / history.jsonl record layout.
PERF_SCHEMA_VERSION = 1

#: repo-root-relative path of the trajectory file.
HISTORY_RELPATH = Path("results") / "perf" / "history.jsonl"

#: the per-area record files the re-anchor process looks for.
AREAS = (
    "arbiters",
    "figures",
    "sweeps",
    "chaos",
    "overhead",
    "kernels",
    "service",
)

#: bench module (file stem) -> area of its ``BENCH_<area>.json``.
MODULE_AREAS = {
    "bench_arbiters": "arbiters",
    "bench_figure8": "figures",
    "bench_figure9": "figures",
    "bench_figure10": "figures",
    "bench_figure11": "figures",
    "bench_ablation": "figures",
    "bench_parallel_sweep": "sweeps",
    "bench_chaos": "chaos",
    "bench_kernels": "kernels",
    "bench_obs_overhead": "overhead",
    "bench_resilience_overhead": "overhead",
    "bench_service": "service",
}

#: default gate tolerance: a metric may drift this relative fraction
#: from its baseline before the gate trips.  Wide on purpose -- bench
#: wall times on shared runners jitter tens of percent; the gate exists
#: to catch 2x-style regressions, not 5% noise.
DEFAULT_TOLERANCE = 0.5


def bench_filename(area: str) -> str:
    """``BENCH_<area>.json`` -- the repo-root record file for one area."""
    return f"BENCH_{area}.json"


def machine_fingerprint() -> dict:
    """What makes two perf records comparable (same-machine check)."""
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
    }


def fingerprints_comparable(a: dict, b: dict) -> bool:
    """Same machine shape: wall-time comparisons are meaningful."""
    keys = ("python", "implementation", "platform", "machine", "cpu_count")
    return all(a.get(key) == b.get(key) for key in keys)


def git_sha(root: Path | str = ".") -> str | None:
    """The checkout's HEAD SHA, or ``None`` outside a git repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(root),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


# -- record model ----------------------------------------------------------


@dataclass(frozen=True)
class BenchMetric:
    """One domain throughput/quality metric a bench registered."""

    name: str
    value: float
    unit: str = ""
    #: direction of goodness: throughputs up, wall times down.  The
    #: gate reads this to know which side of the tolerance band fails.
    higher_is_better: bool = True

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "value": self.value,
            "unit": self.unit,
            "higher_is_better": self.higher_is_better,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BenchMetric":
        return cls(
            name=str(data["name"]),
            value=float(data["value"]),
            unit=str(data.get("unit", "")),
            higher_is_better=bool(data.get("higher_is_better", True)),
        )


@dataclass
class BenchRecord:
    """One benchmark's structured result (one test of a bench module)."""

    name: str
    module: str
    wall_s: float
    metrics: tuple[BenchMetric, ...] = ()
    #: ``[{"name", "seconds", "samples"}, ...]`` -- the profiler's
    #: phase attribution, descending by wall time.
    phases: tuple[dict, ...] = ()
    extra: dict = field(default_factory=dict)

    def metric(self, name: str) -> BenchMetric | None:
        for metric in self.metrics:
            if metric.name == name:
                return metric
        return None

    def to_dict(self) -> dict:
        record = {
            "name": self.name,
            "module": self.module,
            "wall_s": self.wall_s,
            "metrics": [metric.to_dict() for metric in self.metrics],
            "phases": list(self.phases),
        }
        if self.extra:
            record["extra"] = self.extra
        return record

    @classmethod
    def from_dict(cls, data: dict) -> "BenchRecord":
        return cls(
            name=str(data["name"]),
            module=str(data.get("module", "")),
            wall_s=float(data["wall_s"]),
            metrics=tuple(
                BenchMetric.from_dict(m) for m in data.get("metrics", ())
            ),
            phases=tuple(data.get("phases", ())),
            extra=dict(data.get("extra", {})),
        )


@dataclass
class AreaRecord:
    """The content of one ``BENCH_<area>.json`` (and one history line)."""

    area: str
    run_id: str
    created_at: str
    git_sha: str | None
    preset: str
    fingerprint: dict
    benches: list[BenchRecord] = field(default_factory=list)
    schema_version: int = PERF_SCHEMA_VERSION

    def bench(self, name: str) -> BenchRecord | None:
        for bench in self.benches:
            if bench.name == name:
                return bench
        return None

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "area": self.area,
            "run_id": self.run_id,
            "created_at": self.created_at,
            "git_sha": self.git_sha,
            "preset": self.preset,
            "fingerprint": dict(self.fingerprint),
            "benches": [bench.to_dict() for bench in self.benches],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AreaRecord":
        return cls(
            area=str(data["area"]),
            run_id=str(data.get("run_id", "")),
            created_at=str(data.get("created_at", "")),
            git_sha=data.get("git_sha"),
            preset=str(data.get("preset", "")),
            fingerprint=dict(data.get("fingerprint", {})),
            benches=[
                BenchRecord.from_dict(b) for b in data.get("benches", ())
            ],
            schema_version=int(
                data.get("schema_version", PERF_SCHEMA_VERSION)
            ),
        )

    def write(self, path: Path | str) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.to_dict(), indent=2) + "\n", encoding="utf-8"
        )

    @classmethod
    def load(cls, path: Path | str) -> "AreaRecord":
        return cls.from_dict(json.loads(Path(path).read_text("utf-8")))


# -- recording (the pytest fixture's half) ---------------------------------


class PerfRecorder:
    """The per-benchmark handle the ``perf_record`` fixture yields.

    A bench registers its domain metrics (:meth:`metric`), attributes
    wall time to phases either directly (:meth:`phase`) or by merging a
    simulation's :class:`~repro.obs.profiler.PhaseProfiler`
    (:meth:`merge_profile` -- sweeps pass ``profile_into=
    perf_record.profiler`` and skip even that), and may attach
    free-form context (:meth:`note`).  The fixture times the test body
    and calls :meth:`finish`.
    """

    def __init__(self, name: str, module: str) -> None:
        self.name = name
        self.module = module
        self.profiler = PhaseProfiler(enabled=True)
        self._metrics: list[BenchMetric] = []
        self._extra: dict = {}

    def metric(
        self,
        name: str,
        value: float,
        unit: str = "",
        higher_is_better: bool = True,
    ) -> None:
        """Register one domain metric (replaces an earlier same-name one)."""
        self._metrics = [m for m in self._metrics if m.name != name]
        self._metrics.append(
            BenchMetric(name, float(value), unit, higher_is_better)
        )

    @contextlib.contextmanager
    def phase(self, name: str):
        """Attribute the wall time of a ``with`` block to phase *name*."""
        began = self.profiler.begin()
        try:
            yield
        finally:
            self.profiler.add(name, began)

    def merge_profile(self, source: PhaseProfiler | dict) -> None:
        """Fold a simulation profiler (or its trace record) in."""
        if isinstance(source, PhaseProfiler):
            self.profiler.merge(source)
        else:
            self.profiler.merge_record(source)

    def note(self, **extra) -> None:
        """Attach ungated context (e.g. measured overhead fractions)."""
        self._extra.update(extra)

    def finish(self, wall_s: float) -> BenchRecord:
        return BenchRecord(
            name=self.name,
            module=self.module,
            wall_s=float(wall_s),
            metrics=tuple(self._metrics),
            phases=tuple(self.profiler.to_record()["phases"]),
            extra=dict(self._extra),
        )


class PerfSession:
    """Collects one pytest session's bench records and writes them out."""

    def __init__(self, preset: str = "smoke") -> None:
        self.preset = preset
        self._by_area: dict[str, list[BenchRecord]] = {}
        self.unmapped_modules: set[str] = set()

    @staticmethod
    def area_for_module(module: str) -> str | None:
        return MODULE_AREAS.get(module)

    @property
    def has_records(self) -> bool:
        return bool(self._by_area)

    def add(self, record: BenchRecord) -> None:
        area = self.area_for_module(record.module)
        if area is None:
            # Unknown bench modules still land in the trajectory --
            # under their own area -- instead of being dropped.
            self.unmapped_modules.add(record.module)
            area = record.module.removeprefix("bench_")
        self._by_area.setdefault(area, []).append(record)

    def write(
        self,
        root: Path | str,
        history_path: Path | str | None = None,
        created_at: str | None = None,
    ) -> list[Path]:
        """Write ``BENCH_<area>.json`` files and append to the history.

        Returns the paths written (record files; the history file is
        appended to, not rewritten).
        """
        root = Path(root)
        if history_path is None:
            history_path = root / HISTORY_RELPATH
        run_id = uuid.uuid4().hex[:12]
        if created_at is None:
            created_at = datetime.datetime.now(
                datetime.timezone.utc
            ).isoformat(timespec="seconds")
        sha = git_sha(root)
        fingerprint = machine_fingerprint()
        written: list[Path] = []
        for area in sorted(self._by_area):
            record = AreaRecord(
                area=area,
                run_id=run_id,
                created_at=created_at,
                git_sha=sha,
                preset=self.preset,
                fingerprint=fingerprint,
                benches=sorted(self._by_area[area], key=lambda b: b.name),
            )
            path = root / bench_filename(area)
            record.write(path)
            append_history(history_path, record.to_dict())
            written.append(path)
        return written


# -- trajectory ------------------------------------------------------------


def append_history(path: Path | str, record: dict) -> None:
    """Append one area record to the JSONL trajectory."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")


def load_history(path: Path | str) -> list[AreaRecord]:
    """All history entries, oldest first (missing file -> empty)."""
    path = Path(path)
    if not path.exists():
        return []
    records: list[AreaRecord] = []
    with path.open(encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(AreaRecord.from_dict(json.loads(line)))
    return records


def baseline_for(
    current: AreaRecord, history: list[AreaRecord]
) -> AreaRecord | None:
    """The most recent *comparable* history entry to gate against.

    Comparable = same area and preset, different run, same machine
    fingerprint.  Cross-machine records never gate each other.
    """
    for entry in reversed(history):
        if (
            entry.area == current.area
            and entry.preset == current.preset
            and entry.run_id != current.run_id
            and fingerprints_comparable(entry.fingerprint, current.fingerprint)
        ):
            return entry
    return None


# -- comparison ------------------------------------------------------------


def diff_area_records(a: AreaRecord, b: AreaRecord) -> list[MetricDelta]:
    """Field-by-field comparison of two area records.

    One delta per bench wall time plus one per registered metric; a
    bench or metric present on only one side still appears (the other
    side reads 0, and the renderer shows ``n/a`` for the undefined
    relative change).
    """
    deltas: list[MetricDelta] = []
    names = sorted(
        {bench.name for bench in a.benches}
        | {bench.name for bench in b.benches}
    )
    for name in names:
        bench_a, bench_b = a.bench(name), b.bench(name)
        deltas.append(
            MetricDelta(
                f"{name}.wall_s",
                bench_a.wall_s if bench_a else 0.0,
                bench_b.wall_s if bench_b else 0.0,
            )
        )
        metric_names = sorted(
            {m.name for m in (bench_a.metrics if bench_a else ())}
            | {m.name for m in (bench_b.metrics if bench_b else ())}
        )
        for metric_name in metric_names:
            metric_a = bench_a.metric(metric_name) if bench_a else None
            metric_b = bench_b.metric(metric_name) if bench_b else None
            deltas.append(
                MetricDelta(
                    f"{name}.{metric_name}",
                    metric_a.value if metric_a else 0.0,
                    metric_b.value if metric_b else 0.0,
                )
            )
    return deltas


@dataclass(frozen=True)
class GateViolation:
    """One metric that regressed beyond the gate's tolerance."""

    area: str
    bench: str
    metric: str
    baseline: float
    current: float
    #: signed relative change, positive = regression direction.
    regression: float
    tolerance: float

    def describe(self) -> str:
        return (
            f"{self.area}/{self.bench}: {self.metric} regressed "
            f"{self.regression:+.1%} (baseline {self.baseline:g}, "
            f"now {self.current:g}, tolerance {self.tolerance:.0%})"
        )


def gate_area(
    current: AreaRecord,
    baseline: AreaRecord,
    tolerance: float = DEFAULT_TOLERANCE,
) -> list[GateViolation]:
    """Compare *current* to *baseline*; return the tolerance breaches.

    Wall time regresses upward; a ``higher_is_better`` metric regresses
    downward.  Benches or metrics absent from the baseline gate nothing
    (new benchmarks start their own trajectory), and zero/negative
    baselines are skipped -- no meaningful relative change exists.
    """
    violations: list[GateViolation] = []

    def check(
        bench: str, metric: str, base: float, now: float, higher_better: bool
    ) -> None:
        if base <= 0:
            return
        if higher_better:
            regression = (base - now) / base
        else:
            regression = (now - base) / base
        if regression > tolerance:
            violations.append(
                GateViolation(
                    area=current.area,
                    bench=bench,
                    metric=metric,
                    baseline=base,
                    current=now,
                    regression=regression,
                    tolerance=tolerance,
                )
            )

    for bench in current.benches:
        base_bench = baseline.bench(bench.name)
        if base_bench is None:
            continue
        check(
            bench.name, "wall_s", base_bench.wall_s, bench.wall_s,
            higher_better=False,
        )
        for metric in bench.metrics:
            base_metric = base_bench.metric(metric.name)
            if base_metric is None:
                continue
            check(
                bench.name,
                metric.name,
                base_metric.value,
                metric.value,
                metric.higher_is_better,
            )
    return violations


@dataclass
class GateReport:
    """Outcome of gating every present ``BENCH_*.json`` against history."""

    #: area -> "ok" | "regressed" | "baseline-recorded"
    statuses: dict[str, str] = field(default_factory=dict)
    violations: list[GateViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "statuses": dict(self.statuses),
            "violations": [
                {
                    "area": v.area,
                    "bench": v.bench,
                    "metric": v.metric,
                    "baseline": v.baseline,
                    "current": v.current,
                    "regression": v.regression,
                    "tolerance": v.tolerance,
                }
                for v in self.violations
            ],
        }


def run_gate(
    root: Path | str = ".",
    history_path: Path | str | None = None,
    tolerance: float = DEFAULT_TOLERANCE,
    areas: tuple[str, ...] | None = None,
) -> GateReport:
    """Gate the repo-root ``BENCH_*.json`` files against the trajectory.

    For each record file present: find the last comparable history
    entry and compare within *tolerance*.  A record with no comparable
    baseline is appended to the history (becoming the baseline for the
    next run) and passes -- a fresh machine records, it does not fail.
    """
    root = Path(root)
    if history_path is None:
        history_path = root / HISTORY_RELPATH
    history = load_history(history_path)
    report = GateReport()
    found_any = False
    for area in areas if areas is not None else AREAS:
        path = root / bench_filename(area)
        if not path.exists():
            continue
        found_any = True
        current = AreaRecord.load(path)
        baseline = baseline_for(current, history)
        if baseline is None:
            if not any(e.run_id == current.run_id for e in history):
                append_history(history_path, current.to_dict())
            report.statuses[area] = "baseline-recorded"
            continue
        violations = gate_area(current, baseline, tolerance)
        report.violations.extend(violations)
        report.statuses[area] = "regressed" if violations else "ok"
    if not found_any:
        raise ValueError(
            f"no BENCH_*.json records under {root} -- run "
            "`PYTHONPATH=src python -m pytest benchmarks/ -q -s` first"
        )
    return report


# -- static bench coverage check (the lint hook) ---------------------------


def check_bench_coverage(bench_dir: Path | str) -> list[str]:
    """Verify every bench module feeds the perf plugin; return problems.

    A module passes when at least one of its test functions takes the
    ``perf_record`` fixture *and* calls ``perf_record.metric(...)``
    somewhere in the module -- i.e. it registers at least one domain
    metric.  Purely static (``ast``), so the lint job runs it without
    installing the simulator's dependencies.
    """
    bench_dir = Path(bench_dir)
    problems: list[str] = []
    modules = sorted(
        p for p in bench_dir.glob("bench_*.py") if p.name != "__init__.py"
    )
    if not modules:
        return [f"no bench_*.py modules found under {bench_dir}"]
    for module in modules:
        try:
            tree = ast.parse(module.read_text("utf-8"), filename=str(module))
        except SyntaxError as error:
            problems.append(f"{module.name}: unparsable ({error})")
            continue
        takes_fixture = False
        registers_metric = False
        for node in ast.walk(tree):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) and node.name.startswith("test"):
                args = node.args
                names = [a.arg for a in args.posonlyargs + args.args]
                if "perf_record" in names:
                    takes_fixture = True
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "metric"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "perf_record"
            ):
                registers_metric = True
        if not takes_fixture:
            problems.append(
                f"{module.name}: no test takes the perf_record fixture"
            )
        elif not registers_metric:
            problems.append(
                f"{module.name}: never calls perf_record.metric(...) -- "
                "benches must register at least one domain metric"
            )
    return problems
