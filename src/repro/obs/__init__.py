"""Observability layer: metrics, structured tracing, manifests, profiling.

The paper's central claims are about internal dynamics the end-of-run
aggregates cannot show -- arbitration collisions (Figure 2), tree
saturation and the clog/clear oscillation of section 3.4.  This
package makes them measurable:

* :mod:`repro.obs.registry` -- ``Counter`` / ``Gauge`` / ``Histogram``
  with labeled series;
* :mod:`repro.obs.events` -- typed trace records with a versioned
  schema;
* :mod:`repro.obs.sink` -- ``NullSink`` / ``MemorySink`` /
  ``JsonlSink`` trace outputs;
* :mod:`repro.obs.manifest` -- the run manifest heading every trace;
* :mod:`repro.obs.profiler` -- wall-clock per simulation phase;
* :mod:`repro.obs.telemetry` -- the facade the simulators talk to,
  with a :data:`~repro.obs.telemetry.NULL_TELEMETRY` fast path so
  disabled telemetry costs one branch;
* :mod:`repro.obs.analysis` / :mod:`repro.obs.cli` -- the
  ``repro obs`` trace reader (``summarize`` / ``diff`` / ``ports``);
* :mod:`repro.obs.perf` -- structured benchmark records
  (``BENCH_<area>.json``), the append-only perf trajectory and the
  regression gate behind ``repro obs perf``.

Quickstart::

    from repro.obs import JsonlSink, Telemetry
    from repro.sim import NetworkSimulator, SimulationConfig

    telemetry = Telemetry(sink=JsonlSink("run.jsonl"), profile=True)
    NetworkSimulator(SimulationConfig(), telemetry=telemetry).run()
    # then:  repro-obs summarize run.jsonl
"""

from repro.obs.analysis import (
    MetricDelta,
    TraceSummary,
    diff_summaries,
    summarize_trace,
)
from repro.obs.events import (
    OBS_SCHEMA_VERSION,
    ConflictEvent,
    DeliveryEvent,
    GrantEvent,
    InjectionEvent,
    NominationEvent,
    StarvationEvent,
)
from repro.obs.manifest import RunManifest
from repro.obs.perf import (
    AreaRecord,
    BenchMetric,
    BenchRecord,
    GateReport,
    GateViolation,
    PerfRecorder,
    PerfSession,
    run_gate,
)
from repro.obs.profiler import PhaseProfiler, PhaseSummary
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.sink import JsonlSink, MemorySink, NullSink, TraceSink, read_jsonl
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry

__all__ = [
    "NULL_TELEMETRY",
    "OBS_SCHEMA_VERSION",
    "AreaRecord",
    "BenchMetric",
    "BenchRecord",
    "ConflictEvent",
    "Counter",
    "DeliveryEvent",
    "Gauge",
    "GateReport",
    "GateViolation",
    "GrantEvent",
    "Histogram",
    "InjectionEvent",
    "JsonlSink",
    "MemorySink",
    "MetricDelta",
    "MetricsRegistry",
    "NominationEvent",
    "NullSink",
    "PerfRecorder",
    "PerfSession",
    "PhaseProfiler",
    "PhaseSummary",
    "RunManifest",
    "StarvationEvent",
    "Telemetry",
    "TraceSink",
    "TraceSummary",
    "diff_summaries",
    "read_jsonl",
    "run_gate",
    "summarize_trace",
]
