"""Trace sinks: where telemetry records go.

A sink consumes the wire-format dicts produced by
:mod:`repro.obs.events` and the manifest/counters records written by
:class:`repro.obs.telemetry.Telemetry`.  Three implementations:

* :class:`NullSink` -- swallows everything; ``active`` is False so
  producers can skip building records entirely (the disabled fast
  path).
* :class:`MemorySink` -- keeps records in a list (tests, ad-hoc
  analysis).
* :class:`JsonlSink` -- one JSON object per line, append-only, written
  lazily so an unused sink never touches the filesystem.

JSONL was chosen over a binary format because traces are grep-able,
diff-able and streamable -- the ``repro obs`` reader never loads a
whole trace into memory.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO


class TraceSink:
    """Interface; subclasses override :meth:`emit` and :meth:`close`."""

    #: False when emitting is pointless (producers skip record building).
    active: bool = True

    def emit(self, record: dict) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources; further emits are ignored."""

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class NullSink(TraceSink):
    """Discards everything; the disabled-telemetry fast path."""

    active = False

    def emit(self, record: dict) -> None:
        pass


class MemorySink(TraceSink):
    """Collects records in memory -- for tests and notebooks."""

    def __init__(self) -> None:
        self.records: list[dict] = []
        self.closed = False

    def emit(self, record: dict) -> None:
        if not self.closed:
            self.records.append(record)

    def close(self) -> None:
        self.closed = True

    def by_kind(self, kind: str) -> list[dict]:
        return [r for r in self.records if r.get("kind") == kind]


class JsonlSink(TraceSink):
    """Appends one compact JSON object per line to *path*.

    The file (and its parent directory) is created on the first emit,
    so constructing a sink that never fires costs nothing.  Emits after
    :meth:`close` are silently dropped: the timing model finalizes its
    trace at the measurement window's end, but tests may keep draining
    in-flight packets afterwards.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._file: IO[str] | None = None
        self._closed = False
        self.records_written = 0

    def emit(self, record: dict) -> None:
        if self._closed:
            return
        if self._file is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = self.path.open("w", encoding="utf-8")
        self._file.write(json.dumps(record, separators=(",", ":")))
        self._file.write("\n")
        self.records_written += 1

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
        self._closed = True


def read_jsonl(path: str | Path):
    """Yield records from a JSONL trace, streaming line by line."""
    with Path(path).open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{line_number}: not valid JSONL ({error})"
                ) from error
