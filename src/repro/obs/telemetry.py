"""The telemetry facade the simulators and arbiters talk to.

One :class:`Telemetry` object aggregates a metrics registry, a trace
sink and a phase profiler behind the narrow set of hooks the hot paths
call.  The design rule is *one branch when disabled*: every
instrumented site reads ``self.telemetry`` (a plain attribute,
defaulting to :data:`NULL_TELEMETRY`) and tests ``.enabled`` before
doing any work, so a simulation without telemetry pays an attribute
load and a predictable branch -- nothing else.

Within an enabled Telemetry there are still two tiers:

* **counters** always run -- a dict hit plus a float add per site;
* **events** (per-packet trace records) only run when the sink is
  real (``sink.active``), because serializing every grant of a
  multi-million-event run is only worth it when someone asked for the
  trace.

The same Telemetry instance is shared by every router of a simulation,
so counters are network-wide totals; per-node series carry the node as
a label.
"""

from __future__ import annotations

import time
from typing import Any

from repro.obs.events import (
    ConflictEvent,
    DeliveryEvent,
    DrainWarningEvent,
    DuplicateResultEvent,
    GrantEvent,
    GrantFaultEvent,
    InjectionEvent,
    InvariantViolationEvent,
    LeaseExpiredEvent,
    LeaseGrantedEvent,
    LinkFaultEvent,
    NominationEvent,
    PacketDropEvent,
    PointTimeoutEvent,
    QuarantineEvent,
    StarvationEvent,
    WatchdogEvent,
    WatchdogRemediationEvent,
    WorkerConnectEvent,
    WorkerLostEvent,
)
from repro.obs.manifest import RunManifest
from repro.obs.profiler import PhaseProfiler
from repro.obs.registry import MetricsRegistry, MetricSeries
from repro.obs.sink import NullSink, TraceSink

#: packet-latency histogram bounds, in core cycles (powers of two keep
#: saturated-run tails visible without a per-run calibration pass).
LATENCY_BOUNDS_CYCLES = tuple(float(2**e) for e in range(5, 17))


class Telemetry:
    """Live telemetry: counters + optional trace events + profiler."""

    enabled = True

    def __init__(
        self,
        sink: TraceSink | None = None,
        profile: bool = False,
    ) -> None:
        self.sink = sink if sink is not None else NullSink()
        #: per-packet trace records only flow into a real sink.
        self.events = self.sink.active
        self.profiling = profile
        self.profiler = PhaseProfiler(enabled=profile)
        self.registry = MetricsRegistry()
        self.manifest: RunManifest | None = None
        self._finalized = False

        registry = self.registry
        self._nominated = registry.counter(
            "arb_nominations_total",
            "nominations presented to the arbitration algorithm",
            ("algorithm",),
        )
        self._granted = registry.counter(
            "arb_grants_total",
            "nominations granted by the arbitration algorithm",
            ("algorithm",),
        )
        self._conflicted = registry.counter(
            "arb_conflicts_total",
            "live nominations left unserved by an arbitration pass "
            "(the paper's arbitration collisions)",
            ("algorithm",),
        )
        self._injections = registry.counter(
            "sim_injections_total", "packets entering local injection queues"
        )
        self._deliveries = registry.counter(
            "sim_deliveries_total", "packets sunk at their destination"
        )
        self._latency = registry.histogram(
            "sim_delivery_latency_cycles",
            "injection-to-delivery packet latency",
            bounds=LATENCY_BOUNDS_CYCLES,
        )
        self._starvations = registry.counter(
            "router_starvation_engagements_total",
            "anti-starvation draining-mode engagements",
        )
        self._speculation_drops = registry.counter(
            "router_speculation_drops_total",
            "nominations whose outputs went stale between launch and "
            "resolve (SPAA's speculation window)",
        )
        self._port_busy = registry.counter(
            "router_port_busy_cycles_total",
            "cycles each output port spent serving granted packets",
            ("node", "output"),
        )
        self._port_grants = registry.counter(
            "router_port_grants_total",
            "grants through each output port",
            ("node", "output"),
        )
        self._link_faults = registry.counter(
            "resilience_link_faults_total",
            "injected link faults (lost or corrupted flits), by kind",
            ("fault",),
        )
        self._link_retries = registry.counter(
            "resilience_link_retries_total",
            "link-level retransmissions triggered by injected faults",
        )
        self._grant_faults = registry.counter(
            "resilience_grant_faults_total",
            "injected grant faults (suppressed, mis-routed, stalled)",
            ("fault",),
        )
        self._drops = registry.counter(
            "resilience_drops_total",
            "packets dropped with a recorded reason",
            ("reason",),
        )
        self._invariant_violations = registry.counter(
            "resilience_invariant_violations_total",
            "runtime invariant check failures",
            ("invariant",),
        )
        self._watchdog_fires = registry.counter(
            "resilience_watchdog_fires_total",
            "progress-watchdog stall detections",
        )
        self._watchdog_remediations = registry.counter(
            "resilience_watchdog_remediations_total",
            "watchdog recovery-kick resolutions, by outcome "
            "(remediated = lost wake-up, deadlocked = kick failed)",
            ("outcome",),
        )
        self._drain_warnings = registry.counter(
            "resilience_drain_warnings_total",
            "drains that exhausted their budget with packets left",
        )
        self._worker_lost = registry.counter(
            "resilience_worker_lost_total",
            "supervised pool workers that died mid-task "
            "(see repro.resilience.supervisor)",
        )
        self._point_timeouts = registry.counter(
            "resilience_point_timeouts_total",
            "supervised tasks reaped at their wall-clock deadline or "
            "heartbeat-staleness threshold",
        )
        self._quarantined = registry.counter(
            "resilience_quarantined_total",
            "poison tasks abandoned after repeated supervised crashes",
        )
        self._service_leases = registry.counter(
            "service_leases_total",
            "fleet tasks leased to remote workers (see repro.service)",
        )
        self._service_lease_expiries = registry.counter(
            "service_lease_expiries_total",
            "fleet leases that blew their deadline or heartbeat bound",
        )
        self._service_reassignments = registry.counter(
            "service_reassignments_total",
            "fleet tasks re-leased after a crash, kick or disconnect",
        )
        self._service_worker_connects = registry.counter(
            "service_worker_connects_total",
            "remote fleet workers that joined (or rejoined)",
        )
        self._service_duplicate_results = registry.counter(
            "service_duplicate_results_total",
            "stale fleet deliveries discarded by the exactly-once check",
        )
        #: bound-series caches so hot sites never re-resolve labels.
        self._algo_series: dict[str, tuple[MetricSeries, ...]] = {}
        self._port_series: dict[tuple[int, int], tuple[MetricSeries, MetricSeries]] = {}
        self._extra_series: dict[tuple[str, str], MetricSeries] = {}

    # -- lifecycle -------------------------------------------------------

    def open_run(self, config: Any, **extra: Any) -> None:
        """Write the manifest header for one run."""
        self.manifest = RunManifest.from_config(config, **extra)
        self._started = time.perf_counter()
        if self.sink.active:
            self.sink.emit(self.manifest.to_record())

    def finalize(self, **footer: Any) -> None:
        """Write counters/profile/footer records and close the sink.

        Idempotent: the timing model finalizes at the end of
        :meth:`~repro.sim.timing_model.NetworkSimulator.run`, and
        callers that also finalize explicitly are harmless.
        """
        if self._finalized:
            return
        self._finalized = True
        if self.sink.active:
            self.sink.emit({"kind": "counters", "counters": self.registry.snapshot()})
            if self.profiling:
                self.sink.emit(self.profiler.to_record())
            record = {"kind": "run-end"}
            if self.manifest is not None:
                record["wall_time_s"] = time.perf_counter() - self._started
            record.update(footer)
            self.sink.emit(record)
        self.sink.close()

    # -- arbiter-level hooks ---------------------------------------------

    def on_arbitration(
        self, algorithm: str, nominated: int, granted: int, conflicts: int
    ) -> None:
        """One arbitration pass of *algorithm* (called by the arbiters)."""
        series = self._algo_series.get(algorithm)
        if series is None:
            series = (
                self._nominated.labels(algorithm),
                self._granted.labels(algorithm),
                self._conflicted.labels(algorithm),
            )
            self._algo_series[algorithm] = series
        series[0].inc(nominated)
        series[1].inc(granted)
        series[2].inc(conflicts)

    def count_algo(self, name: str, algorithm: str, amount: float = 1.0) -> None:
        """Increment an algorithm-specific counter (e.g. PIM wasted grants)."""
        key = (name, algorithm)
        series = self._extra_series.get(key)
        if series is None:
            series = self.registry.counter(name, label_names=("algorithm",)).labels(
                algorithm
            )
            self._extra_series[key] = series
        series.inc(amount)

    # -- router-level hooks ----------------------------------------------

    def on_nomination(
        self, now: float, node: int, row: int, packet: int, outputs: tuple[int, ...]
    ) -> None:
        if self.events:
            self.sink.emit(
                NominationEvent(now, node, row, packet, outputs).to_record()
            )

    def on_dispatch(
        self,
        now: float,
        node: int,
        row: int,
        packet: int,
        output: int,
        busy_cycles: float,
    ) -> None:
        """A grant took effect: output *output* is busy *busy_cycles*."""
        ports = self._port_series.get((node, output))
        if ports is None:
            ports = (
                self._port_busy.labels(node, output),
                self._port_grants.labels(node, output),
            )
            self._port_series[(node, output)] = ports
        ports[0].inc(busy_cycles)
        ports[1].inc()
        if self.events:
            self.sink.emit(
                GrantEvent(now, node, row, packet, output, busy_cycles).to_record()
            )

    def on_conflicts(self, now: float, node: int, algorithm: str, count: int) -> None:
        if self.events:
            self.sink.emit(ConflictEvent(now, node, algorithm, count).to_record())

    def on_speculation_drops(self, count: int) -> None:
        self._speculation_drops.inc(count)

    def on_starvation(
        self, now: float, node: int, old_count: int, engaged: bool
    ) -> None:
        if engaged:
            self._starvations.inc()
        if self.events:
            self.sink.emit(
                StarvationEvent(now, node, old_count, engaged).to_record()
            )

    # -- simulator-level hooks -------------------------------------------

    def on_injection(
        self, now: float, node: int, packet: int, pclass: str, destination: int
    ) -> None:
        self._injections.inc()
        if self.events:
            self.sink.emit(
                InjectionEvent(now, node, packet, pclass, destination).to_record()
            )

    def on_delivery(
        self,
        now: float,
        node: int,
        packet: int,
        pclass: str,
        latency_cycles: float,
        hops: int,
    ) -> None:
        self._deliveries.inc()
        self._latency.observe(latency_cycles)
        if self.events:
            self.sink.emit(
                DeliveryEvent(
                    now, node, packet, pclass, latency_cycles, hops
                ).to_record()
            )

    # -- resilience hooks --------------------------------------------------

    def on_link_fault(
        self, now: float, node: int, packet: int, fault: str, attempt: int
    ) -> None:
        """An injected link fault hit *packet* arriving at *node*."""
        self._link_faults.labels(fault).inc()
        if self.events:
            self.sink.emit(
                LinkFaultEvent(now, node, packet, fault, attempt).to_record()
            )

    def on_link_retry(self) -> None:
        self._link_retries.inc()

    def on_grant_fault(self, now: float, node: int, fault: str, count: int) -> None:
        """Injected grant faults at one router's arbitration pass."""
        self._grant_faults.labels(fault).inc(count)
        if self.events:
            self.sink.emit(GrantFaultEvent(now, node, fault, count).to_record())

    def on_drop(
        self, now: float, node: int, packet: int, pclass: str, reason: str
    ) -> None:
        """A packet was dropped with a recorded reason."""
        self._drops.labels(reason).inc()
        if self.events:
            self.sink.emit(
                PacketDropEvent(now, node, packet, pclass, reason).to_record()
            )

    def on_invariant_violation(self, now: float, name: str, detail: str) -> None:
        self._invariant_violations.labels(name).inc()
        if self.events:
            self.sink.emit(InvariantViolationEvent(now, name, detail).to_record())

    def on_watchdog(self, now: float, diagnostic: dict) -> None:
        self._watchdog_fires.inc()
        if self.events:
            self.sink.emit(WatchdogEvent(now, diagnostic).to_record())

    def on_watchdog_remediation(self, now: float, outcome: str) -> None:
        """A recovery kick resolved: ``remediated`` or ``deadlocked``."""
        self._watchdog_remediations.labels(outcome).inc()
        if self.events:
            self.sink.emit(WatchdogRemediationEvent(now, outcome).to_record())

    def on_drain_exhausted(
        self, now: float, buffered: int, pending: int, in_transit: int
    ) -> None:
        self._drain_warnings.inc()
        if self.events:
            self.sink.emit(
                DrainWarningEvent(now, buffered, pending, in_transit).to_record()
            )

    # -- supervisor hooks (now = seconds since the supervisor started) ----

    def on_worker_lost(
        self, now: float, task: str, detail: str, crashes: int
    ) -> None:
        """A supervised pool worker died while running *task*."""
        self._worker_lost.inc()
        if self.events:
            self.sink.emit(
                WorkerLostEvent(now, task, detail, crashes).to_record()
            )

    def on_point_timeout(
        self, now: float, task: str, detail: str, crashes: int
    ) -> None:
        """A supervised task was reaped at a deadline/staleness bound."""
        self._point_timeouts.inc()
        if self.events:
            self.sink.emit(
                PointTimeoutEvent(now, task, detail, crashes).to_record()
            )

    def on_quarantine(
        self, now: float, task: str, crashes: int, detail: str
    ) -> None:
        """A poison task was abandoned after *crashes* worker crashes."""
        self._quarantined.inc()
        if self.events:
            self.sink.emit(
                QuarantineEvent(now, task, crashes, detail).to_record()
            )

    # -- service hooks (now = seconds since the coordinator started) ------

    def on_lease_granted(
        self, now: float, task: str, worker: str, dispatch: int, reassigned: bool
    ) -> None:
        """The fleet coordinator leased *task* to *worker*."""
        self._service_leases.inc()
        if reassigned:
            self._service_reassignments.inc()
        if self.events:
            self.sink.emit(
                LeaseGrantedEvent(
                    now, task, worker, dispatch, reassigned
                ).to_record()
            )

    def on_lease_expired(
        self, now: float, task: str, worker: str, detail: str
    ) -> None:
        """A fleet lease blew its deadline or heartbeat bound."""
        self._service_lease_expiries.inc()
        if self.events:
            self.sink.emit(
                LeaseExpiredEvent(now, task, worker, detail).to_record()
            )

    def on_worker_connect(self, now: float, worker: str) -> None:
        """A remote fleet worker joined (or rejoined)."""
        self._service_worker_connects.inc()
        if self.events:
            self.sink.emit(WorkerConnectEvent(now, worker).to_record())

    def on_duplicate_result(self, now: float, task: str, worker: str) -> None:
        """A stale fleet delivery was discarded, never journalled."""
        self._service_duplicate_results.inc()
        if self.events:
            self.sink.emit(DuplicateResultEvent(now, task, worker).to_record())

    # -- summaries --------------------------------------------------------

    def arbitration_summary(self) -> dict[str, dict[str, int]]:
        """Per-algorithm nomination/grant/conflict totals."""
        summary: dict[str, dict[str, int]] = {}
        for algorithm, (nominated, granted, conflicted) in sorted(
            self._algo_series.items()
        ):
            summary[algorithm] = {
                "nominations": int(nominated.value),
                "grants": int(granted.value),
                "conflicts": int(conflicted.value),
            }
        return summary

    def port_busy_cycles(self) -> dict[tuple[int, int], float]:
        """(node, output) -> cycles the port spent busy."""
        return {
            key: series[0].value for key, series in self._port_series.items()
        }


class _NullTelemetry:
    """The shared disabled singleton: every hook is a no-op.

    Instrumented sites check ``.enabled`` and skip the call entirely,
    but the no-op methods keep stray calls harmless (e.g. code written
    against the facade without the guard).
    """

    enabled = False
    events = False
    profiling = False
    sink = NullSink()
    manifest = None

    def __init__(self) -> None:
        self.profiler = PhaseProfiler(enabled=False)

    def __bool__(self) -> bool:
        return False

    def open_run(self, config: Any, **extra: Any) -> None:
        pass

    def finalize(self, **footer: Any) -> None:
        pass

    def on_arbitration(self, *args: Any) -> None:
        pass

    def count_algo(self, *args: Any) -> None:
        pass

    def on_nomination(self, *args: Any) -> None:
        pass

    def on_dispatch(self, *args: Any) -> None:
        pass

    def on_conflicts(self, *args: Any) -> None:
        pass

    def on_speculation_drops(self, *args: Any) -> None:
        pass

    def on_starvation(self, *args: Any) -> None:
        pass

    def on_injection(self, *args: Any) -> None:
        pass

    def on_delivery(self, *args: Any) -> None:
        pass

    def on_link_fault(self, *args: Any) -> None:
        pass

    def on_link_retry(self, *args: Any) -> None:
        pass

    def on_grant_fault(self, *args: Any) -> None:
        pass

    def on_drop(self, *args: Any) -> None:
        pass

    def on_invariant_violation(self, *args: Any) -> None:
        pass

    def on_watchdog(self, *args: Any) -> None:
        pass

    def on_watchdog_remediation(self, *args: Any) -> None:
        pass

    def on_drain_exhausted(self, *args: Any) -> None:
        pass

    def on_worker_lost(self, *args: Any) -> None:
        pass

    def on_point_timeout(self, *args: Any) -> None:
        pass

    def on_quarantine(self, *args: Any) -> None:
        pass

    def on_lease_granted(self, *args: Any) -> None:
        pass

    def on_lease_expired(self, *args: Any) -> None:
        pass

    def on_worker_connect(self, *args: Any) -> None:
        pass

    def on_duplicate_result(self, *args: Any) -> None:
        pass

    def arbitration_summary(self) -> dict:
        return {}

    def port_busy_cycles(self) -> dict:
        return {}


#: the module-wide disabled telemetry; hot paths default to this.
NULL_TELEMETRY = _NullTelemetry()
