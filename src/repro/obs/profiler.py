"""A lightweight wall-clock profiler for simulation phases.

The timing model's work falls into three recurring phases --
*arbitration* (nominate + resolve), *traversal* (hop arrivals) and
*delivery* (local-port sinks) -- and the useful question is usually
"where did the wall time go", not a full call-graph profile.
:class:`PhaseProfiler` answers it with two ``perf_counter`` calls per
sample and one dict update, cheap enough to leave on for whole sweeps.

Disabled profilers keep the same API so call sites need no branching
beyond the ``telemetry.profiling`` flag they already check.
"""

from __future__ import annotations

import time
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class PhaseSummary:
    """Aggregated samples of one phase."""

    name: str
    seconds: float
    samples: int

    @property
    def mean_us(self) -> float:
        """Mean microseconds per sample."""
        return (self.seconds / self.samples) * 1e6 if self.samples else 0.0


class PhaseProfiler:
    """Accumulates wall-clock seconds per named phase."""

    __slots__ = ("enabled", "_seconds", "_samples")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._seconds: dict[str, float] = {}
        self._samples: dict[str, int] = {}

    def begin(self) -> float:
        """A timestamp for a later :meth:`add` (no-op when disabled)."""
        return time.perf_counter() if self.enabled else 0.0

    def add(self, phase: str, began: float) -> None:
        """Record one sample of *phase* started at *began*."""
        if not self.enabled:
            return
        elapsed = time.perf_counter() - began
        self._seconds[phase] = self._seconds.get(phase, 0.0) + elapsed
        self._samples[phase] = self._samples.get(phase, 0) + 1

    def merge(self, other: "PhaseProfiler") -> None:
        """Fold another profiler's accumulated samples into this one.

        Bookkeeping, not sampling: it works regardless of either
        profiler's ``enabled`` flag, so a parent can aggregate worker
        profiles into a merged attribution (parallel sweeps, bench
        records) without arming its own sampling hooks.
        """
        for name, seconds in other._seconds.items():
            self._seconds[name] = self._seconds.get(name, 0.0) + seconds
            self._samples[name] = (
                self._samples.get(name, 0) + other._samples[name]
            )

    def merge_record(self, record: dict) -> None:
        """Fold a serialized ``profile`` record (see :meth:`to_record`) in.

        This is how phase attribution crosses a process boundary: a
        sweep worker serializes its profiler into the trace/result and
        the parent merges the record, no live object required.
        """
        for entry in record.get("phases", ()):
            name = str(entry["name"])
            self._seconds[name] = self._seconds.get(name, 0.0) + float(
                entry.get("seconds", 0.0)
            )
            self._samples[name] = self._samples.get(name, 0) + int(
                entry.get("samples", 0)
            )

    @classmethod
    def from_record(cls, record: dict) -> "PhaseProfiler":
        """Rebuild a profiler from its ``profile`` record (inverse of
        :meth:`to_record`, up to phase ordering)."""
        profiler = cls(enabled=False)
        profiler.merge_record(record)
        return profiler

    def summaries(self) -> list[PhaseSummary]:
        """Phases sorted by descending total wall time."""
        return sorted(
            (
                PhaseSummary(name, self._seconds[name], self._samples[name])
                for name in self._seconds
            ),
            key=lambda s: -s.seconds,
        )

    def total_seconds(self) -> float:
        return sum(self._seconds.values())

    def to_record(self) -> dict:
        """The trace's ``profile`` record."""
        return {
            "kind": "profile",
            "phases": [
                {
                    "name": summary.name,
                    "seconds": summary.seconds,
                    "samples": summary.samples,
                }
                for summary in self.summaries()
            ],
        }

    def reset(self) -> None:
        self._seconds.clear()
        self._samples.clear()
