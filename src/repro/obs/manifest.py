"""Run manifests: enough context to reproduce (or trust) a trace.

A manifest is the first record of every trace.  It pins down the four
things a reader needs before believing any number in the file: the
trace schema version, the exact simulation configuration (every knob,
recursively serialized), the RNG seed, and the software that produced
it (package version, Python, platform).  Wall-clock timing lands in
the trailing ``run-end`` record instead, since it is only known at the
end of the run.
"""

from __future__ import annotations

import dataclasses
import datetime
import enum
import platform
import sys
from dataclasses import dataclass, field
from typing import Any

from repro.obs.events import OBS_SCHEMA_VERSION


def jsonable(value: Any) -> Any:
    """Best-effort conversion of config objects to JSON-able values.

    Dataclasses recurse field by field, enums flatten to their names,
    sets become sorted lists; anything else unhandled falls back to
    ``repr`` so a manifest never fails to serialize.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, enum.Enum):
        return value.name
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(jsonable(k)): jsonable(v) for k, v in value.items()}
    if isinstance(value, (frozenset, set)):
        items = [jsonable(v) for v in value]
        try:
            return sorted(items)
        except TypeError:
            return sorted(items, key=repr)
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    return repr(value)


@dataclass
class RunManifest:
    """The header record of one telemetry trace."""

    algorithm: str
    seed: int
    config: dict = field(default_factory=dict)
    schema_version: int = OBS_SCHEMA_VERSION
    package_version: str = ""
    python: str = ""
    platform: str = ""
    created_at: str = ""
    extra: dict = field(default_factory=dict)

    @classmethod
    def from_config(cls, config: Any, **extra: Any) -> "RunManifest":
        """Build from a :class:`repro.sim.config.SimulationConfig`.

        Accepts anything with ``algorithm`` and ``seed`` attributes, so
        the standalone model's config works too.
        """
        from repro import __version__

        return cls(
            algorithm=str(getattr(config, "algorithm", "unknown")),
            seed=int(getattr(config, "seed", 0)),
            config=jsonable(config),
            package_version=__version__,
            python=sys.version.split()[0],
            platform=platform.platform(),
            created_at=datetime.datetime.now(datetime.timezone.utc).isoformat(
                timespec="seconds"
            ),
            extra={k: jsonable(v) for k, v in extra.items()},
        )

    def to_record(self) -> dict:
        record = {
            "kind": "manifest",
            "schema_version": self.schema_version,
            "algorithm": self.algorithm,
            "seed": self.seed,
            "package_version": self.package_version,
            "python": self.python,
            "platform": self.platform,
            "created_at": self.created_at,
            "config": self.config,
        }
        if self.extra:
            record["extra"] = self.extra
        return record

    @classmethod
    def from_record(cls, record: dict) -> "RunManifest":
        if record.get("kind") != "manifest":
            raise ValueError("record is not a manifest")
        return cls(
            algorithm=record.get("algorithm", "unknown"),
            seed=int(record.get("seed", 0)),
            config=record.get("config", {}),
            schema_version=int(record.get("schema_version", 0)),
            package_version=record.get("package_version", ""),
            python=record.get("python", ""),
            platform=record.get("platform", ""),
            created_at=record.get("created_at", ""),
            extra=record.get("extra", {}),
        )
