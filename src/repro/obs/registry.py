"""A tiny labeled-metrics registry: counters, gauges and histograms.

The instruments follow the Prometheus data model at arm's length --
monotonic :class:`Counter`, settable :class:`Gauge`, bucketed
:class:`Histogram`, each holding one series per label-value tuple --
but stay plain Python so the simulator's hot path pays only a dict
lookup plus a float add.  Callers that increment the same series
repeatedly should hold on to the bound series object returned by
:meth:`Metric.labels` instead of re-resolving labels every time; that
is what :class:`repro.obs.telemetry.Telemetry` does for the arbiters.

Snapshots serialize to plain JSON-able dicts, so they can ride in a
JSONL trace (see :mod:`repro.obs.sink`) and be re-read by ``repro obs``.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Sequence


class MetricSeries:
    """One (metric, label-values) time series: a mutable float cell."""

    __slots__ = ("labels", "value")

    def __init__(self, labels: tuple[str, ...]) -> None:
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def set(self, value: float) -> None:
        self.value = value


class Metric:
    """Base class: a named family of labeled series."""

    kind = "metric"

    def __init__(
        self, name: str, help: str = "", label_names: Sequence[str] = ()
    ) -> None:
        if not name:
            raise ValueError("metric name cannot be empty")
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._series: dict[tuple[str, ...], MetricSeries] = {}

    def labels(self, *values: object) -> MetricSeries:
        """The series for one label-value tuple (created on first use)."""
        if len(values) != len(self.label_names):
            raise ValueError(
                f"{self.name} expects labels {self.label_names}, got {values!r}"
            )
        key = tuple(str(v) for v in values)
        series = self._series.get(key)
        if series is None:
            series = self._make_series(key)
            self._series[key] = series
        return series

    def _make_series(self, key: tuple[str, ...]) -> MetricSeries:
        return MetricSeries(key)

    def snapshot(self) -> dict:
        """A JSON-able dump of every series."""
        return {
            "kind": self.kind,
            "help": self.help,
            "label_names": list(self.label_names),
            "series": [
                {"labels": list(series.labels), "value": self._series_value(series)}
                for _, series in sorted(self._series.items())
            ],
        }

    def _series_value(self, series: MetricSeries) -> object:
        return series.value

    def __iter__(self) -> Iterable[MetricSeries]:  # pragma: no cover - debug
        return iter(self._series.values())


class Counter(Metric):
    """Monotonically increasing count (events, cycles, packets)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, *label_values: object) -> None:
        """Unlabeled-or-labeled convenience increment."""
        self.labels(*label_values).inc(amount)

    def total(self) -> float:
        """Sum over every series (the unlabeled view)."""
        return sum(series.value for series in self._series.values())


class Gauge(Metric):
    """A value that can go up and down (queue depth, draining flag)."""

    kind = "gauge"

    def set(self, value: float, *label_values: object) -> None:
        self.labels(*label_values).set(value)


class HistogramSeries(MetricSeries):
    """Bucketed observations plus sum and count."""

    __slots__ = ("bounds", "bucket_counts", "total", "count")

    def __init__(self, labels: tuple[str, ...], bounds: tuple[float, ...]) -> None:
        super().__init__(labels)
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class Histogram(Metric):
    """Fixed-bucket histogram; bounds are upper-inclusive edges."""

    kind = "histogram"

    DEFAULT_BOUNDS = (1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
                      500.0, 1000.0, 2500.0, 5000.0)

    def __init__(
        self,
        name: str,
        help: str = "",
        label_names: Sequence[str] = (),
        bounds: Sequence[float] = DEFAULT_BOUNDS,
    ) -> None:
        super().__init__(name, help, label_names)
        ordered = tuple(float(b) for b in bounds)
        if list(ordered) != sorted(set(ordered)):
            raise ValueError("histogram bounds must be strictly increasing")
        self.bounds = ordered

    def observe(self, value: float, *label_values: object) -> None:
        self.labels(*label_values).observe(value)

    def _make_series(self, key: tuple[str, ...]) -> HistogramSeries:
        return HistogramSeries(key, self.bounds)

    def _series_value(self, series: MetricSeries) -> object:
        assert isinstance(series, HistogramSeries)
        return {
            "bounds": list(series.bounds),
            "bucket_counts": list(series.bucket_counts),
            "sum": series.total,
            "count": series.count,
        }


class MetricsRegistry:
    """Create-or-get registry keyed by metric name."""

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    def counter(
        self, name: str, help: str = "", label_names: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, label_names)

    def gauge(
        self, name: str, help: str = "", label_names: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, label_names)

    def histogram(
        self,
        name: str,
        help: str = "",
        label_names: Sequence[str] = (),
        bounds: Sequence[float] = Histogram.DEFAULT_BOUNDS,
    ) -> Histogram:
        existing = self._metrics.get(name)
        if existing is not None:
            self._check(existing, Histogram, name, label_names)
            assert isinstance(existing, Histogram)
            return existing
        metric = Histogram(name, help, label_names, bounds)
        self._metrics[name] = metric
        return metric

    def _get_or_create(self, cls, name, help, label_names):
        existing = self._metrics.get(name)
        if existing is not None:
            self._check(existing, cls, name, label_names)
            return existing
        metric = cls(name, help, label_names)
        self._metrics[name] = metric
        return metric

    @staticmethod
    def _check(existing: Metric, cls, name: str, label_names) -> None:
        if type(existing) is not cls:
            raise ValueError(
                f"metric {name!r} already registered as {existing.kind}"
            )
        if existing.label_names != tuple(label_names):
            raise ValueError(
                f"metric {name!r} already registered with labels "
                f"{existing.label_names}"
            )

    def get(self, name: str) -> Metric | None:
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def snapshot(self) -> dict[str, dict]:
        """JSON-able dump of every metric, sorted by name."""
        return {name: self._metrics[name].snapshot() for name in self.names()}
