"""Reading and summarizing JSONL telemetry traces.

This is the pure-computation half of the ``repro obs`` CLI: it streams
a trace once, keeps only aggregates (a trace with millions of events
summarizes in constant memory), and answers the questions the paper's
arguments turn on -- how many nominations did each algorithm convert
into grants (Figure 2's collisions), how evenly loaded were the output
ports, where did the wall time go.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.events import OBS_SCHEMA_VERSION
from repro.obs.manifest import RunManifest
from repro.obs.sink import read_jsonl


@dataclass
class TraceSummary:
    """Constant-size aggregate of one JSONL trace."""

    path: str
    manifest: RunManifest | None = None
    counters: dict = field(default_factory=dict)
    profile: list[dict] = field(default_factory=list)
    event_counts: dict[str, int] = field(default_factory=dict)
    wall_time_s: float | None = None
    #: structured stall snapshots from ``watchdog`` events (capped; the
    #: event count in :attr:`event_counts` is still exact).
    watchdog_diagnostics: list[dict] = field(default_factory=list)
    #: (node, output) -> busy cycles, accumulated from grant events as
    #: a fallback when the trace lacks a counters record (truncated
    #: runs); the counters record wins when present.
    _event_port_busy: dict[tuple[int, int], float] = field(default_factory=dict)

    # -- derived views -----------------------------------------------------

    @property
    def algorithm(self) -> str:
        return self.manifest.algorithm if self.manifest else "unknown"

    def arbitration_counts(self) -> dict[str, dict[str, int]]:
        """algorithm -> {nominations, grants, conflicts}."""
        out: dict[str, dict[str, int]] = {}
        for metric, key in (
            ("arb_nominations_total", "nominations"),
            ("arb_grants_total", "grants"),
            ("arb_conflicts_total", "conflicts"),
        ):
            for labels, value in self._series(metric):
                algorithm = labels[0] if labels else "unknown"
                out.setdefault(
                    algorithm, {"nominations": 0, "grants": 0, "conflicts": 0}
                )[key] = int(value)
        return out

    def scalar(self, metric: str) -> float:
        """Sum of a counter's series (0.0 when absent)."""
        return sum(value for _, value in self._series(metric))

    def port_busy_cycles(self) -> dict[tuple[int, int], float]:
        """(node, output) -> cycles busy, preferring the counters record."""
        busy: dict[tuple[int, int], float] = {}
        for labels, value in self._series("router_port_busy_cycles_total"):
            busy[(int(labels[0]), int(labels[1]))] = float(value)
        return busy or dict(self._event_port_busy)

    def measure_cycles(self) -> float | None:
        """The measurement window length, from the manifest config."""
        if self.manifest is None:
            return None
        cycles = self.manifest.config.get("measure_cycles")
        warmup = self.manifest.config.get("warmup_cycles", 0)
        if cycles is None:
            return None
        # Ports are busy across the whole run, warmup included; the
        # utilization denominator matches.
        return float(cycles) + float(warmup)

    def port_utilization(self) -> dict[tuple[int, int], float]:
        """(node, output) -> busy fraction of the simulated interval."""
        window = self.measure_cycles()
        if not window:
            return {}
        return {
            key: busy / window for key, busy in self.port_busy_cycles().items()
        }

    def utilization_by_output(self) -> dict[int, tuple[float, float]]:
        """output -> (mean, max) utilization across nodes."""
        per_port = self.port_utilization()
        by_output: dict[int, list[float]] = {}
        for (_, output), util in per_port.items():
            by_output.setdefault(output, []).append(util)
        return {
            output: (sum(values) / len(values), max(values))
            for output, values in sorted(by_output.items())
        }

    def mean_latency_cycles(self) -> float | None:
        """Mean delivery latency from the latency histogram."""
        snap = self.counters.get("sim_delivery_latency_cycles")
        if not snap:
            return None
        total = count = 0.0
        for entry in snap.get("series", ()):
            value = entry.get("value", {})
            total += value.get("sum", 0.0)
            count += value.get("count", 0)
        return total / count if count else None

    def resilience_counts(self) -> dict[str, int]:
        """Nonzero resilience totals (faults, retries, drops, checks).

        Prefers the counters record; for truncated traces that lack
        one, falls back to counting the corresponding event records
        (an undercount for ``grant_faults``, whose events are batched).
        """
        out: dict[str, int] = {}
        for name, metric, event_kind in (
            ("link_faults", "resilience_link_faults_total", "link-fault"),
            ("link_retries", "resilience_link_retries_total", None),
            ("grant_faults", "resilience_grant_faults_total", "grant-fault"),
            ("packets_dropped", "resilience_drops_total", "drop"),
            (
                "invariant_violations",
                "resilience_invariant_violations_total",
                "invariant",
            ),
            ("watchdog_fires", "resilience_watchdog_fires_total", "watchdog"),
            (
                "watchdog_remediations",
                "resilience_watchdog_remediations_total",
                "watchdog-remediation",
            ),
            ("drain_warnings", "resilience_drain_warnings_total", "drain-warn"),
            ("worker_lost", "resilience_worker_lost_total", "worker-lost"),
            (
                "point_timeouts",
                "resilience_point_timeouts_total",
                "point-timeout",
            ),
            ("quarantined", "resilience_quarantined_total", "quarantined"),
            ("service_leases", "service_leases_total", "lease-granted"),
            (
                "service_lease_expiries",
                "service_lease_expiries_total",
                "lease-expired",
            ),
            (
                "service_reassignments",
                "service_reassignments_total",
                None,
            ),
            (
                "service_worker_connects",
                "service_worker_connects_total",
                "worker-connect",
            ),
            (
                "service_duplicate_results",
                "service_duplicate_results_total",
                "duplicate-result",
            ),
        ):
            value = self.scalar(metric)
            if not value and event_kind is not None:
                value = float(self.event_counts.get(event_kind, 0))
            if value:
                out[name] = int(value)
        return out

    def _series(self, metric: str):
        snap = self.counters.get(metric)
        if not snap:
            return
        for entry in snap.get("series", ()):
            yield tuple(entry.get("labels", ())), entry.get("value", 0.0)

    def as_dict(self) -> dict:
        """Machine-readable digest (the ``--json`` form of ``summarize``).

        Carries the derived views sweep tooling wants -- arbitration
        counts, headline totals, per-output utilization, resilience
        totals, the phase profile -- not the raw counters snapshot
        (stream the trace again for that).
        """
        by_output = {
            output_port_name(output): {"mean": mean, "max": peak}
            for output, (mean, peak) in self.utilization_by_output().items()
        }
        manifest = self.manifest.to_record() if self.manifest else None
        if manifest is not None:
            manifest.pop("kind", None)
        return {
            "path": self.path,
            "algorithm": self.algorithm,
            "manifest": manifest,
            "arbitration": self.arbitration_counts(),
            "totals": {
                name: self.scalar(name)
                for name in (
                    "sim_injections_total",
                    "sim_deliveries_total",
                    "router_speculation_drops_total",
                    "router_starvation_engagements_total",
                )
            },
            "mean_latency_cycles": self.mean_latency_cycles(),
            "wall_time_s": self.wall_time_s,
            "resilience": self.resilience_counts(),
            "utilization_by_output": by_output,
            "event_counts": dict(self.event_counts),
            "profile": list(self.profile),
        }


def summarize_trace(path: str | Path, strict_schema: bool = True) -> TraceSummary:
    """Stream one JSONL trace into a :class:`TraceSummary`."""
    summary = TraceSummary(path=str(path))
    for record in read_jsonl(path):
        kind = record.get("kind")
        if kind == "manifest":
            summary.manifest = RunManifest.from_record(record)
            if strict_schema and summary.manifest.schema_version != OBS_SCHEMA_VERSION:
                raise ValueError(
                    f"{path}: trace schema v{summary.manifest.schema_version} "
                    f"does not match this reader (v{OBS_SCHEMA_VERSION})"
                )
        elif kind == "counters":
            summary.counters = record.get("counters", {})
        elif kind == "profile":
            summary.profile = record.get("phases", [])
        elif kind == "run-end":
            summary.wall_time_s = record.get("wall_time_s")
        else:
            summary.event_counts[kind] = summary.event_counts.get(kind, 0) + 1
            if kind == "watchdog" and len(summary.watchdog_diagnostics) < 8:
                summary.watchdog_diagnostics.append(
                    record.get("diagnostic", {})
                )
            if kind == "grant":
                key = (int(record["node"]), int(record["output"]))
                summary._event_port_busy[key] = (
                    summary._event_port_busy.get(key, 0.0)
                    + float(record.get("busy_cycles", 0.0))
                )
    return summary


def output_port_name(output: int) -> str:
    """Human name for an output-port index (falls back to the number)."""
    # Imported lazily: repro.router imports repro.core which imports
    # repro.obs.telemetry, so a module-level import here would close an
    # import cycle through the obs package __init__.
    from repro.router.ports import OutputPort

    try:
        return OutputPort(output).name
    except ValueError:
        return str(output)


@dataclass(frozen=True)
class MetricDelta:
    """One compared quantity between two traces."""

    name: str
    a: float
    b: float

    @property
    def delta(self) -> float:
        return self.b - self.a

    @property
    def relative(self) -> float | None:
        if self.a == 0:
            return None
        return self.delta / self.a

    @property
    def relative_text(self) -> str:
        """Human form of :attr:`relative`; ``n/a`` on a zero baseline.

        Every renderer must go through this (not format the float
        directly): a zero-baseline delta has no relative change, and a
        bare ``None`` would otherwise reach a format spec and crash.
        """
        relative = self.relative
        return "n/a" if relative is None else f"{relative:+.1%}"

    def as_dict(self) -> dict:
        """JSON form; ``relative`` is ``null`` on a zero baseline."""
        return {
            "name": self.name,
            "a": self.a,
            "b": self.b,
            "delta": self.delta,
            "relative": self.relative,
        }


def diff_summaries(a: TraceSummary, b: TraceSummary) -> list[MetricDelta]:
    """Compare the headline aggregates of two traces.

    Arbitration counters are compared per algorithm label; scalar
    counters and the mean latency are compared directly.  Metrics
    present in only one trace still appear (the other side reads 0).
    """
    deltas: list[MetricDelta] = []
    arb_a, arb_b = a.arbitration_counts(), b.arbitration_counts()
    for algorithm in sorted(set(arb_a) | set(arb_b)):
        row_a = arb_a.get(algorithm, {})
        row_b = arb_b.get(algorithm, {})
        for key in ("nominations", "grants", "conflicts"):
            deltas.append(
                MetricDelta(
                    f"{algorithm}.{key}",
                    float(row_a.get(key, 0)),
                    float(row_b.get(key, 0)),
                )
            )
    for metric in (
        "sim_injections_total",
        "sim_deliveries_total",
        "router_starvation_engagements_total",
        "router_speculation_drops_total",
    ):
        deltas.append(MetricDelta(metric, a.scalar(metric), b.scalar(metric)))
    for metric in (
        "resilience_link_faults_total",
        "resilience_link_retries_total",
        "resilience_grant_faults_total",
        "resilience_drops_total",
        "resilience_invariant_violations_total",
        "resilience_watchdog_fires_total",
        "resilience_watchdog_remediations_total",
        "resilience_drain_warnings_total",
        "resilience_worker_lost_total",
        "resilience_point_timeouts_total",
        "resilience_quarantined_total",
    ):
        # Only fault-injected runs carry these; keep clean diffs clean.
        value_a, value_b = a.scalar(metric), b.scalar(metric)
        if value_a or value_b:
            deltas.append(MetricDelta(metric, value_a, value_b))
    latency_a, latency_b = a.mean_latency_cycles(), b.mean_latency_cycles()
    if latency_a is not None or latency_b is not None:
        deltas.append(
            MetricDelta(
                "mean_latency_cycles", latency_a or 0.0, latency_b or 0.0
            )
        )
    return deltas
