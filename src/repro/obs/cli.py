"""``repro obs`` -- inspect traces and perf records from the CLI.

Trace subcommands (``summarize`` / ``diff`` take ``--json`` for
machine-readable output)::

    repro-obs summarize trace.jsonl          # manifest + counters + ports
    repro-obs diff base.jsonl contender.jsonl
    repro-obs ports trace.jsonl --top 10     # busiest (node, port) pairs

Perf-trajectory subcommands (see :mod:`repro.obs.perf` and the "Perf
trajectory" section of docs/observability.md)::

    repro-obs perf report                    # render history.jsonl
    repro-obs perf diff BENCH_a.json BENCH_b.json
    repro-obs perf gate --tolerance 0.5      # fail on regressions
    repro-obs perf check benchmarks/         # lint: benches feed the plugin

Also reachable as ``repro-experiments obs ...`` and
``python -m repro.obs ...``; the traces come from any run with a
:class:`repro.obs.sink.JsonlSink` attached -- e.g.
``sweep_algorithm(..., telemetry_dir=...)`` or
``repro-experiments fig10 --telemetry-dir runs/`` -- and the perf
records from ``PYTHONPATH=src python -m pytest benchmarks/ -q -s``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.experiments.report import format_table
from repro.obs import perf
from repro.obs.analysis import (
    TraceSummary,
    diff_summaries,
    output_port_name,
    summarize_trace,
)


def _render_summary(summary: TraceSummary) -> str:
    parts = [f"== trace: {summary.path} =="]
    manifest = summary.manifest
    if manifest is not None:
        rows = [
            ("schema", f"v{manifest.schema_version}"),
            ("algorithm", manifest.algorithm),
            ("seed", manifest.seed),
            ("package", f"repro {manifest.package_version}"),
            ("python", manifest.python),
            ("created", manifest.created_at),
        ]
        for key in ("warmup_cycles", "measure_cycles"):
            if key in manifest.config:
                rows.append((key, manifest.config[key]))
        traffic = manifest.config.get("traffic", {})
        if isinstance(traffic, dict) and "injection_rate" in traffic:
            rows.append(("injection_rate", traffic["injection_rate"]))
        parts.append(format_table(("field", "value"), rows, title="Run manifest"))
    else:
        parts.append("(no manifest record -- truncated trace?)")

    arbitration = summary.arbitration_counts()
    if arbitration:
        rows = []
        for algorithm, counts in sorted(arbitration.items()):
            nominations = counts["nominations"]
            rate = counts["grants"] / nominations if nominations else 0.0
            rows.append((
                algorithm,
                nominations,
                counts["grants"],
                counts["conflicts"],
                f"{rate:.1%}",
            ))
        parts.append(format_table(
            ("algorithm", "nominations", "grants", "conflicts", "grant rate"),
            rows,
            title="Arbitration counters",
        ))

    scalars = [
        (name, int(summary.scalar(name)))
        for name in (
            "sim_injections_total",
            "sim_deliveries_total",
            "router_speculation_drops_total",
            "router_starvation_engagements_total",
        )
        if summary.scalar(name)
    ]
    latency = summary.mean_latency_cycles()
    if latency is not None:
        scalars.append(("mean delivery latency (cycles)", f"{latency:.1f}"))
    if summary.wall_time_s is not None:
        scalars.append(("wall time (s)", f"{summary.wall_time_s:.2f}"))
    if scalars:
        parts.append(format_table(("metric", "value"), scalars, title="Totals"))

    resilience = summary.resilience_counts()
    if resilience:
        parts.append(format_table(
            ("metric", "count"),
            [(name.replace("_", " "), count) for name, count in resilience.items()],
            title="Resilience (fault injection / runtime checks)",
        ))

    if summary.watchdog_diagnostics:
        diag = summary.watchdog_diagnostics[-1]
        rows = [
            ("cycle", f"{diag.get('time', 0.0):.1f}"),
            ("window (cycles)", f"{diag.get('window_cycles', 0.0):.0f}"),
            ("delivered so far", diag.get("delivered_total", 0)),
            ("outstanding", diag.get("outstanding", 0)),
            ("buffered / pending / in transit",
             f"{diag.get('buffered', 0)} / {diag.get('pending', 0)} / "
             f"{diag.get('in_transit', 0)}"),
        ]
        for entry in diag.get("routers", ())[:5]:
            ports = ", ".join(
                f"{port}={count}" for port, count in entry.get("ports", {}).items()
            )
            draining = " (draining)" if entry.get("draining") else ""
            rows.append((f"node {entry.get('node')}{draining}", ports))
        parts.append(format_table(
            ("field", "value"),
            rows,
            title=f"Watchdog stall snapshot (last of "
                  f"{summary.event_counts.get('watchdog', 0)} fires)",
        ))

    by_output = summary.utilization_by_output()
    if by_output:
        parts.append(format_table(
            ("output port", "mean util", "max util"),
            [
                (output_port_name(output), f"{mean:.1%}", f"{peak:.1%}")
                for output, (mean, peak) in by_output.items()
            ],
            title="Per-output-port utilization (across nodes)",
        ))

    if summary.event_counts:
        parts.append(format_table(
            ("event kind", "records"),
            sorted(summary.event_counts.items()),
            title="Trace events",
        ))

    if summary.profile:
        parts.append(format_table(
            ("phase", "seconds", "samples"),
            [
                (p["name"], f"{p['seconds']:.3f}", p["samples"])
                for p in summary.profile
            ],
            title="Wall-clock by simulation phase",
        ))
    return "\n\n".join(parts)


def _cmd_summarize(args: argparse.Namespace) -> str:
    summaries = [summarize_trace(path) for path in args.traces]
    if args.json:
        return json.dumps([s.as_dict() for s in summaries], indent=2)
    return "\n\n\n".join(_render_summary(s) for s in summaries)


def _cmd_diff(args: argparse.Namespace) -> str:
    summary_a = summarize_trace(args.trace_a)
    summary_b = summarize_trace(args.trace_b)
    deltas = [
        delta for delta in diff_summaries(summary_a, summary_b)
        if delta.a != 0 or delta.b != 0
    ]
    if args.json:
        return json.dumps(
            {
                "a": str(summary_a.path),
                "b": str(summary_b.path),
                "deltas": [delta.as_dict() for delta in deltas],
            },
            indent=2,
        )
    rows = [
        (delta.name, f"{delta.a:g}", f"{delta.b:g}", delta.relative_text)
        for delta in deltas
    ]
    title = (
        f"A = {summary_a.path} ({summary_a.algorithm})\n"
        f"B = {summary_b.path} ({summary_b.algorithm})"
    )
    return format_table(("metric", "A", "B", "B vs A"), rows, title=title)


def _cmd_ports(args: argparse.Namespace) -> str:
    summary = summarize_trace(args.trace)
    per_port = summary.port_utilization()
    if not per_port:
        return "(no per-port data: trace has no counters record or grants)"
    busiest = sorted(per_port.items(), key=lambda kv: -kv[1])
    if args.top > 0:
        busiest = busiest[: args.top]
    busy = summary.port_busy_cycles()
    rows = [
        (
            node,
            output_port_name(output),
            f"{busy.get((node, output), 0.0):.0f}",
            f"{util:.1%}",
        )
        for (node, output), util in busiest
    ]
    return format_table(
        ("node", "output", "busy cycles", "utilization"),
        rows,
        title=f"Busiest output ports of {summary.path}",
    )


# -- perf trajectory subcommands -------------------------------------------


def _history_path(args: argparse.Namespace) -> Path:
    if args.history is not None:
        return args.history
    return Path(args.root) / perf.HISTORY_RELPATH


def _cmd_perf_report(args: argparse.Namespace) -> str:
    history = perf.load_history(_history_path(args))
    if args.area:
        history = [r for r in history if r.area in set(args.area)]
    if args.json:
        return json.dumps([r.to_dict() for r in history], indent=2)
    if not history:
        return "(no perf history -- run the benchmarks and the gate first)"
    parts = []
    latest_by_area: dict[str, perf.AreaRecord] = {}
    rows = []
    for record in history:
        latest_by_area[record.area] = record
        wall = sum(bench.wall_s for bench in record.benches)
        rows.append((
            record.area,
            record.created_at[:19],
            record.git_sha[:9],
            record.preset,
            record.run_id,
            len(record.benches),
            f"{wall:.2f}",
        ))
    parts.append(format_table(
        ("area", "created", "sha", "preset", "run", "benches", "wall (s)"),
        rows,
        title=f"Perf trajectory ({_history_path(args)})",
    ))
    for area in sorted(latest_by_area):
        record = latest_by_area[area]
        bench_rows = []
        for bench in record.benches:
            metrics = ", ".join(
                f"{m.name}={m.value:g}{(' ' + m.unit) if m.unit else ''}"
                for m in bench.metrics
            )
            phases = ", ".join(
                f"{p['name']}={p['seconds']:.3f}s" for p in bench.phases
            )
            bench_rows.append(
                (bench.name, f"{bench.wall_s:.3f}", metrics, phases or "-")
            )
        parts.append(format_table(
            ("bench", "wall (s)", "metrics", "phases"),
            bench_rows,
            title=f"Latest {area} record (run {record.run_id}, "
                  f"preset={record.preset})",
        ))
    return "\n\n".join(parts)


def _cmd_perf_diff(args: argparse.Namespace) -> str:
    record_a = perf.AreaRecord.load(args.record_a)
    record_b = perf.AreaRecord.load(args.record_b)
    deltas = perf.diff_area_records(record_a, record_b)
    if args.json:
        return json.dumps(
            {
                "a": {"path": str(args.record_a), "run_id": record_a.run_id},
                "b": {"path": str(args.record_b), "run_id": record_b.run_id},
                "deltas": [delta.as_dict() for delta in deltas],
            },
            indent=2,
        )
    rows = [
        (delta.name, f"{delta.a:g}", f"{delta.b:g}", delta.relative_text)
        for delta in deltas
    ]
    title = (
        f"A = {args.record_a} (run {record_a.run_id}, {record_a.preset})\n"
        f"B = {args.record_b} (run {record_b.run_id}, {record_b.preset})"
    )
    return format_table(("metric", "A", "B", "B vs A"), rows, title=title)


def _cmd_perf_gate(args: argparse.Namespace) -> tuple[str, int]:
    report = perf.run_gate(
        root=args.root,
        history_path=args.history,
        tolerance=args.tolerance,
        areas=args.area or None,
    )
    if args.json:
        return json.dumps(report.to_dict(), indent=2), 0 if report.ok else 1
    lines = [
        f"perf gate ({_history_path(args)}, tolerance {args.tolerance:.0%}):"
    ]
    for area in sorted(report.statuses):
        lines.append(f"  {area}: {report.statuses[area]}")
    for violation in report.violations:
        lines.append(f"  FAIL {violation.describe()}")
    lines.append("gate: " + ("PASS" if report.ok else "FAIL"))
    return "\n".join(lines), 0 if report.ok else 1


def _cmd_perf_check(args: argparse.Namespace) -> tuple[str, int]:
    problems = perf.check_bench_coverage(args.bench_dir)
    if problems:
        lines = [f"perf check: {len(problems)} problem(s) in {args.bench_dir}"]
        lines.extend(f"  {problem}" for problem in problems)
        return "\n".join(lines), 1
    return f"perf check: every bench module under {args.bench_dir} records " \
           "a domain metric via perf_record", 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro obs",
        description="Summarize, diff and drill into repro telemetry traces.",
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--output", type=Path, default=None, help="also write the report here"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    summarize = commands.add_parser(
        "summarize",
        parents=[common],
        help="one-screen digest of one or more traces",
    )
    summarize.add_argument("traces", nargs="+", type=Path)
    summarize.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    summarize.set_defaults(func=_cmd_summarize)

    diff = commands.add_parser(
        "diff", parents=[common], help="compare two traces' aggregates"
    )
    diff.add_argument("trace_a", type=Path)
    diff.add_argument("trace_b", type=Path)
    diff.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    diff.set_defaults(func=_cmd_diff)

    ports = commands.add_parser(
        "ports", parents=[common], help="per-port utilization table for one trace"
    )
    ports.add_argument("trace", type=Path)
    ports.add_argument(
        "--top", type=int, default=20,
        help="show the N busiest (node, port) pairs; 0 = all (default 20)",
    )
    ports.set_defaults(func=_cmd_ports)

    perf_cmd = commands.add_parser(
        "perf", help="benchmark perf records: report, diff, gate, check"
    )
    perf_commands = perf_cmd.add_subparsers(dest="perf_command", required=True)

    history_common = argparse.ArgumentParser(add_help=False)
    history_common.add_argument(
        "--root", type=Path, default=Path("."),
        help="repo root holding BENCH_*.json (default: .)",
    )
    history_common.add_argument(
        "--history", type=Path, default=None,
        help=f"history file (default: <root>/{perf.HISTORY_RELPATH})",
    )

    report = perf_commands.add_parser(
        "report", parents=[common, history_common],
        help="render the perf trajectory and the latest per-area records",
    )
    report.add_argument(
        "--area", action="append", choices=perf.AREAS,
        help="restrict to an area (repeatable)",
    )
    report.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    report.set_defaults(func=_cmd_perf_report)

    perf_diff = perf_commands.add_parser(
        "diff", parents=[common],
        help="compare two BENCH_<area>.json records metric by metric",
    )
    perf_diff.add_argument("record_a", type=Path)
    perf_diff.add_argument("record_b", type=Path)
    perf_diff.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    perf_diff.set_defaults(func=_cmd_perf_diff)

    gate = perf_commands.add_parser(
        "gate", parents=[common, history_common],
        help="fail (exit 1) when current BENCH records regress vs history",
    )
    gate.add_argument(
        "--tolerance", type=float, default=perf.DEFAULT_TOLERANCE,
        help="allowed fractional regression per metric "
             f"(default {perf.DEFAULT_TOLERANCE})",
    )
    gate.add_argument(
        "--area", action="append", choices=perf.AREAS,
        help="gate only this area (repeatable; default: all present)",
    )
    gate.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    gate.set_defaults(func=_cmd_perf_gate)

    check = perf_commands.add_parser(
        "check", parents=[common],
        help="lint: every bench module must record >=1 domain metric",
    )
    check.add_argument(
        "bench_dir", nargs="?", type=Path, default=Path("benchmarks")
    )
    check.set_defaults(func=_cmd_perf_check)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        result = args.func(args)
        text, code = result if isinstance(result, tuple) else (result, 0)
        print(text)
        if args.output is not None:
            args.output.parent.mkdir(parents=True, exist_ok=True)
            args.output.write_text(text + "\n")
    except (OSError, ValueError) as error:
        print(f"repro obs: {error}", file=sys.stderr)
        return 1
    return code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
