"""``repro obs`` -- inspect JSONL telemetry traces from the CLI.

Three subcommands::

    repro-obs summarize trace.jsonl          # manifest + counters + ports
    repro-obs diff base.jsonl contender.jsonl
    repro-obs ports trace.jsonl --top 10     # busiest (node, port) pairs

Also reachable as ``repro-experiments obs ...`` and
``python -m repro.obs ...``; the traces come from any run with a
:class:`repro.obs.sink.JsonlSink` attached -- e.g.
``sweep_algorithm(..., telemetry_dir=...)`` or
``repro-experiments fig10 --telemetry-dir runs/``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.experiments.report import format_table
from repro.obs.analysis import (
    TraceSummary,
    diff_summaries,
    output_port_name,
    summarize_trace,
)


def _render_summary(summary: TraceSummary) -> str:
    parts = [f"== trace: {summary.path} =="]
    manifest = summary.manifest
    if manifest is not None:
        rows = [
            ("schema", f"v{manifest.schema_version}"),
            ("algorithm", manifest.algorithm),
            ("seed", manifest.seed),
            ("package", f"repro {manifest.package_version}"),
            ("python", manifest.python),
            ("created", manifest.created_at),
        ]
        for key in ("warmup_cycles", "measure_cycles"):
            if key in manifest.config:
                rows.append((key, manifest.config[key]))
        traffic = manifest.config.get("traffic", {})
        if isinstance(traffic, dict) and "injection_rate" in traffic:
            rows.append(("injection_rate", traffic["injection_rate"]))
        parts.append(format_table(("field", "value"), rows, title="Run manifest"))
    else:
        parts.append("(no manifest record -- truncated trace?)")

    arbitration = summary.arbitration_counts()
    if arbitration:
        rows = []
        for algorithm, counts in sorted(arbitration.items()):
            nominations = counts["nominations"]
            rate = counts["grants"] / nominations if nominations else 0.0
            rows.append((
                algorithm,
                nominations,
                counts["grants"],
                counts["conflicts"],
                f"{rate:.1%}",
            ))
        parts.append(format_table(
            ("algorithm", "nominations", "grants", "conflicts", "grant rate"),
            rows,
            title="Arbitration counters",
        ))

    scalars = [
        (name, int(summary.scalar(name)))
        for name in (
            "sim_injections_total",
            "sim_deliveries_total",
            "router_speculation_drops_total",
            "router_starvation_engagements_total",
        )
        if summary.scalar(name)
    ]
    latency = summary.mean_latency_cycles()
    if latency is not None:
        scalars.append(("mean delivery latency (cycles)", f"{latency:.1f}"))
    if summary.wall_time_s is not None:
        scalars.append(("wall time (s)", f"{summary.wall_time_s:.2f}"))
    if scalars:
        parts.append(format_table(("metric", "value"), scalars, title="Totals"))

    resilience = summary.resilience_counts()
    if resilience:
        parts.append(format_table(
            ("metric", "count"),
            [(name.replace("_", " "), count) for name, count in resilience.items()],
            title="Resilience (fault injection / runtime checks)",
        ))

    if summary.watchdog_diagnostics:
        diag = summary.watchdog_diagnostics[-1]
        rows = [
            ("cycle", f"{diag.get('time', 0.0):.1f}"),
            ("window (cycles)", f"{diag.get('window_cycles', 0.0):.0f}"),
            ("delivered so far", diag.get("delivered_total", 0)),
            ("outstanding", diag.get("outstanding", 0)),
            ("buffered / pending / in transit",
             f"{diag.get('buffered', 0)} / {diag.get('pending', 0)} / "
             f"{diag.get('in_transit', 0)}"),
        ]
        for entry in diag.get("routers", ())[:5]:
            ports = ", ".join(
                f"{port}={count}" for port, count in entry.get("ports", {}).items()
            )
            draining = " (draining)" if entry.get("draining") else ""
            rows.append((f"node {entry.get('node')}{draining}", ports))
        parts.append(format_table(
            ("field", "value"),
            rows,
            title=f"Watchdog stall snapshot (last of "
                  f"{summary.event_counts.get('watchdog', 0)} fires)",
        ))

    by_output = summary.utilization_by_output()
    if by_output:
        parts.append(format_table(
            ("output port", "mean util", "max util"),
            [
                (output_port_name(output), f"{mean:.1%}", f"{peak:.1%}")
                for output, (mean, peak) in by_output.items()
            ],
            title="Per-output-port utilization (across nodes)",
        ))

    if summary.event_counts:
        parts.append(format_table(
            ("event kind", "records"),
            sorted(summary.event_counts.items()),
            title="Trace events",
        ))

    if summary.profile:
        parts.append(format_table(
            ("phase", "seconds", "samples"),
            [
                (p["name"], f"{p['seconds']:.3f}", p["samples"])
                for p in summary.profile
            ],
            title="Wall-clock by simulation phase",
        ))
    return "\n\n".join(parts)


def _cmd_summarize(args: argparse.Namespace) -> str:
    return "\n\n\n".join(
        _render_summary(summarize_trace(path)) for path in args.traces
    )


def _cmd_diff(args: argparse.Namespace) -> str:
    summary_a = summarize_trace(args.trace_a)
    summary_b = summarize_trace(args.trace_b)
    rows = []
    for delta in diff_summaries(summary_a, summary_b):
        if delta.a == 0 and delta.b == 0:
            continue
        relative = (
            "n/a" if delta.relative is None else f"{delta.relative:+.1%}"
        )
        rows.append((delta.name, f"{delta.a:g}", f"{delta.b:g}", relative))
    title = (
        f"A = {summary_a.path} ({summary_a.algorithm})\n"
        f"B = {summary_b.path} ({summary_b.algorithm})"
    )
    return format_table(("metric", "A", "B", "B vs A"), rows, title=title)


def _cmd_ports(args: argparse.Namespace) -> str:
    summary = summarize_trace(args.trace)
    per_port = summary.port_utilization()
    if not per_port:
        return "(no per-port data: trace has no counters record or grants)"
    busiest = sorted(per_port.items(), key=lambda kv: -kv[1])
    if args.top > 0:
        busiest = busiest[: args.top]
    busy = summary.port_busy_cycles()
    rows = [
        (
            node,
            output_port_name(output),
            f"{busy.get((node, output), 0.0):.0f}",
            f"{util:.1%}",
        )
        for (node, output), util in busiest
    ]
    return format_table(
        ("node", "output", "busy cycles", "utilization"),
        rows,
        title=f"Busiest output ports of {summary.path}",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro obs",
        description="Summarize, diff and drill into repro telemetry traces.",
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--output", type=Path, default=None, help="also write the report here"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    summarize = commands.add_parser(
        "summarize",
        parents=[common],
        help="one-screen digest of one or more traces",
    )
    summarize.add_argument("traces", nargs="+", type=Path)
    summarize.set_defaults(func=_cmd_summarize)

    diff = commands.add_parser(
        "diff", parents=[common], help="compare two traces' aggregates"
    )
    diff.add_argument("trace_a", type=Path)
    diff.add_argument("trace_b", type=Path)
    diff.set_defaults(func=_cmd_diff)

    ports = commands.add_parser(
        "ports", parents=[common], help="per-port utilization table for one trace"
    )
    ports.add_argument("trace", type=Path)
    ports.add_argument(
        "--top", type=int, default=20,
        help="show the N busiest (node, port) pairs; 0 = all (default 20)",
    )
    ports.set_defaults(func=_cmd_ports)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        text = args.func(args)
        print(text)
        if args.output is not None:
            args.output.parent.mkdir(parents=True, exist_ok=True)
            args.output.write_text(text + "\n")
    except (OSError, ValueError) as error:
        print(f"repro obs: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
