"""The paper's in-text quantitative claims, as runnable ablations.

* **T1** -- "each additional cycle added to the 21364 router's
  arbitration pipeline degraded the network throughput by roughly 5%
  under heavy load" (measured with SPAA).  We sweep SPAA's arbitration
  latency from 3 to 8 cycles at a heavy load and report the loss per
  added cycle.
* **T2** -- "if we could implement WFA as a three-cycle arbitration
  mechanism like SPAA, then pipelining is the key difference ...
  SPAA provides a throughput boost of about 8%" (8x8, random traffic,
  ~122 ns).  We run WFA-base with the hypothetical 3-cycle timing and
  compare against SPAA-base.
* **T3** -- "the network produces a cyclic pattern of network link
  utilization with extremely high levels of uniform random input
  traffic ... The period of this cycle increases with the diameter of
  the network" (section 3.4).  We overload 4x4 and 8x8 networks, bucket
  the delivered throughput into windows, and compare the oscillation
  strength and dominant period.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.timing import SPAA_TIMING, WFA_3CYCLE_TIMING
from repro.experiments.report import format_table
from repro.sim.config import (
    NetworkConfig,
    SimulationConfig,
    TrafficConfig,
    saturation_buffer_plan,
)
from repro.sim.observers import ThroughputTimeline
from repro.sim.sweep import sweep_algorithm, throughput_gain_at_latency
from repro.sim.timing_model import NetworkSimulator

PRESETS: dict[str, tuple[int, int]] = {
    "paper": (15_000, 60_000),
    "fast": (3_000, 9_000),
    "smoke": (1_000, 2_000),
}


def _base_config(preset: str, seed: int) -> SimulationConfig:
    warmup, measure = PRESETS[preset]
    return SimulationConfig(
        algorithm="SPAA-base",
        network=NetworkConfig(
            width=8, height=8, buffer_plan=saturation_buffer_plan()
        ),
        traffic=TrafficConfig(injection_rate=0.03),
        warmup_cycles=warmup,
        measure_cycles=measure,
        seed=seed,
    )


@dataclass(frozen=True)
class ArbLatencyCostResult:
    """Claim T1: throughput vs arbitration pipeline latency."""

    latencies: tuple[int, ...]
    throughputs: tuple[float, ...]

    def loss_per_cycle(self) -> float:
        """Mean relative throughput loss per added arbitration cycle."""
        first, last = self.throughputs[0], self.throughputs[-1]
        cycles = self.latencies[-1] - self.latencies[0]
        if first <= 0 or cycles <= 0:
            return 0.0
        return (1.0 - last / first) / cycles


def run_arb_latency_cost(
    preset: str = "fast",
    latencies: tuple[int, ...] = (3, 4, 5, 6, 7, 8),
    seed: int = 42,
) -> ArbLatencyCostResult:
    """Sweep SPAA's arbitration latency under heavy load (claim T1)."""
    base = _base_config(preset, seed)
    throughputs = []
    for latency in latencies:
        timing = replace(SPAA_TIMING, latency=latency)
        config = replace(base, arbitration_override=timing)
        throughputs.append(NetworkSimulator(config).bnf_point().throughput)
    return ArbLatencyCostResult(tuple(latencies), tuple(throughputs))


@dataclass(frozen=True)
class PipeliningGainResult:
    """Claim T2: SPAA vs a hypothetical 3-cycle (unpipelined) WFA."""

    gain_at_target: float
    target_latency_ns: float


def run_pipelining_gain(
    preset: str = "fast",
    target_latency_ns: float = 122.0,
    rates: tuple[float, ...] = (0.005, 0.01, 0.02, 0.03, 0.045),
    seed: int = 42,
) -> PipeliningGainResult:
    """Isolate the pipelining benefit (claim T2).

    Both configurations use 3-cycle arbitration; the only difference
    left is the initiation interval (1 vs 3) -- pipelining itself.
    """
    base = _base_config(preset, seed)
    spaa = sweep_algorithm(replace(base, algorithm="SPAA-base"), rates)
    wfa3 = sweep_algorithm(
        replace(
            base,
            algorithm="WFA-base",
            arbitration_override=WFA_3CYCLE_TIMING,
        ),
        rates,
    )
    return PipeliningGainResult(
        gain_at_target=throughput_gain_at_latency(spaa, wfa3, target_latency_ns),
        target_latency_ns=target_latency_ns,
    )


@dataclass(frozen=True)
class OscillationResult:
    """Claim T3: windowed-throughput oscillation per network size."""

    #: network label -> (oscillation coefficient of variation,
    #: dominant period in windows or None)
    by_network: dict[str, tuple[float, int | None]]

    def period(self, label: str) -> int | None:
        return self.by_network[label][1]


def run_saturation_oscillation(
    preset: str = "fast",
    sizes: tuple[int, ...] = (4, 8),
    overload_rate: float = 0.1,
    window_cycles: float = 500.0,
    seed: int = 42,
) -> OscillationResult:
    """Measure the clog/clear cycle of saturated networks (claim T3)."""
    warmup, measure = PRESETS[preset]
    by_network: dict[str, tuple[float, int | None]] = {}
    for size in sizes:
        config = SimulationConfig(
            algorithm="SPAA-base",
            network=NetworkConfig(
                width=size, height=size, buffer_plan=saturation_buffer_plan()
            ),
            traffic=TrafficConfig(injection_rate=overload_rate),
            warmup_cycles=warmup,
            measure_cycles=measure,
            seed=seed,
        )
        simulator = NetworkSimulator(config)
        timeline = ThroughputTimeline(window_cycles=window_cycles)
        simulator.attach_observer(timeline)
        simulator.run()
        skip = int(warmup // window_cycles)
        by_network[f"{size}x{size}"] = (
            timeline.oscillation(skip), timeline.dominant_period(skip)
        )
    return OscillationResult(by_network=by_network)


def format_claims(
    latency_cost: ArbLatencyCostResult,
    pipelining: PipeliningGainResult,
    oscillation: "OscillationResult | None" = None,
) -> str:
    t1 = format_table(
        ("arbitration latency (cycles)", "flits/router/ns"),
        list(zip(latency_cost.latencies, latency_cost.throughputs)),
        title=(
            "Claim T1: throughput vs arbitration latency under heavy load "
            f"(measured loss/cycle = {latency_cost.loss_per_cycle():.1%}, "
            "paper ~5%)"
        ),
    )
    t2 = format_table(
        ("comparison", "measured", "paper"),
        [(
            "SPAA-base over 3-cycle WFA-base "
            f"@{pipelining.target_latency_ns:.0f}ns",
            f"{pipelining.gain_at_target:+.1%}",
            "~+8%",
        )],
        title="Claim T2: the pipelining-only gain (8x8, random traffic)",
    )
    parts = [t1, t2]
    if oscillation is not None:
        rows = []
        for label, (cv, period) in oscillation.by_network.items():
            rows.append((label, f"{cv:.2f}",
                         "none detected" if period is None else str(period)))
        parts.append(format_table(
            ("network", "throughput oscillation (CV)", "dominant period (windows)"),
            rows,
            title="Claim T3: cyclic clog/clear under overload "
                  "(paper: period grows with network diameter)",
        ))
    return "\n\n".join(parts)


def main(preset: str = "fast") -> None:  # pragma: no cover - CLI glue
    print(format_claims(run_arb_latency_cost(preset), run_pipelining_gain(preset)))


if __name__ == "__main__":  # pragma: no cover
    main()
