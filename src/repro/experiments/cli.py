"""Command-line entry point: regenerate any figure or claim.

Usage::

    repro-experiments fig8
    repro-experiments fig10 --preset paper --output results/fig10.txt
    repro-experiments fig10 --telemetry-dir results/traces
    repro-experiments all --preset fast
    repro-experiments obs summarize results/traces/**/*.jsonl
    repro-experiments chaos run --seed 7 --count 20 --output-dir chaos-out
    repro-experiments serve chaos --output-dir out --port 7421
    repro-experiments work --connect cohost:7421

The ``obs`` subcommand delegates to :mod:`repro.obs.cli` (also
installed as ``repro-obs``) for inspecting the JSONL telemetry traces
that ``--telemetry-dir`` produces; ``chaos`` delegates to
:mod:`repro.chaos.cli` for randomized fault campaigns with
deterministic replay bundles (see docs/chaos.md); ``serve`` / ``work``
/ ``submit`` / ``status`` delegate to :mod:`repro.service.cli`, the
distributed sweep/chaos service (see docs/service.md).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.experiments import claims, figure8, figure9, figure10, figure11
from repro.resilience import (
    InvariantConfig,
    SupervisorConfig,
    WatchdogConfig,
    parse_fault_spec,
)
from repro.sim.sweep import SweepGuard


def _supervisor_config(args: argparse.Namespace) -> SupervisorConfig | None:
    """Build the supervised-execution knobs from the CLI flags.

    ``--point-timeout`` arms both the hard per-point deadline and the
    heartbeat-staleness bound at the same value: a wedged point stops
    beating long before a healthy one would exhaust the deadline, and
    one number is all the CLI needs to expose.
    """
    if args.point_timeout is None:
        return None
    if args.point_timeout <= 0:
        raise SystemExit("--point-timeout must be positive")
    if args.quarantine_after < 1:
        raise SystemExit("--quarantine-after must be at least 1")
    return SupervisorConfig(
        point_timeout_s=args.point_timeout,
        heartbeat_stale_s=args.point_timeout,
        quarantine_after=args.quarantine_after,
    )


def _sweep_guard(args: argparse.Namespace) -> SweepGuard | None:
    """Build the resilience bundle for fig10/fig11 from the CLI flags."""
    wanted = (
        args.faults
        or args.invariants
        or args.watchdog is not None
        or args.watchdog_remediate
        or args.journal_dir is not None
        or args.resume
        or args.max_attempts > 1
        or args.point_timeout is not None
    )
    if not wanted:
        return None
    if args.resume and args.journal_dir is None:
        raise SystemExit("--resume requires --journal-dir")
    if args.watchdog_remediate and args.watchdog is None:
        raise SystemExit("--watchdog-remediate requires --watchdog")
    try:
        faults = parse_fault_spec(args.faults) if args.faults else None
    except ValueError as error:
        raise SystemExit(f"bad --faults spec: {error}") from error
    return SweepGuard(
        faults=faults,
        invariants=InvariantConfig() if args.invariants else None,
        watchdog=(
            WatchdogConfig(
                window_cycles=args.watchdog,
                remediate=args.watchdog_remediate,
            )
            if args.watchdog is not None
            else None
        ),
        journal_path=args.journal_dir,
        resume=args.resume,
        max_attempts=args.max_attempts,
        supervisor=_supervisor_config(args),
    )


def _standalone_faults(args: argparse.Namespace):
    """Parse --faults for the standalone figures (fig8/fig9)."""
    if not args.faults:
        return None
    try:
        return parse_fault_spec(args.faults)
    except ValueError as error:
        raise SystemExit(f"bad --faults spec: {error}") from error


def _run_fig8(args: argparse.Namespace) -> str:
    return figure8.format_figure8(
        figure8.run_figure8(
            trials=args.trials,
            faults=_standalone_faults(args),
            backend=args.backend,
        )
    )


def _run_fig9(args: argparse.Namespace) -> str:
    return figure9.format_figure9(
        figure9.run_figure9(
            trials=args.trials,
            faults=_standalone_faults(args),
            backend=args.backend,
        )
    )


def _run_fig10(args: argparse.Namespace) -> str:
    panels = figure10.PANELS
    if args.panel:
        panels = tuple(p for p in panels if args.panel.lower() in p.name.lower())
        if not panels:
            raise SystemExit(f"no Figure 10 panel matches {args.panel!r}")
    result = figure10.run_figure10(
        preset=args.preset,
        panels=panels,
        progress=_progress(args),
        telemetry_dir=args.telemetry_dir,
        guard=_sweep_guard(args),
        workers=args.workers,
    )
    return figure10.format_figure10(result)


def _run_fig11(args: argparse.Namespace) -> str:
    panels = figure11.PANELS
    if args.panel:
        panels = tuple(p for p in panels if p.key == args.panel.lower())
        if not panels:
            raise SystemExit("Figure 11 panels are a, b and c")
    result = figure11.run_figure11(
        preset=args.preset,
        panels=panels,
        progress=_progress(args),
        telemetry_dir=args.telemetry_dir,
        guard=_sweep_guard(args),
        workers=args.workers,
    )
    return figure11.format_figure11(result)


def _run_claims(args: argparse.Namespace) -> str:
    return claims.format_claims(
        claims.run_arb_latency_cost(preset=args.preset),
        claims.run_pipelining_gain(preset=args.preset),
        claims.run_saturation_oscillation(preset=args.preset),
    )


_EXPERIMENTS = {
    "fig8": _run_fig8,
    "fig9": _run_fig9,
    "fig10": _run_fig10,
    "fig11": _run_fig11,
    "claims": _run_claims,
}


def _progress(args: argparse.Namespace):
    if args.quiet:
        return None
    return lambda message: print(message, file=sys.stderr, flush=True)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the figures of 'A Comparative Study of Arbitration "
            "Algorithms for the Alpha 21364 Pipelined Router' (ASPLOS 2002)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_EXPERIMENTS) + ["all"],
        help="which figure (or in-text claim set) to regenerate",
    )
    parser.add_argument(
        "--preset",
        choices=("paper", "fast", "smoke"),
        default="fast",
        help="simulation length: paper=75k cycles per point, fast=12k, "
             "smoke=3k (default: fast)",
    )
    parser.add_argument(
        "--panel",
        default=None,
        help="restrict fig10 (substring match) or fig11 (a/b/c) to one panel",
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=1000,
        help="standalone-model trials per point for fig8/fig9 (default 1000)",
    )
    parser.add_argument(
        "--backend",
        choices=("object", "vectorized"),
        default="object",
        help="fig8/fig9 evaluation backend: 'object' is the per-trial "
             "reference path, 'vectorized' runs all trials as batched "
             "numpy kernels with bit-identical results (requires the "
             "kernels extra; see docs/kernels.md)",
    )
    parser.add_argument(
        "--output", type=Path, default=None, help="also write the report here"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="run fig10/fig11 sweep points in a process pool of N "
             "spawn-context workers (default 1 = serial); per-point "
             "results are bitwise identical to a serial run, and with "
             "--journal-dir the journal doubles as the work queue so "
             "--resume works the same as serially",
    )
    parser.add_argument(
        "--telemetry-dir",
        type=Path,
        default=None,
        help="write a JSONL telemetry trace per fig10/fig11 BNF point "
             "into this directory (inspect with 'repro-experiments obs')",
    )
    resilience = parser.add_argument_group(
        "resilience",
        "fault injection, runtime checking and checkpointed sweeps; "
        "see docs/resilience.md",
    )
    resilience.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="inject faults into every sweep point (fig10/fig11) or "
             "into every matching trial (fig8/fig9: grant suppression "
             "and trial-indexed stalls); comma-separated key=value "
             "spec, e.g. 'drop=1e-3,corrupt=5e-4,seed=7' "
             "(keys: drop, corrupt, suppress, misroute, stall-node, "
             "stall-start, stall-cycles, seed, max-retries, backoff)",
    )
    resilience.add_argument(
        "--invariants",
        action="store_true",
        help="run the runtime invariant checker (packet conservation, "
             "duplicate ids, buffer credits, age bound) in every point; "
             "any violation fails the point",
    )
    resilience.add_argument(
        "--watchdog",
        type=float,
        default=None,
        metavar="CYCLES",
        help="attach a progress watchdog: no delivery for CYCLES cycles "
             "with work outstanding records a structured stall diagnostic",
    )
    resilience.add_argument(
        "--watchdog-remediate",
        action="store_true",
        help="give a stalled simulation one recovery kick (re-arm every "
             "router's arbitration) before declaring deadlock; outcomes "
             "are recorded as remediated/deadlocked (requires --watchdog)",
    )
    resilience.add_argument(
        "--journal-dir",
        type=Path,
        default=None,
        help="checkpoint every completed sweep point into per-panel "
             "JSONL journals under this directory",
    )
    resilience.add_argument(
        "--resume",
        action="store_true",
        help="skip sweep points already completed in the journal "
             "(requires --journal-dir)",
    )
    resilience.add_argument(
        "--max-attempts",
        type=int,
        default=1,
        help="tries per sweep point before giving up; retries bump the "
             "simulation and fault seeds (default 1)",
    )
    resilience.add_argument(
        "--point-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="with --workers > 1, run the pool supervised: reap any "
             "worker whose point exceeds SECONDS of wall clock or whose "
             "in-loop heartbeat goes stale for SECONDS, journal the "
             "reap, and retry the point on a fresh worker (see "
             "docs/resilience.md)",
    )
    resilience.add_argument(
        "--quarantine-after",
        type=int,
        default=3,
        metavar="K",
        help="quarantine a point after K supervised crashes "
             "(worker deaths or reaps) instead of retrying it forever "
             "(default 3; only meaningful with --point-timeout)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress progress lines"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "obs":
        # Telemetry-trace inspection lives in its own sub-CLI with its
        # own argument grammar; hand the rest of the line over.
        from repro.obs.cli import main as obs_main

        return obs_main(argv[1:])
    if argv and argv[0] == "chaos":
        # Chaos campaigns (run/replay/shrink/report) likewise.
        from repro.chaos.cli import main as chaos_main

        return chaos_main(argv[1:])
    if argv and argv[0] in ("serve", "work", "submit", "status"):
        # The distributed sweep/chaos service (docs/service.md); the
        # verb itself is the service CLI's subcommand, so pass it on.
        from repro.service.cli import main as service_main

        return service_main(argv)
    args = build_parser().parse_args(argv)
    if args.workers < 1:
        raise SystemExit("--workers must be at least 1")
    names = sorted(_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    reports = []
    for name in names:
        started = time.time()
        report = _EXPERIMENTS[name](args)
        elapsed = time.time() - started
        reports.append(report + f"\n\n[{name} regenerated in {elapsed:.1f}s]")
    text = ("\n\n" + "=" * 78 + "\n\n").join(reports)
    print(text)
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(text + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
