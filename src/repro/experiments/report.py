"""Plain-text rendering for experiment results: tables and line plots.

The paper's figures are line charts; in a terminal-first library we
render them as aligned tables plus a simple ASCII scatter so the shape
(orderings, crossovers, saturation fold-backs) is visible at a glance.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.sim.metrics import BNFCurve


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned monospace table."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [
        max(len(str(header)), *(len(row[i]) for row in cells)) if cells
        else len(str(header))
        for i, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(value.rjust(w) for value, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def ascii_plot(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 72,
    height: int = 20,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Scatter several (x, y) series onto a character grid.

    Each series gets the first letter of its label (disambiguated with
    digits on collision).  Intended for quick shape checks of BNF
    curves in terminals and logs, not for publication.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid = [[" "] * width for _ in range(height)]
    markers: dict[str, str] = {}
    used: set[str] = set()
    for label in series:
        marker = label[0].upper()
        if marker in used:
            for digit in "23456789":
                if digit not in used:
                    marker = digit
                    break
        used.add(marker)
        markers[label] = marker

    for label, pts in series.items():
        marker = markers[label]
        for x, y in pts:
            col = round((x - x_low) / x_span * (width - 1))
            row = height - 1 - round((y - y_low) / y_span * (height - 1))
            grid[row][col] = marker

    lines = [f"{y_label} ({y_low:.3g} .. {y_high:.3g})"]
    lines += ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width)
    lines.append(f" {x_label} ({x_low:.3g} .. {x_high:.3g})")
    legend = "  ".join(f"{marker}={label}" for label, marker in markers.items())
    lines.append(f" legend: {legend}")
    return "\n".join(lines)


def bnf_plot(curves: Mapping[str, BNFCurve], width: int = 72, height: int = 20) -> str:
    """ASCII Burton-Normal-Form chart: latency (y) vs throughput (x)."""
    series = {
        label: [(p.throughput, p.latency_ns) for p in curve.points]
        for label, curve in curves.items()
    }
    return ascii_plot(
        series,
        width=width,
        height=height,
        x_label="delivered flits/router/ns",
        y_label="average packet latency (ns)",
    )


def curves_table(curves: Mapping[str, BNFCurve]) -> str:
    """The raw sweep numbers behind a BNF chart."""
    rows = []
    for label, curve in curves.items():
        for point in curve.points:
            rows.append(
                (label, f"{point.offered_rate:.4g}", point.throughput,
                 point.latency_ns, point.packets_delivered)
            )
    return format_table(
        ("algorithm", "offered rate", "flits/router/ns", "latency ns", "packets"),
        rows,
    )
