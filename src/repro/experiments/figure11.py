"""Figure 11: scaling studies -- deeper pipelines, more misses, bigger nets.

Three panels, each sweeping PIM1, WFA-rotary and SPAA-rotary:

* (a) a pipeline twice as deep at twice the frequency (arbitration
  latencies 8/8/6): SPAA-rotary, being pipelined, wins by >60% at
  ~100 ns;
* (b) 64 outstanding misses per processor (the cancelled 21464's
  figure): SPAA-rotary ~13% over WFA-rotary at ~200 ns;
* (c) a 144-processor 12x12 network (beyond the product's 128 limit):
  SPAA-rotary ~18% over WFA-rotary at ~200 ns, though at extreme load
  WFA-rotary's output-arbiter synchronization lets it keep climbing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.experiments.report import bnf_plot, curves_table, format_table
from repro.sim.config import (
    NetworkConfig,
    SimulationConfig,
    TrafficConfig,
    saturation_buffer_plan,
)
from repro.sim.metrics import BNFCurve
from repro.sim.sweep import (
    SweepGuard,
    sweep_algorithms,
    throughput_gain_at_latency,
)

SCALING_ALGORITHMS = ("PIM1", "WFA-rotary", "SPAA-rotary")

PRESETS: dict[str, tuple[int, int]] = {
    "paper": (15_000, 60_000),
    "fast": (3_000, 9_000),
    "smoke": (1_000, 2_000),
}


@dataclass(frozen=True)
class ScalingPanel:
    key: str
    name: str
    width: int
    height: int
    mshr_limit: int
    pipeline_scale: int
    rates: tuple[float, ...]
    headline_latency_ns: float
    baseline: str = "WFA-rotary"


PANELS: tuple[ScalingPanel, ...] = (
    ScalingPanel(
        "a", "2x Pipeline, 8x8, Random Traffic", 8, 8,
        mshr_limit=16, pipeline_scale=2,
        rates=(0.004, 0.01, 0.02, 0.04, 0.06, 0.09, 0.13),
        headline_latency_ns=100.0,
    ),
    ScalingPanel(
        "b", "64 requests, 8x8, Random Traffic", 8, 8,
        mshr_limit=64, pipeline_scale=1,
        rates=(0.002, 0.005, 0.01, 0.02, 0.03, 0.045, 0.065),
        headline_latency_ns=200.0,
    ),
    ScalingPanel(
        "c", "12x12, Random Traffic", 12, 12,
        mshr_limit=16, pipeline_scale=1,
        rates=(0.002, 0.005, 0.01, 0.02, 0.03, 0.045, 0.065),
        headline_latency_ns=200.0,
    ),
)


@dataclass
class Figure11Result:
    preset: str
    panels: dict[str, dict[str, BNFCurve]] = field(default_factory=dict)
    panel_specs: dict[str, ScalingPanel] = field(default_factory=dict)

    def headline_gain(self, panel: ScalingPanel) -> float:
        """SPAA-rotary's throughput gain over the panel baseline."""
        curves = self.panels[panel.name]
        return throughput_gain_at_latency(
            curves["SPAA-rotary"], curves[panel.baseline],
            panel.headline_latency_ns,
        )


def panel_config(
    panel: ScalingPanel, preset: str = "fast", seed: int = 42
) -> SimulationConfig:
    warmup, measure = PRESETS[preset]
    return SimulationConfig(
        network=NetworkConfig(
            width=panel.width,
            height=panel.height,
            buffer_plan=saturation_buffer_plan(),
            pipeline_scale=panel.pipeline_scale,
        ),
        traffic=TrafficConfig(
            pattern="uniform",
            injection_rate=0.01,
            mshr_limit=panel.mshr_limit,
        ),
        warmup_cycles=warmup,
        measure_cycles=measure,
        seed=seed,
    )


def run_panel(
    panel: ScalingPanel,
    preset: str = "fast",
    algorithms: tuple[str, ...] = SCALING_ALGORITHMS,
    seed: int = 42,
    progress=None,
    telemetry_dir=None,
    guard: SweepGuard | None = None,
    workers: int = 1,
    profile_into=None,
) -> dict[str, BNFCurve]:
    """Sweep one Figure 11 panel, optionally guarded (see SweepGuard).

    ``workers > 1`` fans the panel's points out over a process pool
    (see :mod:`repro.sim.parallel`); per-point results stay bitwise
    identical to a serial run.  *profile_into* (a
    :class:`~repro.obs.profiler.PhaseProfiler`) accumulates every
    point's per-phase wall-time attribution.
    """
    config = panel_config(panel, preset, seed)
    if telemetry_dir is not None:
        telemetry_dir = Path(telemetry_dir) / f"fig11{panel.key}"
    guard_kwargs = (
        guard.scoped(f"fig11{panel.key}").sweep_kwargs() if guard else {}
    )
    return sweep_algorithms(
        config,
        algorithms,
        panel.rates,
        progress,
        telemetry_dir=telemetry_dir,
        workers=workers,
        profile_into=profile_into,
        **guard_kwargs,
    )


def run_figure11(
    preset: str = "fast",
    panels: tuple[ScalingPanel, ...] = PANELS,
    algorithms: tuple[str, ...] = SCALING_ALGORITHMS,
    seed: int = 42,
    progress=None,
    telemetry_dir=None,
    guard: SweepGuard | None = None,
    workers: int = 1,
) -> Figure11Result:
    result = Figure11Result(preset=preset)
    for panel in panels:
        if progress is not None:
            progress(f"--- Figure 11{panel.key}: {panel.name} ---")
        result.panel_specs[panel.name] = panel
        result.panels[panel.name] = run_panel(
            panel, preset, algorithms, seed, progress, telemetry_dir, guard,
            workers,
        )
    return result


def format_figure11(result: Figure11Result) -> str:
    sections = []
    paper_numbers = {"a": ">+60%", "b": "~+13%", "c": "~+18%"}
    for name, curves in result.panels.items():
        panel = result.panel_specs[name]
        parts = [f"== Figure 11{panel.key}: {name} (preset={result.preset}) =="]
        parts.append(curves_table(curves))
        parts.append(bnf_plot(curves))
        parts.append(
            format_table(
                ("comparison", "measured", "paper"),
                [(
                    f"SPAA-rotary over {panel.baseline} "
                    f"@{panel.headline_latency_ns:.0f}ns",
                    f"{result.headline_gain(panel):+.1%}",
                    paper_numbers.get(panel.key, "n/a"),
                )],
            )
        )
        sections.append("\n\n".join(parts))
    return "\n\n\n".join(sections)


def main(preset: str = "fast") -> None:  # pragma: no cover - CLI glue
    print(format_figure11(run_figure11(preset=preset, progress=print)))


if __name__ == "__main__":  # pragma: no cover
    main()
