"""Figure 8: standalone matching capability vs router load.

Matches per cycle for MCM, WFA, PIM, PIM1 and SPAA on a single router
with all output ports free, as the input load grows toward (and past)
the MCM saturation load.  The paper's headline numbers at the
saturation load: MCM/WFA/PIM find ~36% more matches than SPAA and PIM1
~14% more.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.registry import STANDALONE_ALGORITHMS
from repro.experiments.report import ascii_plot, format_table
from repro.sim.standalone import StandaloneConfig, find_mcm_saturation_load
from repro.sim.sweep import sweep_standalone

#: Fractions of the MCM saturation load along the x-axis.
DEFAULT_FRACTIONS = (0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0)


@dataclass(frozen=True)
class Figure8Result:
    """All series of the figure plus the saturation-load gaps."""

    saturation_load: int
    fractions: tuple[float, ...]
    #: algorithm -> matches/cycle at each fraction
    series: dict[str, tuple[float, ...]]

    def matches_at_saturation(self, algorithm: str) -> float:
        return self.series[algorithm][-1]

    def gap_over_spaa(self, algorithm: str) -> float:
        """Relative advantage over SPAA at the saturation load."""
        spaa = self.matches_at_saturation("SPAA")
        return self.matches_at_saturation(algorithm) / spaa - 1.0


def run_figure8(
    trials: int = 1000,
    seed: int = 42,
    fractions: tuple[float, ...] = DEFAULT_FRACTIONS,
    algorithms: tuple[str, ...] = STANDALONE_ALGORITHMS,
    faults=None,
    backend: str = "object",
) -> Figure8Result:
    """Regenerate the Figure 8 series.

    *faults* (a :class:`repro.resilience.FaultConfig`) stresses every
    measurement with matching-layer grant suppression -- the saturation
    load is still found on a clean MCM so the x-axis stays comparable.
    *backend* selects the object oracle or the vectorized kernels for
    every point (algorithms without a kernel, like MCM, fall back to
    the object path with identical results).
    """
    base = StandaloneConfig(trials=trials, seed=seed)
    saturation = find_mcm_saturation_load(base, backend=backend)
    series: dict[str, tuple[float, ...]] = {}
    for algorithm in algorithms:
        configs = [
            replace(
                base,
                algorithm=algorithm,
                load=max(1, round(fraction * saturation)),
            )
            for fraction in fractions
        ]
        values = sweep_standalone(configs, faults=faults, backend=backend)
        series[algorithm] = tuple(values)
    return Figure8Result(
        saturation_load=saturation, fractions=tuple(fractions), series=series
    )


def format_figure8(result: Figure8Result) -> str:
    """Human-readable rendering of the regenerated figure."""
    headers = ("fraction of MCM sat. load",) + tuple(result.series)
    rows = [
        (f"{fraction:.3f}",) + tuple(
            result.series[algorithm][i] for algorithm in result.series
        )
        for i, fraction in enumerate(result.fractions)
    ]
    table = format_table(
        headers,
        rows,
        title=(
            "Figure 8: arbitration matches/cycle, zero output occupancy "
            f"(MCM saturation load = {result.saturation_load} packets)"
        ),
    )
    plot = ascii_plot(
        {
            algorithm: list(zip(result.fractions, values))
            for algorithm, values in result.series.items()
        },
        x_label="fraction of MCM saturation load",
        y_label="matches per cycle",
        height=16,
    )
    gaps = format_table(
        ("algorithm", "matches @ saturation", "gain over SPAA"),
        [
            (
                algorithm,
                result.matches_at_saturation(algorithm),
                f"{result.gap_over_spaa(algorithm):+.1%}",
            )
            for algorithm in result.series
        ],
        title="Saturation-load comparison (paper: MCM/WFA/PIM +36%, PIM1 +14%)",
    )
    return "\n\n".join([table, plot, gaps])


def main() -> None:  # pragma: no cover - CLI glue
    print(format_figure8(run_figure8()))


if __name__ == "__main__":  # pragma: no cover
    main()
