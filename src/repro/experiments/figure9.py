"""Figure 9: matching capability vs output-port occupancy.

At the MCM saturation load, an increasing fraction of the seven output
ports is held busy.  The paper's point: the algorithms' matching gaps
shrink as occupancy grows and disappear entirely at 75% -- the
realistic operating regime that justifies SPAA's simplicity.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.registry import STANDALONE_ALGORITHMS
from repro.experiments.report import ascii_plot, format_table
from repro.sim.standalone import StandaloneConfig, find_mcm_saturation_load
from repro.sim.sweep import sweep_standalone

DEFAULT_OCCUPANCIES = (0.0, 0.25, 0.5, 0.75)


@dataclass(frozen=True)
class Figure9Result:
    saturation_load: int
    occupancies: tuple[float, ...]
    series: dict[str, tuple[float, ...]]

    def spread_at(self, occupancy: float) -> float:
        """Relative spread (max-min)/min across algorithms."""
        index = self.occupancies.index(occupancy)
        values = [series[index] for series in self.series.values()]
        low = min(values)
        return (max(values) - low) / low if low else float("inf")


def run_figure9(
    trials: int = 1000,
    seed: int = 42,
    occupancies: tuple[float, ...] = DEFAULT_OCCUPANCIES,
    algorithms: tuple[str, ...] = STANDALONE_ALGORITHMS,
    faults=None,
    backend: str = "object",
) -> Figure9Result:
    """Regenerate the Figure 9 series.

    *faults* (a :class:`repro.resilience.FaultConfig`) stresses every
    measurement with matching-layer grant suppression; the saturation
    load is still found on a clean MCM.  *backend* selects the object
    oracle or the vectorized kernels (non-kernel algorithms fall back
    with identical results).
    """
    base = StandaloneConfig(trials=trials, seed=seed)
    saturation = find_mcm_saturation_load(base, backend=backend)
    series: dict[str, tuple[float, ...]] = {}
    for algorithm in algorithms:
        configs = [
            replace(
                base, algorithm=algorithm, load=saturation, occupancy=occupancy
            )
            for occupancy in occupancies
        ]
        values = sweep_standalone(configs, faults=faults, backend=backend)
        series[algorithm] = tuple(values)
    return Figure9Result(
        saturation_load=saturation,
        occupancies=tuple(occupancies),
        series=series,
    )


def format_figure9(result: Figure9Result) -> str:
    headers = ("fraction of outputs occupied",) + tuple(result.series)
    rows = [
        (f"{occupancy:.2f}",) + tuple(
            result.series[algorithm][i] for algorithm in result.series
        )
        for i, occupancy in enumerate(result.occupancies)
    ]
    table = format_table(
        headers,
        rows,
        title=(
            "Figure 9: arbitration matches/cycle at the MCM saturation load "
            f"({result.saturation_load} packets)"
        ),
    )
    plot = ascii_plot(
        {
            algorithm: list(zip(result.occupancies, values))
            for algorithm, values in result.series.items()
        },
        x_label="fraction of output ports occupied",
        y_label="matches per cycle",
        height=16,
    )
    spreads = format_table(
        ("occupancy", "spread across algorithms"),
        [
            (f"{occ:.2f}", f"{result.spread_at(occ):.1%}")
            for occ in result.occupancies
        ],
        title="Algorithm spread (paper: negligible by 75% occupancy)",
    )
    return "\n\n".join([table, plot, spreads])


def main() -> None:  # pragma: no cover - CLI glue
    print(format_figure9(run_figure9()))


if __name__ == "__main__":  # pragma: no cover
    main()
