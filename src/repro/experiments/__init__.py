"""Experiment regenerators: one module per figure plus in-text claims.

``repro-experiments <fig8|fig9|fig10|fig11|claims|all>`` on the command
line, or import the ``run_*`` functions directly:

* :mod:`repro.experiments.figure8` -- standalone matching vs load
* :mod:`repro.experiments.figure9` -- matching vs output occupancy
* :mod:`repro.experiments.figure10` -- BNF curves, 4 panels
* :mod:`repro.experiments.figure11` -- scaling studies, 3 panels
* :mod:`repro.experiments.claims` -- the paper's in-text numbers
"""

from repro.experiments.claims import (
    run_arb_latency_cost,
    run_pipelining_gain,
    run_saturation_oscillation,
)
from repro.experiments.figure8 import Figure8Result, run_figure8
from repro.experiments.figure9 import Figure9Result, run_figure9
from repro.experiments.figure10 import Figure10Result, run_figure10
from repro.experiments.figure11 import Figure11Result, run_figure11
from repro.experiments.report import ascii_plot, bnf_plot, format_table

__all__ = [
    "Figure8Result",
    "Figure9Result",
    "Figure10Result",
    "Figure11Result",
    "ascii_plot",
    "bnf_plot",
    "format_table",
    "run_arb_latency_cost",
    "run_figure8",
    "run_figure9",
    "run_figure10",
    "run_figure11",
    "run_pipelining_gain",
    "run_saturation_oscillation",
]
