"""Figure 10: BNF latency/throughput curves for the timing model.

Four panels -- 4x4 random, 8x8 random, 8x8 bit-reversal and 8x8
perfect-shuffle -- each sweeping offered load for the five timing-
capable algorithms (PIM1, WFA-base, WFA-rotary, SPAA-base,
SPAA-rotary).  Headline paper claims this regenerates:

* SPAA-base beats PIM1/WFA-base by ~11% on 4x4 (at ~83 ns) and ~24%
  on 8x8 (at ~122 ns);
* PIM1 and WFA-base track each other;
* beyond saturation the base policies' delivered throughput collapses
  while the Rotary-Rule variants keep climbing (+16% WFA, +43% SPAA
  at ~280 ns on 8x8).

The sweeps run on the saturation-calibrated buffer plan (see
``repro.sim.config.saturation_buffer_plan``), which our model needs
for back-pressure to bind at the paper's saturation point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.core.registry import TIMING_ALGORITHMS
from repro.experiments.report import bnf_plot, curves_table, format_table
from repro.sim.config import (
    NetworkConfig,
    SimulationConfig,
    TrafficConfig,
    saturation_buffer_plan,
)
from repro.sim.metrics import BNFCurve
from repro.sim.sweep import (
    SweepGuard,
    sweep_algorithms,
    throughput_gain_at_latency,
)


@dataclass(frozen=True)
class Panel:
    """One subplot of Figure 10."""

    name: str
    width: int
    height: int
    pattern: str
    rates: tuple[float, ...]
    #: latency at which the paper quotes the SPAA-vs-WFA gain
    headline_latency_ns: float
    #: latency at which the paper quotes the rotary-vs-base gain
    rotary_latency_ns: float | None = None


PANELS: tuple[Panel, ...] = (
    Panel("4x4, Random Traffic", 4, 4, "uniform",
          (0.002, 0.005, 0.01, 0.02, 0.03, 0.045, 0.065),
          headline_latency_ns=83.0),
    Panel("8x8, Random Traffic", 8, 8, "uniform",
          (0.002, 0.005, 0.01, 0.02, 0.03, 0.045, 0.065),
          headline_latency_ns=122.0, rotary_latency_ns=280.0),
    Panel("8x8, Bit Reversal", 8, 8, "bit-reversal",
          (0.002, 0.005, 0.01, 0.02, 0.03, 0.045, 0.065),
          headline_latency_ns=122.0, rotary_latency_ns=280.0),
    Panel("8x8, Perfect Shuffle", 8, 8, "perfect-shuffle",
          (0.002, 0.005, 0.01, 0.02, 0.03, 0.045, 0.065),
          headline_latency_ns=122.0, rotary_latency_ns=280.0),
)

#: (warmup, measure) cycles per preset; "paper" matches the 75 000-cycle
#: runs of section 4.3.
PRESETS: dict[str, tuple[int, int]] = {
    "paper": (15_000, 60_000),
    "fast": (3_000, 9_000),
    "smoke": (1_000, 2_000),
}


@dataclass
class Figure10Result:
    preset: str
    panels: dict[str, dict[str, BNFCurve]] = field(default_factory=dict)

    def headline_gains(self, panel: Panel) -> list[tuple[str, float]]:
        """The paper-style comparisons for one panel."""
        curves = self.panels[panel.name]
        gains = [(
            "SPAA-base over WFA-base "
            f"@{panel.headline_latency_ns:.0f}ns",
            throughput_gain_at_latency(
                curves["SPAA-base"], curves["WFA-base"],
                panel.headline_latency_ns,
            ),
        ), (
            "SPAA-base over PIM1 "
            f"@{panel.headline_latency_ns:.0f}ns",
            throughput_gain_at_latency(
                curves["SPAA-base"], curves["PIM1"], panel.headline_latency_ns
            ),
        )]
        if panel.rotary_latency_ns is not None:
            gains.append((
                f"SPAA-rotary over SPAA-base @{panel.rotary_latency_ns:.0f}ns",
                throughput_gain_at_latency(
                    curves["SPAA-rotary"], curves["SPAA-base"],
                    panel.rotary_latency_ns,
                ),
            ))
            gains.append((
                f"WFA-rotary over WFA-base @{panel.rotary_latency_ns:.0f}ns",
                throughput_gain_at_latency(
                    curves["WFA-rotary"], curves["WFA-base"],
                    panel.rotary_latency_ns,
                ),
            ))
        return gains


def panel_config(panel: Panel, preset: str = "fast", seed: int = 42) -> SimulationConfig:
    """The SimulationConfig one panel sweeps (rate filled per point)."""
    warmup, measure = PRESETS[preset]
    return SimulationConfig(
        network=NetworkConfig(
            width=panel.width,
            height=panel.height,
            buffer_plan=saturation_buffer_plan(),
        ),
        traffic=TrafficConfig(pattern=panel.pattern, injection_rate=0.01),
        warmup_cycles=warmup,
        measure_cycles=measure,
        seed=seed,
    )


def run_panel(
    panel: Panel,
    preset: str = "fast",
    algorithms: tuple[str, ...] = TIMING_ALGORITHMS,
    seed: int = 42,
    progress=None,
    telemetry_dir=None,
    guard: SweepGuard | None = None,
    workers: int = 1,
    profile_into=None,
) -> dict[str, BNFCurve]:
    """Sweep one Figure 10 panel.

    With *telemetry_dir* set, every BNF point writes a JSONL telemetry
    trace under ``<telemetry_dir>/<panel-slug>/`` and carries its
    arbiter counters (see :mod:`repro.obs`).  With a *guard* (see
    :class:`repro.sim.sweep.SweepGuard`) every point runs with fault
    injection / invariant checking / watchdog / checkpointing attached;
    the journal is scoped per panel.  With ``workers > 1`` the panel's
    (algorithm, rate) points run in a process pool (see
    :mod:`repro.sim.parallel`) with bitwise identical per-point stats.
    With *profile_into* (a :class:`~repro.obs.profiler.PhaseProfiler`)
    every point's arbitration/traversal/delivery wall-time attribution
    is merged into it -- this is how the benchmark suite's perf records
    learn where a panel's time went.
    """
    config = panel_config(panel, preset, seed)
    if telemetry_dir is not None:
        telemetry_dir = Path(telemetry_dir) / panel_slug(panel.name)
    guard_kwargs = (
        guard.scoped(panel_slug(panel.name)).sweep_kwargs() if guard else {}
    )
    return sweep_algorithms(
        config,
        algorithms,
        panel.rates,
        progress,
        telemetry_dir=telemetry_dir,
        workers=workers,
        profile_into=profile_into,
        **guard_kwargs,
    )


def panel_slug(name: str) -> str:
    """Filesystem-safe directory name for a panel."""
    return "".join(c if c.isalnum() or c in "-x" else "_" for c in name).strip("_")


def run_figure10(
    preset: str = "fast",
    panels: tuple[Panel, ...] = PANELS,
    algorithms: tuple[str, ...] = TIMING_ALGORITHMS,
    seed: int = 42,
    progress=None,
    telemetry_dir=None,
    guard: SweepGuard | None = None,
    workers: int = 1,
) -> Figure10Result:
    """Regenerate every panel of Figure 10."""
    result = Figure10Result(preset=preset)
    for panel in panels:
        if progress is not None:
            progress(f"--- {panel.name} ---")
        result.panels[panel.name] = run_panel(
            panel, preset, algorithms, seed, progress, telemetry_dir, guard,
            workers,
        )
    return result


def format_figure10(result: Figure10Result) -> str:
    sections = []
    panels_by_name = {panel.name: panel for panel in PANELS}
    for name, curves in result.panels.items():
        parts = [f"== Figure 10 panel: {name} (preset={result.preset}) =="]
        parts.append(curves_table(curves))
        parts.append(bnf_plot(curves))
        panel = panels_by_name.get(name)
        if panel is not None:
            parts.append(
                format_table(
                    ("comparison", "measured gain"),
                    [
                        (label, f"{gain:+.1%}")
                        for label, gain in result.headline_gains(panel)
                    ],
                    title="Headline gains (paper: +11% 4x4 / +24% 8x8; "
                          "rotary +43% SPAA, +16% WFA)",
                )
            )
        sections.append("\n\n".join(parts))
    return "\n\n\n".join(sections)


def main(preset: str = "fast") -> None:  # pragma: no cover - CLI glue
    print(format_figure10(run_figure10(preset=preset, progress=print)))


if __name__ == "__main__":  # pragma: no cover
    main()
