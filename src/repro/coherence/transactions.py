"""Coherence transactions: the unit of work the network serves.

The paper's traffic mix (section 4.2) is 70% two-coherence-hop
transactions (a 3-flit request answered by a 19-flit block response)
and 30% three-hop transactions (request, 3-flit forward to the owning
cache, then the block response).  A *coherence hop* is one packet,
which may cross many routers.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field


class TransactionKind(enum.Enum):
    TWO_HOP = "2-hop"
    THREE_HOP = "3-hop"
    #: an I/O read: READ_IO request out, WRITE_IO-sized data back.
    #: Not part of the paper's 70/30 mix (it ignores I/O traffic);
    #: provided so the I/O ports and the deadlock-free-only routing
    #: discipline can be exercised and studied.
    IO_READ = "io-read"

    @property
    def coherence_hops(self) -> int:
        return 3 if self is TransactionKind.THREE_HOP else 2


@dataclass(slots=True)
class Transaction:
    """One outstanding cache miss and its packet trail.

    Attributes:
        tid: unique transaction id.
        kind: two- or three-hop flow.
        requester: node that missed.
        home: node owning the directory/memory for the line.
        owner: node whose cache holds the line (3-hop only).
        mc_index: which of the home's two memory controllers serves
            the line (0 or 1); decides the request's sink port and the
            response's injection port.
        started_at / completed_at: core-cycle timestamps.
    """

    tid: int
    kind: TransactionKind
    requester: int
    home: int
    owner: int | None
    mc_index: int
    started_at: float
    request_delivered_at: float | None = None
    forward_delivered_at: float | None = None
    completed_at: float | None = None

    _tids = itertools.count()

    @property
    def complete(self) -> bool:
        return self.completed_at is not None

    @staticmethod
    def next_tid() -> int:
        return next(Transaction._tids)


@dataclass
class TransactionLog:
    """Optional in-memory log of completed transactions (examples, tests)."""

    completed: list[Transaction] = field(default_factory=list)
    keep: bool = False

    def record(self, transaction: Transaction) -> None:
        if self.keep:
            self.completed.append(transaction)
