"""Coherence-protocol substrate: transactions, MSHRs, protocol engine."""

from repro.coherence.mshr import MSHRFile
from repro.coherence.protocol import CoherenceEngine, ProtocolHost
from repro.coherence.transactions import (
    Transaction,
    TransactionKind,
    TransactionLog,
)

__all__ = [
    "CoherenceEngine",
    "MSHRFile",
    "ProtocolHost",
    "Transaction",
    "TransactionKind",
    "TransactionLog",
]
