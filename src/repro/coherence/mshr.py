"""Miss Status Holding Registers: the per-processor outstanding-miss cap.

A 21364 processor sustains at most 16 outstanding cache misses to
remote memory (paper section 3.4) -- one of the two properties that
naturally limit network load.  Figure 11b studies a hypothetical
64-entry successor (the cancelled 21464 would have had 64).
"""

from __future__ import annotations


class MSHRFile:
    """A counting semaphore over miss slots for one processor."""

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ValueError("a processor needs at least one MSHR")
        self.limit = limit
        self._outstanding = 0

    @property
    def outstanding(self) -> int:
        return self._outstanding

    @property
    def available(self) -> int:
        return self.limit - self._outstanding

    def try_acquire(self) -> bool:
        """Claim a slot; False when every MSHR is busy (miss throttled)."""
        if self._outstanding >= self.limit:
            return False
        self._outstanding += 1
        return True

    def release(self) -> None:
        """Free a slot when the block response arrives."""
        if self._outstanding <= 0:
            raise ValueError("releasing an MSHR that was never acquired")
        self._outstanding -= 1
