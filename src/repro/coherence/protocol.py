"""The coherence-protocol engine driving the timing model.

Implements the packet flows of the paper's synthetic workload:

* **2-hop** (70%): requester sends a 3-flit REQUEST to the home node;
  after the 73 ns memory response time the home injects a 19-flit
  BLOCK_RESPONSE back to the requester.
* **3-hop** (30%): the home instead injects a 3-flit FORWARD to the
  owning cache; after the 25-cycle L2 response time the owner injects
  the BLOCK_RESPONSE to the requester.
* **I/O read** (optional, beyond the paper's mix): a 3-flit READ_IO
  from the requester's I/O port to the target's I/O port; after the
  memory response time the target returns a 19-flit WRITE_IO carrying
  the data.  I/O packets ride only the deadlock-free channels, per the
  21364's I/O ordering rules.

The engine is deliberately ignorant of routers and events: it talks to
the simulator through the tiny :class:`ProtocolHost` interface, which
keeps the coherence logic unit-testable with a stub host.
"""

from __future__ import annotations

import random
from typing import Protocol

from repro.coherence.mshr import MSHRFile
from repro.coherence.transactions import Transaction, TransactionKind
from repro.network.packets import Packet, PacketClass
from repro.router.ports import InputPort, OutputPort


class ProtocolHost(Protocol):
    """What the coherence engine needs from the simulator."""

    @property
    def now(self) -> float:
        """Current time in core cycles."""
        ...

    def cycles_per_ns(self) -> float:
        """Core cycles in one nanosecond (1.2 at 1.2 GHz)."""
        ...

    def enqueue_local(self, node: int, port: InputPort, packet: Packet) -> None:
        """Hand a packet to a node's local input port (may queue)."""
        ...

    def schedule_after(self, delay_cycles: float, callback) -> None:
        """Run *callback* after a delay."""
        ...


class CoherenceEngine:
    """Per-run protocol state machine for every node."""

    def __init__(
        self,
        host: ProtocolHost,
        num_nodes: int,
        mshr_limit: int,
        two_hop_fraction: float,
        memory_latency_ns: float,
        l2_latency_cycles: float,
        rng: random.Random,
        io_fraction: float = 0.0,
    ) -> None:
        if not 0.0 <= io_fraction <= 1.0:
            raise ValueError("io_fraction must be within [0, 1]")
        self._host = host
        self._num_nodes = num_nodes
        self._two_hop_fraction = two_hop_fraction
        self._io_fraction = io_fraction
        self._memory_latency_ns = memory_latency_ns
        self._l2_latency_cycles = l2_latency_cycles
        self._rng = rng
        self.mshrs = [MSHRFile(mshr_limit) for _ in range(num_nodes)]
        self._live: dict[int, Transaction] = {}
        #: transactions abandoned because a carrying packet was dropped
        #: (fault injection); their MSHRs are released so the node can
        #: keep issuing misses.
        self.transactions_aborted = 0
        #: hooks the simulator fills in for statistics
        self.on_transaction_complete = lambda transaction: None

    @property
    def outstanding_transactions(self) -> int:
        return len(self._live)

    # -- miss issue -----------------------------------------------------

    def try_start_transaction(self, requester: int, home: int) -> Transaction | None:
        """Issue one cache miss; None when the requester's MSHRs are full."""
        if not self.mshrs[requester].try_acquire():
            return None
        if self._io_fraction and self._rng.random() < self._io_fraction:
            kind = TransactionKind.IO_READ
            owner = None
        elif self._rng.random() < self._two_hop_fraction:
            kind = TransactionKind.TWO_HOP
            owner = None
        else:
            kind = TransactionKind.THREE_HOP
            owner = self._pick_owner(requester, home)
        transaction = Transaction(
            tid=Transaction.next_tid(),
            kind=kind,
            requester=requester,
            home=home,
            owner=owner,
            mc_index=self._rng.randrange(2),
            started_at=self._host.now,
        )
        self._live[transaction.tid] = transaction
        if kind is TransactionKind.IO_READ:
            request = Packet(
                PacketClass.READ_IO,
                source=requester,
                destination=home,
                transaction=transaction.tid,
                injected_at=self._host.now,
                sink_outputs=(int(OutputPort.IO),),
            )
            self._host.enqueue_local(requester, InputPort.IO, request)
            return transaction
        request = Packet(
            PacketClass.REQUEST,
            source=requester,
            destination=home,
            transaction=transaction.tid,
            injected_at=self._host.now,
            # A request sinks at the home's memory controller port.
            sink_outputs=(int(OutputPort.L0) + transaction.mc_index,),
        )
        self._host.enqueue_local(requester, InputPort.CACHE, request)
        return transaction

    def _pick_owner(self, requester: int, home: int) -> int:
        """Uniform third party (!= requester, != home when possible)."""
        if self._num_nodes <= 2:
            return home if home != requester else (requester + 1) % self._num_nodes
        while True:
            owner = self._rng.randrange(self._num_nodes)
            if owner not in (requester, home):
                return owner

    # -- packet delivery ------------------------------------------------

    def on_packet_delivered(self, packet: Packet) -> None:
        """Advance the owning transaction when a packet sinks."""
        if packet.transaction is None:
            return
        transaction = self._live.get(packet.transaction)
        if transaction is None:
            return
        if packet.pclass is PacketClass.REQUEST:
            self._request_delivered(transaction)
        elif packet.pclass is PacketClass.FORWARD:
            self._forward_delivered(transaction)
        elif packet.pclass is PacketClass.BLOCK_RESPONSE:
            self._response_delivered(transaction)
        elif packet.pclass is PacketClass.READ_IO:
            self._io_read_delivered(transaction)
        elif packet.pclass is PacketClass.WRITE_IO:
            self._response_delivered(transaction)

    def _request_delivered(self, transaction: Transaction) -> None:
        transaction.request_delivered_at = self._host.now
        delay = self._memory_latency_ns * self._host.cycles_per_ns()
        if transaction.kind is TransactionKind.TWO_HOP:
            self._host.schedule_after(
                delay, lambda: self._inject_response(transaction, from_memory=True)
            )
        else:
            self._host.schedule_after(
                delay, lambda: self._inject_forward(transaction)
            )

    def _inject_forward(self, transaction: Transaction) -> None:
        assert transaction.owner is not None
        forward = Packet(
            PacketClass.FORWARD,
            source=transaction.home,
            destination=transaction.owner,
            transaction=transaction.tid,
            injected_at=self._host.now,
            sink_outputs=None,  # delivered to the owner's cache: L0 or L1
        )
        mc_port = InputPort.MC0 if transaction.mc_index == 0 else InputPort.MC1
        self._host.enqueue_local(transaction.home, mc_port, forward)

    def _forward_delivered(self, transaction: Transaction) -> None:
        transaction.forward_delivered_at = self._host.now
        self._host.schedule_after(
            self._l2_latency_cycles,
            lambda: self._inject_response(transaction, from_memory=False),
        )

    def _inject_response(self, transaction: Transaction, from_memory: bool) -> None:
        if from_memory:
            source = transaction.home
            mc_port = InputPort.MC0 if transaction.mc_index == 0 else InputPort.MC1
        else:
            assert transaction.owner is not None
            source = transaction.owner
            mc_port = InputPort.CACHE  # the owning cache supplies the line
        response = Packet(
            PacketClass.BLOCK_RESPONSE,
            source=source,
            destination=transaction.requester,
            transaction=transaction.tid,
            injected_at=self._host.now,
            sink_outputs=None,  # either local port reaches the cache
        )
        self._host.enqueue_local(source, mc_port, response)

    def _io_read_delivered(self, transaction: Transaction) -> None:
        transaction.request_delivered_at = self._host.now
        delay = self._memory_latency_ns * self._host.cycles_per_ns()
        self._host.schedule_after(
            delay, lambda: self._inject_io_data(transaction)
        )

    def _inject_io_data(self, transaction: Transaction) -> None:
        data = Packet(
            PacketClass.WRITE_IO,
            source=transaction.home,
            destination=transaction.requester,
            transaction=transaction.tid,
            injected_at=self._host.now,
            sink_outputs=(int(OutputPort.IO),),
        )
        self._host.enqueue_local(transaction.home, InputPort.IO, data)

    def _response_delivered(self, transaction: Transaction) -> None:
        transaction.completed_at = self._host.now
        del self._live[transaction.tid]
        self.mshrs[transaction.requester].release()
        self.on_transaction_complete(transaction)

    # -- packet loss ----------------------------------------------------

    def on_packet_dropped(self, packet: Packet) -> None:
        """Abort the owning transaction when a carrying packet is lost.

        The real 21364 link protocol never loses packets (retries are
        unbounded), so there is no recovery flow to model; under
        injected faults with bounded retries the transaction simply
        cannot complete, and holding its MSHR forever would wedge the
        requester.  Release it and count the abort instead.
        """
        if packet.transaction is None:
            return
        transaction = self._live.pop(packet.transaction, None)
        if transaction is None:
            return
        self.mshrs[transaction.requester].release()
        self.transactions_aborted += 1
