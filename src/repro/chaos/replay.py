"""Self-contained replay bundles for failing scenarios.

A bundle is one JSON file holding everything needed to re-execute a
failure bitwise identically and to eyeball it without re-executing
anything: the full scenario (config + all seeds), the recorded outcome
(status, detail, metrics, resilience counts, digest), the fault
schedule's content hash, and the tail of the scenario's telemetry
trace.  ``repro chaos replay <bundle>`` reconstructs the scenario,
re-runs it, and compares outcome digests -- a reproduction is exact or
it is not, there is no "close enough".
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.chaos.runner import ScenarioOutcome, run_scenario
from repro.chaos.scenario import ChaosScenario, fault_schedule_digest

BUNDLE_SCHEMA = 1

#: trace lines embedded in the bundle (the full trace stays on disk
#: next to the campaign; the tail makes the bundle useful standalone).
TRACE_TAIL_LINES = 50


def write_bundle(
    bundles_dir: str | Path,
    scenario: ChaosScenario,
    outcome: ScenarioOutcome,
    trace_path: str | Path | None = None,
    campaign: dict | None = None,
) -> Path:
    """Capture one failure as ``<bundles_dir>/<scenario_id>/bundle.json``."""
    directory = Path(bundles_dir) / scenario.scenario_id
    directory.mkdir(parents=True, exist_ok=True)
    tail: list[str] = []
    if trace_path is not None and Path(trace_path).exists():
        lines = Path(trace_path).read_text(encoding="utf-8").splitlines()
        tail = [line for line in lines if line.strip()][-TRACE_TAIL_LINES:]
    record = {
        "kind": "chaos-bundle",
        "schema": BUNDLE_SCHEMA,
        "campaign": campaign or {},
        "scenario": scenario.as_dict(),
        "scenario_digest": scenario.digest(),
        "fault_digest": fault_schedule_digest(scenario),
        "outcome": outcome.as_dict(),
        "trace_tail": tail,
    }
    path = directory / "bundle.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


def load_bundle(path: str | Path) -> dict:
    """Read and sanity-check one bundle file."""
    path = Path(path)
    if path.is_dir():
        path = path / "bundle.json"
    record = json.loads(path.read_text(encoding="utf-8"))
    if record.get("kind") != "chaos-bundle":
        raise ValueError(f"{path}: not a chaos replay bundle")
    if record.get("schema") != BUNDLE_SCHEMA:
        raise ValueError(
            f"{path}: bundle schema v{record.get('schema')} does not match "
            f"this reader (v{BUNDLE_SCHEMA})"
        )
    return record


@dataclass(frozen=True)
class ReplayResult:
    """One replay attempt: the recorded failure vs the fresh run."""

    scenario: ChaosScenario
    original: ScenarioOutcome
    replayed: ScenarioOutcome

    @property
    def reproduced(self) -> bool:
        """Exact reproduction: identical outcome digests."""
        return self.replayed.digest() == self.original.digest()

    def describe(self) -> str:
        if self.reproduced:
            return (
                f"{self.scenario.scenario_id}: reproduced "
                f"({self.original.status}, digest "
                f"{self.original.digest()[:12]})"
            )
        lines = [f"{self.scenario.scenario_id}: NOT reproduced"]
        if self.replayed.status != self.original.status:
            lines.append(
                f"  status: recorded {self.original.status!r}, "
                f"replayed {self.replayed.status!r}"
            )
        if self.replayed.detail != self.original.detail:
            lines.append(
                f"  detail: recorded {self.original.detail!r}, "
                f"replayed {self.replayed.detail!r}"
            )
        lines.append(
            f"  digest: recorded {self.original.digest()[:12]}, "
            f"replayed {self.replayed.digest()[:12]}"
        )
        return "\n".join(lines)


def replay_bundle(
    path: str | Path, trace_path: str | Path | None = None
) -> ReplayResult:
    """Re-execute a bundle's scenario and compare against its record.

    The scenario is reconstructed entirely from the bundle -- nothing
    from the original campaign directory is consulted -- so a bundle
    copied to another machine replays the same.  The recorded outcome's
    digest is verified on load (a hand-edited bundle fails loudly
    rather than "reproducing" a fiction).
    """
    record = load_bundle(path)
    scenario = ChaosScenario.from_dict(record["scenario"])
    original = ScenarioOutcome.from_dict(record["outcome"])
    replayed = run_scenario(scenario, trace_path)
    return ReplayResult(
        scenario=scenario, original=original, replayed=replayed
    )
