"""Running a scenario list as a checkpointed, resumable campaign.

The campaign rides the existing resilience machinery: completed
scenarios checkpoint into a :class:`~repro.resilience.SweepJournal`
(keyed ``(scenario_id, float(index))`` via its generic outcome API) so
a killed campaign resumes where it stopped; ``workers > 1`` fans
scenarios over a spawn-context process pool with the parent as the
single journal writer, mirroring
:class:`~repro.sim.parallel.ParallelSweepRunner`.  Every failing
scenario is captured as a self-contained replay bundle (and optionally
shrunk to a minimal reproducer) the moment the campaign sees it.

The campaign manifest (``campaign_manifest.json``) is deliberately
free of wall-clock anything: the same campaign seed must produce a
byte-identical manifest across runs, worker counts and machines --
that file *is* the determinism contract the tests pin down.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from multiprocessing import get_context
from pathlib import Path
from typing import Callable

from repro.chaos.replay import write_bundle
from repro.chaos.runner import ScenarioOutcome, run_scenario
from repro.chaos.scenario import (
    ChaosScenario,
    ScenarioSpace,
    generate_scenarios,
    injected_deadlock_scenario,
)
from repro.chaos.shrink import shrink_scenario, write_minimal
from repro.resilience.checkpoint import SweepJournal
from repro.resilience.supervisor import PointSupervisor, SupervisorConfig

#: test-only hook mirroring repro.sim.parallel's point hooks: wedge the
#: worker that picks up a matching scenario_id (or "*"), honouring the
#: shared REPRO_TEST_FAULT_ONCE_FILE claim for wedge-once-then-recover.
WEDGE_SCENARIO_ENV = "REPRO_TEST_WEDGE_SCENARIO"

CAMPAIGN_SCHEMA = 1

#: manifest filename inside the campaign output directory.
MANIFEST_NAME = "campaign_manifest.json"
JOURNAL_NAME = "campaign.journal.jsonl"

#: Static outcome details for supervised/fleet infrastructure failures.
#: Deliberately wall-clock-free and shared between the single-host
#: supervisor path and the fleet path: the campaign manifest must stay
#: byte-identical across runs, hosts and backends.
TIMEOUT_DETAIL = (
    "reaped by supervisor: wall-clock deadline or "
    "heartbeat staleness exceeded"
)
CRASH_DETAIL = "worker lost under supervision"


@dataclass(frozen=True)
class CampaignConfig:
    """One chaos campaign: what to generate, where to put the evidence."""

    output_dir: Path
    seed: int = 0
    count: int = 20
    space: ScenarioSpace = field(default_factory=ScenarioSpace)
    include_standalone: bool = True
    #: append the guaranteed-deadlock scenario (CI's capture-path probe).
    inject_deadlock: bool = False
    workers: int = 1
    resume: bool = False
    #: delta-debug every (non-crash) failure down to a minimal reproducer.
    shrink_failures: bool = False
    #: write one JSONL telemetry trace per scenario under ``traces/``.
    traces: bool = True
    #: run scenarios under a PointSupervisor (heartbeats, deadlines,
    #: reaping); a reaped scenario becomes a terminal "timeout"/"crash"
    #: outcome -- chaos outcomes are data, so nothing is retried.
    supervisor: SupervisorConfig | None = None
    #: a live :class:`repro.service.ServiceServer`; scenarios are
    #: leased to its remote workers.  Unlike the single-host supervised
    #: path, *infrastructure* crashes (a killed or wedged fleet worker)
    #: are retried up to quarantine, so a chaotic fleet converges on
    #: the same manifest a healthy single-host run produces.
    fleet: object | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be at least 1")

    def count_total(self) -> int:
        """Scenarios per run, the injected-deadlock probe included."""
        return self.count + (1 if self.inject_deadlock else 0)


@dataclass
class CampaignResult:
    """Everything a caller needs after :func:`run_campaign` returns."""

    scenarios: list[ChaosScenario]
    outcomes: dict[int, ScenarioOutcome]
    #: failing scenarios, in index order: (scenario, outcome, bundle path).
    failures: list[tuple[ChaosScenario, ScenarioOutcome, Path]]
    manifest_path: Path
    resumed: int = 0

    @property
    def crashed(self) -> list[tuple[ChaosScenario, ScenarioOutcome, Path]]:
        """Harness-level failures (the only ones that fail a campaign)."""
        return [entry for entry in self.failures if entry[1].status == "crash"]

    def status_totals(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for outcome in self.outcomes.values():
            totals[outcome.status] = totals.get(outcome.status, 0) + 1
        return dict(sorted(totals.items()))


def campaign_scenarios(config: CampaignConfig) -> list[ChaosScenario]:
    """The campaign's full scenario list (pure; shared with resume)."""
    scenarios = generate_scenarios(
        config.seed,
        config.count,
        space=config.space,
        include_standalone=config.include_standalone,
    )
    if config.inject_deadlock:
        scenarios.append(
            injected_deadlock_scenario(len(scenarios), config.space)
        )
    return scenarios


def _trace_path(config: CampaignConfig, scenario: ChaosScenario) -> str | None:
    if not config.traces:
        return None
    return str(
        Path(config.output_dir) / "traces" / f"{scenario.scenario_id}.jsonl"
    )


def _run_serial(
    config: CampaignConfig,
    todo: list[ChaosScenario],
    journal: SweepJournal,
    outcomes: dict[int, ScenarioOutcome],
    progress: Callable[[str], None] | None,
) -> None:
    for scenario in todo:
        outcome = run_scenario(scenario, _trace_path(config, scenario))
        journal.record_outcome(
            scenario.scenario_id, float(scenario.index), outcome.as_dict()
        )
        outcomes[scenario.index] = outcome
        if progress is not None:
            progress(
                f"[{scenario.index + 1}/{config.count_total()}] "
                f"{scenario.scenario_id} ({scenario.kind}, "
                f"{scenario.algorithm}) -> {outcome.status}"
            )


def _maybe_wedge_scenario(scenario: ChaosScenario) -> None:
    wedge = os.environ.get(WEDGE_SCENARIO_ENV)
    if not wedge or wedge not in ("*", scenario.scenario_id):
        return
    from repro.sim.parallel import _claim_once_file

    if not _claim_once_file():
        return
    while True:  # no heartbeats: the supervisor must reap us
        time.sleep(3600)


def _supervised_scenario(payload, heartbeat) -> ScenarioOutcome:
    """The supervisor's task runner: payload is (scenario, trace_path)."""
    scenario, trace_path = payload
    _maybe_wedge_scenario(scenario)
    return run_scenario(scenario, trace_path, heartbeat=heartbeat)


def _run_supervised(
    config: CampaignConfig,
    todo: list[ChaosScenario],
    journal: SweepJournal,
    outcomes: dict[int, ScenarioOutcome],
    progress: Callable[[str], None] | None,
) -> None:
    """Fan scenarios over supervised workers; reaped ones become data.

    Unlike :func:`_run_pool`, a worker that dies takes only its own
    scenario down (the pool replenishes), and a worker that *wedges*
    is reaped at the configured deadline/staleness bound instead of
    hanging the campaign forever.  Outcome details for supervised
    failures are deliberately static strings: the campaign manifest
    must stay byte-identical across runs, and wall-clock-flavoured
    reap details would break that contract.
    """
    by_index = {scenario.index: scenario for scenario in todo}
    supervisor = PointSupervisor(
        workers=min(config.workers, len(todo)),
        runner=_supervised_scenario,
        config=config.supervisor,
        resubmit_crashed=False,
    )
    with supervisor:
        for scenario in todo:
            supervisor.submit(
                scenario.index, (scenario, _trace_path(config, scenario))
            )
        while supervisor.outstanding:
            event = supervisor.next_event()
            scenario = by_index[event.task_id]
            if event.kind == "result":
                outcome = event.result
            elif event.kind == "timeout":
                outcome = ScenarioOutcome(
                    scenario_id=scenario.scenario_id,
                    status="timeout",
                    detail=TIMEOUT_DETAIL,
                )
            else:  # worker-lost
                outcome = ScenarioOutcome(
                    scenario_id=scenario.scenario_id,
                    status="crash",
                    detail=CRASH_DETAIL,
                )
            journal.record_outcome(
                scenario.scenario_id, float(scenario.index), outcome.as_dict()
            )
            outcomes[scenario.index] = outcome
            if progress is not None:
                progress(
                    f"[{len(outcomes)}/{config.count_total()}] "
                    f"{scenario.scenario_id} ({scenario.kind}, "
                    f"{scenario.algorithm}) -> {outcome.status}"
                )


def _run_fleet(
    config: CampaignConfig,
    todo: list[ChaosScenario],
    journal: SweepJournal,
    outcomes: dict[int, ScenarioOutcome],
    progress: Callable[[str], None] | None,
) -> None:
    """Lease scenarios to the connected remote fleet.

    Infrastructure failures are *retried* here (``resubmit_crashed``):
    losing a fleet worker mid-scenario is coordinator weather, not
    scenario data, so the re-run's deterministic outcome lands instead
    and the manifest matches a healthy single-host run byte for byte.
    Only a scenario that crashes workers all the way to quarantine
    becomes a terminal ``timeout``/``crash`` outcome -- with the same
    static detail strings the single-host supervised path writes.
    """
    from repro.service.coordinator import FleetCoordinator

    by_index = {scenario.index: scenario for scenario in todo}
    #: last infrastructure failure kind per scenario, so quarantine
    #: can classify the terminal outcome (wedge -> timeout, death ->
    #: crash) like the single-host path does.
    last_kind: dict[int, str] = {}
    coordinator = FleetCoordinator(
        config.fleet,
        config=config.supervisor or SupervisorConfig(),
        resubmit_crashed=True,
        task_kind="chaos-scenario",
    )
    with coordinator:
        for scenario in todo:
            coordinator.submit(
                scenario.index, (scenario, _trace_path(config, scenario))
            )
        while coordinator.outstanding:
            event = coordinator.next_event()
            scenario = by_index[event.task_id]
            if event.kind in ("worker-lost", "timeout"):
                # Intermediate: the coordinator re-leases (or follows
                # up with "quarantined").  Nothing is journalled -- the
                # journal records scenario outcomes, not weather.
                last_kind[scenario.index] = event.kind
                if progress is not None:
                    progress(
                        f"{scenario.scenario_id} {event.kind} "
                        f"(crash {event.crashes}); re-leasing"
                    )
                continue
            if event.kind == "result":
                outcome = event.result
            elif last_kind.get(scenario.index) == "timeout":
                outcome = ScenarioOutcome(
                    scenario_id=scenario.scenario_id,
                    status="timeout",
                    detail=TIMEOUT_DETAIL,
                )
            else:  # quarantined after repeated worker deaths
                outcome = ScenarioOutcome(
                    scenario_id=scenario.scenario_id,
                    status="crash",
                    detail=CRASH_DETAIL,
                )
            journal.record_outcome(
                scenario.scenario_id, float(scenario.index), outcome.as_dict()
            )
            outcomes[scenario.index] = outcome
            if progress is not None:
                progress(
                    f"[{len(outcomes)}/{config.count_total()}] "
                    f"{scenario.scenario_id} ({scenario.kind}, "
                    f"{scenario.algorithm}) -> {outcome.status}"
                )


def _run_pool(
    config: CampaignConfig,
    todo: list[ChaosScenario],
    journal: SweepJournal,
    outcomes: dict[int, ScenarioOutcome],
    progress: Callable[[str], None] | None,
) -> None:
    """Fan scenarios over spawn workers; the parent owns the journal.

    A worker that dies (or a scenario whose pickle round-trip breaks)
    surfaces as that scenario's ``crash`` outcome rather than killing
    the campaign: chaos harnesses must outlive the chaos.
    """
    pool = ProcessPoolExecutor(
        max_workers=config.workers, mp_context=get_context("spawn")
    )
    try:
        pending = {
            pool.submit(
                run_scenario, scenario, _trace_path(config, scenario)
            ): scenario
            for scenario in todo
        }
        while pending:
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                scenario = pending.pop(future)
                try:
                    outcome = future.result()
                except Exception as error:
                    outcome = ScenarioOutcome(
                        scenario_id=scenario.scenario_id,
                        status="crash",
                        detail=f"worker failure: {type(error).__name__}: {error}",
                    )
                journal.record_outcome(
                    scenario.scenario_id,
                    float(scenario.index),
                    outcome.as_dict(),
                )
                outcomes[scenario.index] = outcome
                if progress is not None:
                    progress(
                        f"[{len(outcomes)}/{config.count_total()}] "
                        f"{scenario.scenario_id} ({scenario.kind}, "
                        f"{scenario.algorithm}) -> {outcome.status}"
                    )
    finally:
        pool.shutdown(wait=True, cancel_futures=True)


def run_campaign(
    config: CampaignConfig,
    progress: Callable[[str], None] | None = None,
) -> CampaignResult:
    """Generate, run, checkpoint, capture and report one campaign."""
    output_dir = Path(config.output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    scenarios = campaign_scenarios(config)
    journal = SweepJournal(output_dir / JOURNAL_NAME)
    outcomes: dict[int, ScenarioOutcome] = {}
    resumed = 0
    todo: list[ChaosScenario] = []
    for scenario in scenarios:
        if config.resume:
            cached = journal.outcome_for(
                scenario.scenario_id, float(scenario.index)
            )
            if cached is not None:
                outcomes[scenario.index] = ScenarioOutcome.from_dict(cached)
                resumed += 1
                continue
        todo.append(scenario)
    if progress is not None and resumed:
        progress(f"resumed {resumed} scenario(s) from the journal")
    # The lock marks this process as the campaign journal's single
    # writer (the coordinator under a fleet, the parent otherwise);
    # a SIGKILLed run leaves a stale lock that a same-host restart
    # takes over after the dead-pid check.
    with journal.lock():
        if config.fleet is not None and todo:
            _run_fleet(config, todo, journal, outcomes, progress)
        elif config.supervisor is not None and todo:
            _run_supervised(config, todo, journal, outcomes, progress)
        elif config.workers > 1 and len(todo) > 1:
            _run_pool(config, todo, journal, outcomes, progress)
        else:
            _run_serial(config, todo, journal, outcomes, progress)

    failures: list[tuple[ChaosScenario, ScenarioOutcome, Path]] = []
    campaign_info = {
        "seed": config.seed,
        "count": config.count,
        "include_standalone": config.include_standalone,
        "inject_deadlock": config.inject_deadlock,
    }
    for scenario in scenarios:
        outcome = outcomes[scenario.index]
        if not outcome.failed:
            continue
        bundle = write_bundle(
            output_dir / "bundles",
            scenario,
            outcome,
            trace_path=_trace_path(config, scenario),
            campaign=campaign_info,
        )
        # Crashes and supervised timeouts have nothing to shrink: the
        # scenario never produced a simulation-derived failure to
        # preserve while minimizing.
        if config.shrink_failures and outcome.status not in (
            "crash",
            "timeout",
        ):
            if progress is not None:
                progress(f"shrinking {scenario.scenario_id} ...")
            minimal, steps = shrink_scenario(
                scenario, target_status=outcome.status
            )
            write_minimal(bundle.parent, minimal, steps, outcome.status)
        failures.append((scenario, outcome, bundle))
        if progress is not None:
            progress(
                f"captured {scenario.scenario_id} ({outcome.status}) -> "
                f"{bundle}"
            )
    manifest_path = _write_manifest(
        output_dir, config, scenarios, outcomes, failures
    )
    return CampaignResult(
        scenarios=scenarios,
        outcomes=outcomes,
        failures=failures,
        manifest_path=manifest_path,
        resumed=resumed,
    )


def _write_manifest(
    output_dir: Path,
    config: CampaignConfig,
    scenarios: list[ChaosScenario],
    outcomes: dict[int, ScenarioOutcome],
    failures: list[tuple[ChaosScenario, ScenarioOutcome, Path]],
) -> Path:
    """The campaign's deterministic summary (paths relative to it)."""
    bundle_by_index = {
        scenario.index: bundle for scenario, _, bundle in failures
    }
    entries = []
    for scenario in scenarios:
        outcome = outcomes[scenario.index]
        bundle = bundle_by_index.get(scenario.index)
        entries.append({
            "index": scenario.index,
            "scenario_id": scenario.scenario_id,
            "scenario_digest": scenario.digest(),
            "kind": scenario.kind,
            "algorithm": scenario.algorithm,
            "status": outcome.status,
            "outcome_digest": outcome.digest(),
            "trace": (
                f"traces/{scenario.scenario_id}.jsonl"
                if config.traces
                else None
            ),
            "bundle": (
                str(bundle.relative_to(output_dir))
                if bundle is not None
                else None
            ),
        })
    totals: dict[str, int] = {}
    for outcome in outcomes.values():
        totals[outcome.status] = totals.get(outcome.status, 0) + 1
    manifest = {
        "kind": "chaos-campaign",
        "schema": CAMPAIGN_SCHEMA,
        "seed": config.seed,
        "count": config.count,
        "include_standalone": config.include_standalone,
        "inject_deadlock": config.inject_deadlock,
        "scenarios": entries,
        "totals": dict(sorted(totals.items())),
    }
    if config.supervisor is not None:
        # Config plus outcome-derived counts only -- never the
        # supervisor's live wall-clock stats, which would break the
        # byte-identical manifest contract.
        manifest["supervisor"] = {
            **config.supervisor.as_dict(),
            "timeouts": totals.get("timeout", 0),
            "worker_crashes": totals.get("crash", 0),
        }
    path = output_dir / MANIFEST_NAME
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return path
