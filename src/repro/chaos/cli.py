"""The ``repro chaos`` sub-CLI: run / replay / shrink / report.

Usage::

    repro-experiments chaos run --seed 7 --count 20 --output-dir chaos-out
    repro-experiments chaos run --count 8 --inject-deadlock --preset smoke \\
        --output-dir ci-chaos
    repro-experiments chaos replay ci-chaos/bundles/injected-deadlock/bundle.json
    repro-experiments chaos shrink ci-chaos/bundles/injected-deadlock/bundle.json
    repro-experiments chaos report ci-chaos

Exit codes: ``run`` fails (1) only on *unexplained* failures -- a
scenario whose harness crashed.  Invariant violations, deadlocks and
drain failures are the campaign's product: they exit 0 and leave
replay bundles behind.  ``replay`` exits 0 iff the recorded outcome
was reproduced digest-exactly.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.chaos.campaign import (
    CampaignConfig,
    MANIFEST_NAME,
    run_campaign,
)
from repro.chaos.replay import load_bundle, replay_bundle
from repro.chaos.scenario import (
    ChaosScenario,
    ScenarioSpace,
    active_fault_dimensions,
)
from repro.chaos.shrink import shrink_scenario, write_minimal
from repro.resilience.supervisor import SupervisorConfig


def _space(preset: str) -> ScenarioSpace:
    return ScenarioSpace.smoke() if preset == "smoke" else ScenarioSpace()


def _progress(args: argparse.Namespace):
    if args.quiet:
        return None
    return lambda message: print(message, file=sys.stderr, flush=True)


def _cmd_run(args: argparse.Namespace) -> int:
    supervisor = None
    if args.point_timeout is not None:
        if args.point_timeout <= 0:
            raise SystemExit("--point-timeout must be positive")
        supervisor = SupervisorConfig(
            point_timeout_s=args.point_timeout,
            heartbeat_stale_s=args.point_timeout,
        )
    config = CampaignConfig(
        output_dir=args.output_dir,
        seed=args.seed,
        count=args.count,
        space=_space(args.preset),
        include_standalone=not args.no_standalone,
        inject_deadlock=args.inject_deadlock,
        workers=args.workers,
        resume=args.resume,
        shrink_failures=args.shrink,
        traces=not args.no_traces,
        supervisor=supervisor,
    )
    result = run_campaign(config, progress=_progress(args))
    totals = ", ".join(
        f"{status}={count}" for status, count in result.status_totals().items()
    )
    print(
        f"campaign seed={config.seed}: {len(result.scenarios)} scenario(s), "
        f"{totals or 'nothing ran'}"
    )
    for scenario, outcome, bundle in result.failures:
        print(f"  {scenario.scenario_id}: {outcome.status} -> {bundle}")
    print(f"manifest: {result.manifest_path}")
    crashed = result.crashed
    if crashed:
        print(
            f"{len(crashed)} scenario(s) crashed the harness "
            "(unexplained failures)",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    result = replay_bundle(args.bundle, trace_path=args.trace)
    print(result.describe())
    return 0 if result.reproduced else 1


def _cmd_shrink(args: argparse.Namespace) -> int:
    bundle_path = Path(args.bundle)
    record = load_bundle(bundle_path)
    scenario = ChaosScenario.from_dict(record["scenario"])
    target = record["outcome"]["status"]
    progress = _progress(args)
    if progress is not None:
        progress(f"shrinking {scenario.scenario_id} (target: {target})")
    minimal, steps = shrink_scenario(
        scenario, target_status=target, progress=progress
    )
    directory = (
        bundle_path if bundle_path.is_dir() else bundle_path.parent
    )
    path = write_minimal(directory, minimal, steps, target)
    before = active_fault_dimensions(scenario)
    after = active_fault_dimensions(minimal)
    print(
        f"{scenario.scenario_id}: {len(before)} active dimension(s) "
        f"{list(before)} -> {len(after)} {list(after)}"
    )
    print(f"minimal reproducer: {path}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    manifest_path = Path(args.output_dir) / MANIFEST_NAME
    if not manifest_path.exists():
        print(f"no {MANIFEST_NAME} under {args.output_dir}", file=sys.stderr)
        return 1
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    print(
        f"chaos campaign seed={manifest['seed']} "
        f"({len(manifest['scenarios'])} scenario(s))"
    )
    width = max(
        (len(e["scenario_id"]) for e in manifest["scenarios"]), default=10
    )
    for entry in manifest["scenarios"]:
        marker = " " if entry["status"] == "ok" else "!"
        print(
            f"  {marker} {entry['scenario_id']:<{width}}  "
            f"{entry['kind']:<10} {entry['algorithm']:<12} "
            f"{entry['status']}"
        )
    totals = ", ".join(
        f"{status}={count}" for status, count in manifest["totals"].items()
    )
    print(f"totals: {totals}")
    failures = [e for e in manifest["scenarios"] if e["status"] != "ok"]
    for entry in failures:
        if entry["bundle"]:
            print(f"  bundle: {Path(args.output_dir) / entry['bundle']}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments chaos",
        description=(
            "Randomized fault campaigns with deterministic replay bundles "
            "and automatic failure shrinking (see docs/chaos.md)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="generate and run a seeded campaign")
    run_p.add_argument("--seed", type=int, default=0, help="campaign seed")
    run_p.add_argument(
        "--count", type=int, default=20, help="scenarios to generate"
    )
    run_p.add_argument(
        "--output-dir",
        type=Path,
        required=True,
        help="campaign directory (journal, traces/, bundles/, manifest)",
    )
    run_p.add_argument(
        "--preset",
        choices=("fast", "smoke"),
        default="fast",
        help="scenario sizing: fast=default tiny scenarios, smoke=CI-tiny",
    )
    run_p.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="run scenarios in a spawn-context process pool of N workers; "
             "per-scenario outcomes are bitwise identical to a serial run",
    )
    run_p.add_argument(
        "--resume",
        action="store_true",
        help="skip scenarios already completed in the campaign journal",
    )
    run_p.add_argument(
        "--point-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="run scenarios supervised: a worker wedged past SECONDS "
             "of wall clock (or heartbeat silence) is reaped and its "
             "scenario recorded as a 'timeout' outcome instead of "
             "hanging the campaign",
    )
    run_p.add_argument(
        "--inject-deadlock",
        action="store_true",
        help="append the guaranteed-deadlock scenario "
             "('injected-deadlock'), proving the capture path end to end",
    )
    run_p.add_argument(
        "--shrink",
        action="store_true",
        help="delta-debug every captured failure to a minimal reproducer",
    )
    run_p.add_argument(
        "--no-standalone",
        action="store_true",
        help="generate timing-model scenarios only",
    )
    run_p.add_argument(
        "--no-traces",
        action="store_true",
        help="skip per-scenario telemetry traces (bundles lose their "
             "trace tails)",
    )
    run_p.add_argument(
        "--quiet", action="store_true", help="suppress progress lines"
    )
    run_p.set_defaults(func=_cmd_run)

    replay_p = sub.add_parser(
        "replay", help="re-execute a bundle and verify exact reproduction"
    )
    replay_p.add_argument(
        "bundle", help="path to a bundle.json (or its directory)"
    )
    replay_p.add_argument(
        "--trace",
        type=Path,
        default=None,
        help="also write the replay's telemetry trace here",
    )
    replay_p.set_defaults(func=_cmd_replay)

    shrink_p = sub.add_parser(
        "shrink", help="minimize a bundle's scenario to minimal.json"
    )
    shrink_p.add_argument(
        "bundle", help="path to a bundle.json (or its directory)"
    )
    shrink_p.add_argument(
        "--quiet", action="store_true", help="suppress progress lines"
    )
    shrink_p.set_defaults(func=_cmd_shrink)

    report_p = sub.add_parser(
        "report", help="summarize a campaign directory's manifest"
    )
    report_p.add_argument(
        "output_dir", help="campaign directory holding campaign_manifest.json"
    )
    report_p.set_defaults(func=_cmd_report)

    serve_p = sub.add_parser(
        "serve",
        help="run a campaign over a remote worker fleet "
             "(forwards to 'repro-experiments serve chaos'; "
             "see docs/service.md)",
        add_help=False,
    )
    serve_p.add_argument("rest", nargs=argparse.REMAINDER)
    serve_p.set_defaults(func=_cmd_serve)
    return parser


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.cli import main as service_main

    return service_main(["serve", "chaos", *args.rest])


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "workers", 1) < 1:
        raise SystemExit("--workers must be at least 1")
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
