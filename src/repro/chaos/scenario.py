"""Seeded random fault scenarios: the campaign's unit of work.

A :class:`ChaosScenario` is a *complete, self-contained* description
of one adversarial run -- which model (timing torus or standalone
matching), which algorithm, which traffic, which fault schedule, and
every seed involved.  Scenarios are generated from a single campaign
seed by :func:`generate_scenarios`, so the same seed always produces
the same scenario list; and because a scenario carries everything the
runner needs, a scenario serialized into a replay bundle re-executes
bitwise identically months later.

Identity is content-addressed: :meth:`ChaosScenario.digest` hashes the
canonical JSON form, and the default ``scenario_id`` embeds the digest
prefix so two campaigns can never silently conflate different
scenarios that share an index.
"""

from __future__ import annotations

import hashlib
import json
import math
import random
from dataclasses import dataclass, fields, replace

from repro.core.registry import STANDALONE_ALGORITHMS, TIMING_ALGORITHMS
from repro.resilience.faults import FaultConfig
from repro.sim.config import DESTINATION_PATTERNS

SCENARIO_KINDS = ("timing", "standalone")

#: fixed name of the deliberately-injected deadlock scenario, so CI can
#: replay ``bundles/injected-deadlock/bundle.json`` without globbing.
INJECTED_DEADLOCK_NAME = "injected-deadlock"


def canonical_json(value) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def _encode_cycles(value: float):
    """JSON-safe stall duration (``inf`` is a legal permanent stall)."""
    return "inf" if math.isinf(value) else value


def _decode_cycles(value) -> float:
    return math.inf if value == "inf" else float(value)


@dataclass(frozen=True)
class ChaosScenario:
    """One adversarial run, fully specified (seeds included).

    The fault dimensions mirror :class:`~repro.resilience.FaultConfig`;
    a dimension left at its zero value is *inactive* (see
    :func:`active_fault_dimensions`), which is what the shrinker
    minimizes.  Timing-model dimensions (pattern, rate, torus size,
    cycle counts, watchdog) are ignored by standalone scenarios and
    vice versa (load, occupancy, trials), but every field always
    serializes so the digest never depends on the kind.
    """

    index: int
    kind: str
    algorithm: str
    seed: int
    name: str = ""
    # -- fault dimensions (zero value = inactive) -------------------------
    fault_seed: int = 0
    flit_drop_rate: float = 0.0
    flit_corrupt_rate: float = 0.0
    grant_suppression_rate: float = 0.0
    grant_misroute_rate: float = 0.0
    stall_node: int | None = None
    stall_start_cycle: float = 0.0
    stall_cycles: float = 0.0
    # -- timing-model dimensions ------------------------------------------
    pattern: str = "uniform"
    injection_rate: float = 0.01
    width: int = 2
    height: int = 2
    warmup_cycles: int = 300
    measure_cycles: int = 1500
    watchdog_window: float = 400.0
    remediate: bool = False
    drain_budget: float = 20_000.0
    # -- standalone-model dimensions --------------------------------------
    load: int = 16
    occupancy: float = 0.0
    trials: int = 200

    def __post_init__(self) -> None:
        if self.kind not in SCENARIO_KINDS:
            raise ValueError(f"kind {self.kind!r} not in {SCENARIO_KINDS}")

    @property
    def scenario_id(self) -> str:
        """Stable handle: the explicit name, or index + digest prefix."""
        return self.name or f"s{self.index:03d}-{self.digest()[:8]}"

    def fault_config(self) -> FaultConfig | None:
        """The scenario's fault schedule; None when no dimension is active."""
        if not active_fault_dimensions(self):
            return None
        return FaultConfig(
            seed=self.fault_seed,
            flit_drop_rate=self.flit_drop_rate,
            flit_corrupt_rate=self.flit_corrupt_rate,
            grant_suppression_rate=self.grant_suppression_rate,
            grant_misroute_rate=self.grant_misroute_rate,
            stall_node=self.stall_node,
            stall_start_cycle=self.stall_start_cycle,
            stall_cycles=self.stall_cycles,
        )

    def as_dict(self) -> dict:
        """Canonical JSON-serializable form (bundles, manifests, digests)."""
        record = {f.name: getattr(self, f.name) for f in fields(self)}
        record["stall_cycles"] = _encode_cycles(self.stall_cycles)
        return record

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosScenario":
        """Inverse of :meth:`as_dict` (replay-bundle loading)."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"scenario record has unknown fields {sorted(unknown)} "
                "(bundle from a newer schema?)"
            )
        kwargs = dict(data)
        if "stall_cycles" in kwargs:
            kwargs["stall_cycles"] = _decode_cycles(kwargs["stall_cycles"])
        return cls(**kwargs)

    def digest(self) -> str:
        """Content hash of the full scenario (identity across runs)."""
        return hashlib.sha256(
            canonical_json(self.as_dict()).encode()
        ).hexdigest()


#: (dimension name, predicate) -- a scenario's *active* fault dimensions.
_FAULT_DIMENSIONS = (
    ("flit-drop", lambda s: s.flit_drop_rate > 0.0),
    ("flit-corrupt", lambda s: s.flit_corrupt_rate > 0.0),
    ("grant-suppression", lambda s: s.grant_suppression_rate > 0.0),
    ("grant-misroute", lambda s: s.grant_misroute_rate > 0.0),
    ("stall", lambda s: s.stall_node is not None and s.stall_cycles > 0),
)


def active_fault_dimensions(scenario: ChaosScenario) -> tuple[str, ...]:
    """Names of the fault dimensions this scenario actually exercises."""
    return tuple(
        name for name, active in _FAULT_DIMENSIONS if active(scenario)
    )


def fault_schedule_digest(scenario: ChaosScenario) -> str | None:
    """Content hash of the fault schedule alone (None when fault-free).

    The schedule is fully determined by the fault dimensions plus the
    fault seed, so hashing the config hashes the schedule.
    """
    if not active_fault_dimensions(scenario):
        return None
    payload = {
        "fault_seed": scenario.fault_seed,
        "flit_drop_rate": scenario.flit_drop_rate,
        "flit_corrupt_rate": scenario.flit_corrupt_rate,
        "grant_suppression_rate": scenario.grant_suppression_rate,
        "grant_misroute_rate": scenario.grant_misroute_rate,
        "stall_node": scenario.stall_node,
        "stall_start_cycle": scenario.stall_start_cycle,
        "stall_cycles": _encode_cycles(scenario.stall_cycles),
    }
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


@dataclass(frozen=True)
class ScenarioSpace:
    """The distribution :func:`generate_scenarios` samples from.

    The defaults keep scenarios small (tiny tori, short windows) so a
    20-scenario campaign finishes in tens of seconds; :meth:`smoke` is
    smaller still, for CI.  Fault rates are drawn uniformly up to the
    ``max_*`` bounds, and each dimension is independently active with
    probability ``dimension_rate`` -- most scenarios exercise one or
    two dimensions, some none (clean controls), some several.
    """

    timing_algorithms: tuple[str, ...] = TIMING_ALGORITHMS
    standalone_algorithms: tuple[str, ...] = STANDALONE_ALGORITHMS
    patterns: tuple[str, ...] = DESTINATION_PATTERNS
    torus_sizes: tuple[tuple[int, int], ...] = ((2, 2), (3, 3))
    injection_rate_range: tuple[float, float] = (0.002, 0.02)
    warmup_cycles: int = 300
    measure_cycles: int = 1500
    watchdog_window: float = 400.0
    drain_budget: float = 20_000.0
    loads: tuple[int, ...] = (8, 16, 32)
    occupancies: tuple[float, ...] = (0.0, 0.25, 0.5)
    trials: int = 200
    standalone_fraction: float = 0.25
    dimension_rate: float = 0.45
    max_flit_drop_rate: float = 5e-3
    max_flit_corrupt_rate: float = 5e-3
    max_suppression_rate: float = 0.05
    max_misroute_rate: float = 0.05
    max_stall_cycles: float = 400.0
    remediate_fraction: float = 0.5

    @classmethod
    def smoke(cls) -> "ScenarioSpace":
        """The CI preset: 2x2 only, short windows, few trials."""
        return cls(
            torus_sizes=((2, 2),),
            warmup_cycles=200,
            measure_cycles=800,
            watchdog_window=300.0,
            drain_budget=10_000.0,
            trials=80,
        )


def _draw_fault_dimensions(
    rng: random.Random, space: ScenarioSpace, standalone: bool, num_nodes: int
) -> dict:
    """One scenario's fault dimensions (only random stalls are finite --
    permanent stalls are reserved for the injected-deadlock scenario)."""
    dims: dict = {"fault_seed": rng.randrange(1 << 30)}
    if not standalone:
        if rng.random() < space.dimension_rate:
            dims["flit_drop_rate"] = round(
                rng.uniform(0.0, space.max_flit_drop_rate), 6
            )
        if rng.random() < space.dimension_rate:
            dims["flit_corrupt_rate"] = round(
                rng.uniform(0.0, space.max_flit_corrupt_rate), 6
            )
    if rng.random() < space.dimension_rate:
        dims["grant_suppression_rate"] = round(
            rng.uniform(0.0, space.max_suppression_rate), 6
        )
    if not standalone and rng.random() < space.dimension_rate:
        dims["grant_misroute_rate"] = round(
            rng.uniform(0.0, space.max_misroute_rate), 6
        )
    if rng.random() < space.dimension_rate:
        dims["stall_node"] = rng.randrange(num_nodes)
        if standalone:
            # The standalone stall window is measured in trial indices.
            dims["stall_start_cycle"] = float(rng.randrange(space.trials // 2))
            dims["stall_cycles"] = float(
                rng.randrange(1, max(2, space.trials // 4))
            )
        else:
            horizon = space.warmup_cycles + space.measure_cycles
            dims["stall_start_cycle"] = round(rng.uniform(0.0, horizon / 2), 1)
            dims["stall_cycles"] = round(
                rng.uniform(50.0, space.max_stall_cycles), 1
            )
    return dims


def generate_scenarios(
    campaign_seed: int,
    count: int,
    space: ScenarioSpace | None = None,
    include_standalone: bool = True,
) -> list[ChaosScenario]:
    """The campaign's scenario list -- a pure function of its arguments.

    Everything random is drawn from one ``random.Random(campaign_seed)``
    in a fixed order, so the same (seed, count, space,
    include_standalone) always yields the identical list: that is what
    makes campaign resume, cross-worker determinism and months-later
    replay possible.
    """
    if count < 1:
        raise ValueError("count must be at least 1")
    space = space if space is not None else ScenarioSpace()
    rng = random.Random(campaign_seed)
    scenarios = []
    for index in range(count):
        standalone = (
            include_standalone and rng.random() < space.standalone_fraction
        )
        if standalone:
            faults = _draw_fault_dimensions(rng, space, True, num_nodes=1)
            scenarios.append(
                ChaosScenario(
                    index=index,
                    kind="standalone",
                    algorithm=rng.choice(space.standalone_algorithms),
                    seed=rng.randrange(1 << 30),
                    load=rng.choice(space.loads),
                    occupancy=rng.choice(space.occupancies),
                    trials=space.trials,
                    **faults,
                )
            )
        else:
            width, height = rng.choice(space.torus_sizes)
            faults = _draw_fault_dimensions(
                rng, space, False, num_nodes=width * height
            )
            low, high = space.injection_rate_range
            scenarios.append(
                ChaosScenario(
                    index=index,
                    kind="timing",
                    algorithm=rng.choice(space.timing_algorithms),
                    seed=rng.randrange(1 << 30),
                    pattern=rng.choice(space.patterns),
                    injection_rate=round(rng.uniform(low, high), 6),
                    width=width,
                    height=height,
                    warmup_cycles=space.warmup_cycles,
                    measure_cycles=space.measure_cycles,
                    watchdog_window=space.watchdog_window,
                    remediate=rng.random() < space.remediate_fraction,
                    drain_budget=space.drain_budget,
                    **faults,
                )
            )
    return scenarios


def injected_deadlock_scenario(
    index: int, space: ScenarioSpace | None = None
) -> ChaosScenario:
    """A scenario guaranteed to deadlock: router 0 stalled forever.

    Used by CI to prove the failure-capture path end to end: the
    campaign must classify it as a deadlock, write its replay bundle,
    and ``repro chaos replay`` must reproduce it from that bundle.
    ``remediate=True`` also exercises the watchdog's recovery kick --
    which cannot cure a stalled arbiter, so the trace records a
    ``deadlocked`` verdict, not a lost wake-up.
    """
    space = space if space is not None else ScenarioSpace()
    return ChaosScenario(
        index=index,
        kind="timing",
        algorithm="SPAA-base",
        seed=7,
        name=INJECTED_DEADLOCK_NAME,
        fault_seed=7,
        stall_node=0,
        stall_start_cycle=0.0,
        stall_cycles=math.inf,
        pattern="uniform",
        injection_rate=0.01,
        width=2,
        height=2,
        warmup_cycles=space.warmup_cycles,
        measure_cycles=space.measure_cycles,
        watchdog_window=space.watchdog_window,
        remediate=True,
        drain_budget=space.drain_budget,
    )


def disable_dimension(scenario: ChaosScenario, name: str) -> ChaosScenario:
    """A copy with one fault dimension turned off (shrinking primitive)."""
    if name == "flit-drop":
        return replace(scenario, flit_drop_rate=0.0)
    if name == "flit-corrupt":
        return replace(scenario, flit_corrupt_rate=0.0)
    if name == "grant-suppression":
        return replace(scenario, grant_suppression_rate=0.0)
    if name == "grant-misroute":
        return replace(scenario, grant_misroute_rate=0.0)
    if name == "stall":
        return replace(
            scenario, stall_node=None, stall_start_cycle=0.0, stall_cycles=0.0
        )
    raise ValueError(f"unknown fault dimension {name!r}")
