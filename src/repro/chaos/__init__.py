"""Chaos campaign harness: randomized fault scenarios, deterministic
replay bundles, and automatic failure shrinking.

One campaign seed generates a reproducible list of adversarial
scenarios (:mod:`repro.chaos.scenario`) -- fault rates, stall
schedules, grant suppression, traffic patterns and algorithm choices
over both the timing torus and the standalone matching model.  The
campaign (:mod:`repro.chaos.campaign`) runs them with the invariant
checker and progress watchdog always armed, checkpointing into the
same :class:`~repro.resilience.SweepJournal` machinery the figure
sweeps use; every failure is captured as a self-contained replay
bundle (:mod:`repro.chaos.replay`) that re-executes bitwise
identically, and shrinks to a minimal reproducer
(:mod:`repro.chaos.shrink`).  ``repro-experiments chaos`` is the CLI
face (:mod:`repro.chaos.cli`); docs/chaos.md is the narrative.
"""

from repro.chaos.campaign import (
    CampaignConfig,
    CampaignResult,
    campaign_scenarios,
    run_campaign,
)
from repro.chaos.replay import (
    ReplayResult,
    load_bundle,
    replay_bundle,
    write_bundle,
)
from repro.chaos.runner import ScenarioOutcome, run_scenario
from repro.chaos.scenario import (
    ChaosScenario,
    INJECTED_DEADLOCK_NAME,
    ScenarioSpace,
    active_fault_dimensions,
    disable_dimension,
    fault_schedule_digest,
    generate_scenarios,
    injected_deadlock_scenario,
)
from repro.chaos.shrink import shrink_scenario, write_minimal

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "ChaosScenario",
    "INJECTED_DEADLOCK_NAME",
    "ReplayResult",
    "ScenarioOutcome",
    "ScenarioSpace",
    "active_fault_dimensions",
    "campaign_scenarios",
    "disable_dimension",
    "fault_schedule_digest",
    "generate_scenarios",
    "injected_deadlock_scenario",
    "load_bundle",
    "replay_bundle",
    "run_campaign",
    "run_scenario",
    "shrink_scenario",
    "write_bundle",
    "write_minimal",
]
