"""Executing one chaos scenario with the full resilience layer armed.

:func:`run_scenario` is a module-level function of picklable arguments
so campaign workers can call it across a spawn-context process
boundary, exactly like :func:`repro.sim.parallel.run_point_spec`.  It
never raises for a *failing* scenario -- invariant violations,
deadlocks and drain failures are the campaign's product, not its
errors -- and instead classifies every run into a
:class:`ScenarioOutcome` whose digest is deterministic: it hashes only
simulation-derived values (status, detail, metrics, resilience
counts), never wall-clock time or paths, so the same scenario digests
identically across runs, worker counts and machines.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field

from repro.chaos.scenario import ChaosScenario, canonical_json
from repro.obs.sink import JsonlSink
from repro.obs.telemetry import Telemetry
from repro.resilience.faults import FaultInjector
from repro.resilience.invariants import (
    ArbitrationInvariants,
    InvariantChecker,
    InvariantConfig,
)
from repro.resilience.watchdog import ProgressWatchdog, WatchdogConfig
from repro.sim.config import NetworkConfig, SimulationConfig, TrafficConfig
from repro.sim.standalone import StandaloneConfig, StandaloneRouterModel
from repro.sim.timing_model import NetworkSimulator

#: every status a scenario can end in; anything but "ok" writes a bundle.
#: "timeout" is parent-assigned: a supervised worker was reaped at its
#: wall-clock deadline or heartbeat-staleness bound (see
#: repro.resilience.supervisor) before the scenario could finish.
OUTCOME_STATUSES = (
    "ok",
    "invariant-violation",
    "deadlock",
    "drain-failed",
    "crash",
    "timeout",
)


@dataclass(frozen=True)
class ScenarioOutcome:
    """What one scenario run produced, in digest-stable form."""

    scenario_id: str
    status: str
    detail: str = ""
    metrics: dict = field(default_factory=dict)
    resilience: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.status not in OUTCOME_STATUSES:
            raise ValueError(
                f"status {self.status!r} not in {OUTCOME_STATUSES}"
            )

    @property
    def failed(self) -> bool:
        return self.status != "ok"

    def digest(self) -> str:
        """Content hash of everything simulation-derived (no wall time)."""
        return hashlib.sha256(
            canonical_json({
                "scenario_id": self.scenario_id,
                "status": self.status,
                "detail": self.detail,
                "metrics": self.metrics,
                "resilience": self.resilience,
            }).encode()
        ).hexdigest()

    def as_dict(self) -> dict:
        return {
            "scenario_id": self.scenario_id,
            "status": self.status,
            "detail": self.detail,
            "metrics": self.metrics,
            "resilience": self.resilience,
            "digest": self.digest(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioOutcome":
        """Inverse of :meth:`as_dict`; verifies the recorded digest."""
        outcome = cls(
            scenario_id=data["scenario_id"],
            status=data["status"],
            detail=data.get("detail", ""),
            metrics=data.get("metrics", {}),
            resilience=data.get("resilience", {}),
        )
        recorded = data.get("digest")
        if recorded is not None and recorded != outcome.digest():
            raise ValueError(
                f"outcome digest mismatch for {outcome.scenario_id!r}: "
                "record was edited or written by an incompatible version"
            )
        return outcome


def _finite(value: float) -> float | None:
    """NaN-free metric values (canonical JSON must stay strict)."""
    return None if value is None or math.isnan(value) else value


def _telemetry(trace_path) -> Telemetry | None:
    if trace_path is None:
        return None
    return Telemetry(sink=JsonlSink(trace_path))


def run_scenario(
    scenario: ChaosScenario, trace_path=None, heartbeat=None
) -> ScenarioOutcome:
    """Run one scenario, invariants and watchdog always armed.

    *trace_path* (optional) writes the scenario's full JSONL telemetry
    trace -- the campaign stores one per scenario and replay bundles
    embed its tail.  The trace never feeds back into simulation
    decisions, so outcomes digest identically with or without it.
    *heartbeat* (supervised campaign workers) is driven from inside
    the simulation loop and likewise never influences the outcome.
    """
    if scenario.kind == "standalone":
        return _run_standalone(scenario, trace_path, heartbeat)
    return _run_timing(scenario, trace_path, heartbeat)


def _crash_outcome(scenario: ChaosScenario, error: BaseException) -> ScenarioOutcome:
    return ScenarioOutcome(
        scenario_id=scenario.scenario_id,
        status="crash",
        detail=f"{type(error).__name__}: {error}",
    )


def _run_timing(
    scenario: ChaosScenario, trace_path, heartbeat=None
) -> ScenarioOutcome:
    config = SimulationConfig(
        algorithm=scenario.algorithm,
        network=NetworkConfig(width=scenario.width, height=scenario.height),
        traffic=TrafficConfig(
            pattern=scenario.pattern,
            injection_rate=scenario.injection_rate,
        ),
        warmup_cycles=scenario.warmup_cycles,
        measure_cycles=scenario.measure_cycles,
        seed=scenario.seed,
    )
    faults = scenario.fault_config()
    injector = FaultInjector(faults) if faults is not None else None
    # fail_fast=False: chaos wants the full violation list, not the
    # first one -- a failing scenario is data, not an exception.
    checker = InvariantChecker(InvariantConfig(fail_fast=False))
    dog = ProgressWatchdog(
        WatchdogConfig(
            window_cycles=scenario.watchdog_window,
            action="record",
            remediate=scenario.remediate,
        )
    )
    telemetry = _telemetry(trace_path)
    try:
        simulator = NetworkSimulator(
            config,
            telemetry=telemetry,
            faults=injector,
            invariants=checker,
            watchdog=dog,
            heartbeat=heartbeat,
        )
        try:
            point = simulator.bnf_point()
            drained = simulator.drain(scenario.drain_budget)
            checker.check_network(simulator, full=True)
        except Exception as error:
            return _crash_outcome(scenario, error)
    finally:
        if telemetry is not None:
            telemetry.sink.close()
    if checker.violations:
        first = checker.violations[0]
        status = "invariant-violation"
        detail = (
            f"{len(checker.violations)} violation(s); first at cycle "
            f"{first.time:.1f} [{first.name}] {first.detail}"
        )
    elif not drained and dog.fired:
        status = "deadlock"
        detail = (
            f"watchdog fired {dog.fired}x and drain left "
            f"{simulator.total_buffered_packets()} buffered, "
            f"{simulator.total_pending_injections()} pending, "
            f"{simulator.packets_in_transit} in transit"
        )
    elif not drained:
        status = "drain-failed"
        detail = (
            f"drain budget {scenario.drain_budget:.0f} exhausted with "
            f"{simulator.total_buffered_packets()} buffered, "
            f"{simulator.total_pending_injections()} pending, "
            f"{simulator.packets_in_transit} in transit"
        )
    else:
        status, detail = "ok", ""
    metrics = {
        "offered_rate": point.offered_rate,
        "throughput": _finite(point.throughput),
        "latency_ns": _finite(point.latency_ns),
        "packets_delivered": point.packets_delivered,
        "delivered_total": simulator.total_delivered,
        "dropped_total": simulator.total_dropped,
    }
    resilience = {
        "fault_counts": dict(injector.counts) if injector else {},
        "faults_injected": injector.total_faults() if injector else 0,
        "invariant_checks": checker.checks_run,
        "invariant_violations": len(checker.violations),
        "watchdog_fires": dog.fired,
        "remediations_attempted": dog.remediations_attempted,
        "remediated": dog.remediated,
        "deadlocked": dog.deadlocked,
        "drained_clean": bool(drained),
    }
    return ScenarioOutcome(
        scenario_id=scenario.scenario_id,
        status=status,
        detail=detail,
        metrics=metrics,
        resilience=resilience,
    )


def _run_standalone(
    scenario: ChaosScenario, trace_path, heartbeat=None
) -> ScenarioOutcome:
    config = StandaloneConfig(
        algorithm=scenario.algorithm,
        load=scenario.load,
        occupancy=scenario.occupancy,
        trials=scenario.trials,
        seed=scenario.seed,
    )
    faults = scenario.fault_config()
    injector = FaultInjector(faults) if faults is not None else None
    invariants = ArbitrationInvariants(fail_fast=False)
    telemetry = _telemetry(trace_path)
    try:
        try:
            model = StandaloneRouterModel(
                config,
                telemetry=telemetry,
                invariants=invariants,
                faults=injector,
                heartbeat=heartbeat,
            )
            stats = model.run()
        except Exception as error:
            return _crash_outcome(scenario, error)
    finally:
        if telemetry is not None:
            telemetry.sink.close()
    if invariants.violations:
        first = invariants.violations[0]
        status = "invariant-violation"
        detail = (
            f"{len(invariants.violations)} violation(s); first at trial "
            f"{first.time:.0f} [{first.name}] {first.detail}"
        )
    else:
        status, detail = "ok", ""
    metrics = {
        "mean_matches": _finite(stats.mean),
        "trials": scenario.trials,
    }
    resilience = {
        "fault_counts": dict(injector.counts) if injector else {},
        "faults_injected": injector.total_faults() if injector else 0,
        "invariant_checks": invariants.checks_run,
        "invariant_violations": len(invariants.violations),
    }
    return ScenarioOutcome(
        scenario_id=scenario.scenario_id,
        status=status,
        detail=detail,
        metrics=metrics,
        resilience=resilience,
    )
