"""Delta-debugging failing scenarios down to minimal reproducers.

A randomly generated failing scenario usually drags along fault
dimensions that have nothing to do with the failure (the deadlock came
from the stalled router, not the 0.3% flit-drop rate that happened to
ride the same draw).  :func:`shrink_scenario` greedily disables one
active fault dimension at a time, re-running the scenario after each
edit and keeping the edit only when the *same failure status*
persists; it then halves the scenario's duration (measure cycles or
trials) while the failure keeps reproducing.  The result is a minimal
reproducer -- strictly fewer active dimensions whenever any were
extraneous, and a shorter run -- stored as ``minimal.json`` next to
the failure's bundle.

Shrinking compares *status*, not outcome digests: disabling a
dimension changes the shared fault-RNG draw sequence, so metrics shift
even when the underlying bug is untouched.  The minimal scenario's own
replay is still digest-exact, like any scenario.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path
from typing import Callable

from repro.chaos.runner import ScenarioOutcome, run_scenario
from repro.chaos.scenario import (
    ChaosScenario,
    active_fault_dimensions,
    disable_dimension,
)

MINIMAL_SCHEMA = 1

#: duration floors: don't shrink below something humanly debuggable.
MIN_MEASURE_CYCLES = 200
MIN_TRIALS = 10


def _halve_duration(scenario: ChaosScenario) -> ChaosScenario | None:
    """The next duration-halving candidate, or None at the floor."""
    if scenario.kind == "timing":
        half = scenario.measure_cycles // 2
        if half < MIN_MEASURE_CYCLES:
            return None
        return replace(
            scenario,
            measure_cycles=half,
            warmup_cycles=scenario.warmup_cycles // 2,
        )
    half = scenario.trials // 2
    if half < MIN_TRIALS:
        return None
    return replace(scenario, trials=half)


def shrink_scenario(
    scenario: ChaosScenario,
    target_status: str | None = None,
    run: Callable[[ChaosScenario], ScenarioOutcome] = run_scenario,
    progress: Callable[[str], None] | None = None,
) -> tuple[ChaosScenario, list[dict]]:
    """Minimize a failing scenario; returns (minimal, attempt log).

    *target_status* is the failure to preserve; when omitted the
    scenario is run once to establish it (and must fail).  Every
    attempted edit lands in the log -- kept or rejected -- so the
    ``minimal.json`` record shows *why* the surviving dimensions
    survived.
    """
    if target_status is None:
        baseline = run(scenario)
        target_status = baseline.status
    if target_status == "ok":
        raise ValueError(
            f"{scenario.scenario_id} does not fail; nothing to shrink"
        )
    current = scenario
    steps: list[dict] = []

    def attempt(candidate: ChaosScenario, action: str) -> bool:
        outcome = run(candidate)
        kept = outcome.status == target_status
        steps.append({
            "action": action,
            "status": outcome.status,
            "kept": kept,
        })
        if progress is not None:
            verdict = "kept" if kept else "rejected"
            progress(f"  {action}: {outcome.status} -> {verdict}")
        return kept

    # Pass 1: drop extraneous fault dimensions until a fixed point.
    # Greedy restarts after every success because disabling one
    # dimension can change whether another is load-bearing.
    changed = True
    while changed:
        changed = False
        for name in active_fault_dimensions(current):
            candidate = disable_dimension(current, name)
            if attempt(candidate, f"disable {name}"):
                current = candidate
                changed = True
                break
    # Pass 2: halve the duration while the failure keeps reproducing.
    while (candidate := _halve_duration(current)) is not None:
        label = (
            f"halve measure_cycles to {candidate.measure_cycles}"
            if candidate.kind == "timing"
            else f"halve trials to {candidate.trials}"
        )
        if not attempt(candidate, label):
            break
        current = candidate
    return current, steps


def write_minimal(
    bundle_dir: str | Path,
    minimal: ChaosScenario,
    steps: list[dict],
    target_status: str,
) -> Path:
    """Store the minimal reproducer next to its bundle.

    The file is itself replayable: ``repro chaos replay`` accepts a
    ``minimal.json`` wherever it accepts a ``bundle.json`` scenario --
    both carry a full scenario record.
    """
    record = {
        "kind": "chaos-minimal",
        "schema": MINIMAL_SCHEMA,
        "target_status": target_status,
        "scenario": minimal.as_dict(),
        "scenario_digest": minimal.digest(),
        "active_dimensions": list(active_fault_dimensions(minimal)),
        "steps": steps,
    }
    path = Path(bundle_dir) / "minimal.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path
