"""Deadlock/livelock detection with structured diagnostics.

A deadlocked network does not crash an event-driven simulator -- it
just stops delivering while injection events keep the queue warm, and
a post-run :meth:`~repro.sim.timing_model.NetworkSimulator.drain`
grinds to its cycle horizon with nothing to show.  The
:class:`ProgressWatchdog` turns that silent failure mode into a loud,
inspectable one: on a configurable cycle cadence it asks "did any
packet sink since the last tick, and is there work outstanding?"; when
the answer is no-progress-but-work-waiting it records a structured
diagnostic -- per-router, per-port occupancy plus the global
accounting counters -- and (optionally) raises :class:`DeadlockError`
to abort the run.  With telemetry attached the diagnostic is also
written to the trace as a ``watchdog`` event, so ``repro obs
summarize`` can show where the packets piled up without re-running
anything.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class WatchdogConfig:
    """When to declare a stall and what to do about it.

    Attributes:
        window_cycles: no delivery for this many cycles (while packets
            are waiting somewhere) counts as a stall.
        action: ``"record"`` collects diagnostics and lets the run
            continue (the trace shows every stalled window);
            ``"raise"`` aborts the run with :class:`DeadlockError` at
            the first stall -- the mode batch sweeps use so a deadlock
            costs one window, not a cycle horizon.
        max_snapshots: cap on stored diagnostics (the trace still
            records every fire).
        remediate: on the first stall of an episode, issue a one-shot
            recovery kick (``sim.recovery_kick()``: re-arm arbitration
            launches everywhere) and give it one more window before
            declaring deadlock.  A stall a kick cures was a lost
            wake-up, not a protocol deadlock -- the two outcomes are
            recorded separately (``remediated`` vs ``deadlocked``) so
            the distinction survives into traces and counters.  With
            ``action="raise"`` the abort happens only after a failed
            kick.
    """

    window_cycles: float = 5_000.0
    action: str = "record"
    max_snapshots: int = 8
    remediate: bool = False

    def __post_init__(self) -> None:
        if self.window_cycles <= 0:
            raise ValueError("window_cycles must be positive")
        if self.action not in ("record", "raise"):
            raise ValueError('action must be "record" or "raise"')
        if self.max_snapshots < 1:
            raise ValueError("max_snapshots must be positive")


class DeadlockError(RuntimeError):
    """The watchdog saw no progress with work outstanding."""

    def __init__(self, diagnostic: dict) -> None:
        self.diagnostic = diagnostic
        super().__init__(
            f"no delivery for {diagnostic['window_cycles']:.0f} cycles at "
            f"cycle {diagnostic['time']:.1f}: {diagnostic['buffered']} "
            f"buffered, {diagnostic['pending']} pending injection, "
            f"{diagnostic['in_transit']} in transit"
        )


class ProgressWatchdog:
    """Attach with ``NetworkSimulator(config, watchdog=...)``.

    The simulator drives :meth:`observe` on the configured cadence;
    this class only decides and describes.
    """

    def __init__(self, config: WatchdogConfig | None = None) -> None:
        self.config = config or WatchdogConfig()
        self.fired = 0
        self.diagnostics: list[dict] = []
        self._last_delivered: int | None = None
        #: remediation bookkeeping: kicks issued, stalls a kick cured
        #: (lost wake-ups), stalls a kick could not cure (deadlocks).
        self.remediations_attempted = 0
        self.remediated = 0
        self.deadlocked = 0
        #: per-episode kick state: None (armed), "pending" (kick
        #: issued, awaiting the grace window), "failed" (kick did not
        #: restore progress -- the stall is a real deadlock).
        self._kick_state: str | None = None

    @property
    def clean(self) -> bool:
        return self.fired == 0

    def observe(self, sim) -> dict | None:
        """One tick: fire when nothing sank but packets are waiting."""
        delivered = sim.total_delivered
        last = self._last_delivered
        self._last_delivered = delivered
        if last is None or delivered != last:
            if self._kick_state == "pending":
                # Progress resumed inside the grace window: the kick
                # cured the stall, so it was a lost wake-up.
                self.remediated += 1
                tel = sim.telemetry
                if tel.enabled:
                    tel.on_watchdog_remediation(sim.now, "remediated")
            self._kick_state = None  # re-arm for the next episode
            return None
        outstanding = (
            sim.total_buffered_packets()
            + sim.total_pending_injections()
            + sim.packets_in_transit
        )
        if outstanding == 0:
            return None
        diagnostic = self._diagnose(sim, outstanding)
        raise_now = self.config.action == "raise"
        if self.config.remediate and self._kick_state is None:
            # First stall of an episode: one-shot kick, one grace
            # window before any deadlock verdict (even in raise mode).
            self._kick_state = "pending"
            self.remediations_attempted += 1
            diagnostic["verdict"] = "kick-issued"
            kick = getattr(sim, "recovery_kick", None)
            if kick is not None:
                kick()
            raise_now = False
        elif self._kick_state == "pending":
            # The grace window elapsed with no progress: the kick did
            # not help -- this is a true protocol deadlock.
            self._kick_state = "failed"
            self.deadlocked += 1
            diagnostic["verdict"] = "deadlocked"
            tel = sim.telemetry
            if tel.enabled:
                tel.on_watchdog_remediation(sim.now, "deadlocked")
        elif self.config.remediate:
            diagnostic["verdict"] = "deadlocked"
        self.fired += 1
        if len(self.diagnostics) < self.config.max_snapshots:
            self.diagnostics.append(diagnostic)
        tel = sim.telemetry
        if tel.enabled:
            tel.on_watchdog(sim.now, diagnostic)
        if raise_now:
            raise DeadlockError(diagnostic)
        return diagnostic

    def _diagnose(self, sim, outstanding: int) -> dict:
        """The structured stall snapshot (JSON-serializable)."""
        routers = []
        for router in sim.routers:
            ports = {
                port.name: occupancy
                for port, buffer in router.buffers.items()
                if (occupancy := buffer.occupancy())
            }
            if ports:
                routers.append({
                    "node": router.node,
                    "buffered": sum(ports.values()),
                    "ports": ports,
                    "draining": router.antistarvation.draining,
                })
        routers.sort(key=lambda entry: -entry["buffered"])
        return {
            "time": sim.now,
            "window_cycles": self.config.window_cycles,
            "delivered_total": sim.total_delivered,
            "outstanding": outstanding,
            "buffered": sim.total_buffered_packets(),
            "pending": sim.total_pending_injections(),
            "in_transit": sim.packets_in_transit,
            "sinking": sim.packets_sinking,
            "routers": routers,
        }
