"""Deadlock/livelock detection with structured diagnostics.

A deadlocked network does not crash an event-driven simulator -- it
just stops delivering while injection events keep the queue warm, and
a post-run :meth:`~repro.sim.timing_model.NetworkSimulator.drain`
grinds to its cycle horizon with nothing to show.  The
:class:`ProgressWatchdog` turns that silent failure mode into a loud,
inspectable one: on a configurable cycle cadence it asks "did any
packet sink since the last tick, and is there work outstanding?"; when
the answer is no-progress-but-work-waiting it records a structured
diagnostic -- per-router, per-port occupancy plus the global
accounting counters -- and (optionally) raises :class:`DeadlockError`
to abort the run.  With telemetry attached the diagnostic is also
written to the trace as a ``watchdog`` event, so ``repro obs
summarize`` can show where the packets piled up without re-running
anything.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class WatchdogConfig:
    """When to declare a stall and what to do about it.

    Attributes:
        window_cycles: no delivery for this many cycles (while packets
            are waiting somewhere) counts as a stall.
        action: ``"record"`` collects diagnostics and lets the run
            continue (the trace shows every stalled window);
            ``"raise"`` aborts the run with :class:`DeadlockError` at
            the first stall -- the mode batch sweeps use so a deadlock
            costs one window, not a cycle horizon.
        max_snapshots: cap on stored diagnostics (the trace still
            records every fire).
    """

    window_cycles: float = 5_000.0
    action: str = "record"
    max_snapshots: int = 8

    def __post_init__(self) -> None:
        if self.window_cycles <= 0:
            raise ValueError("window_cycles must be positive")
        if self.action not in ("record", "raise"):
            raise ValueError('action must be "record" or "raise"')
        if self.max_snapshots < 1:
            raise ValueError("max_snapshots must be positive")


class DeadlockError(RuntimeError):
    """The watchdog saw no progress with work outstanding."""

    def __init__(self, diagnostic: dict) -> None:
        self.diagnostic = diagnostic
        super().__init__(
            f"no delivery for {diagnostic['window_cycles']:.0f} cycles at "
            f"cycle {diagnostic['time']:.1f}: {diagnostic['buffered']} "
            f"buffered, {diagnostic['pending']} pending injection, "
            f"{diagnostic['in_transit']} in transit"
        )


class ProgressWatchdog:
    """Attach with ``NetworkSimulator(config, watchdog=...)``.

    The simulator drives :meth:`observe` on the configured cadence;
    this class only decides and describes.
    """

    def __init__(self, config: WatchdogConfig | None = None) -> None:
        self.config = config or WatchdogConfig()
        self.fired = 0
        self.diagnostics: list[dict] = []
        self._last_delivered: int | None = None

    @property
    def clean(self) -> bool:
        return self.fired == 0

    def observe(self, sim) -> dict | None:
        """One tick: fire when nothing sank but packets are waiting."""
        delivered = sim.total_delivered
        last = self._last_delivered
        self._last_delivered = delivered
        if last is None or delivered != last:
            return None
        outstanding = (
            sim.total_buffered_packets()
            + sim.total_pending_injections()
            + sim.packets_in_transit
        )
        if outstanding == 0:
            return None
        diagnostic = self._diagnose(sim, outstanding)
        self.fired += 1
        if len(self.diagnostics) < self.config.max_snapshots:
            self.diagnostics.append(diagnostic)
        tel = sim.telemetry
        if tel.enabled:
            tel.on_watchdog(sim.now, diagnostic)
        if self.config.action == "raise":
            raise DeadlockError(diagnostic)
        return diagnostic

    def _diagnose(self, sim, outstanding: int) -> dict:
        """The structured stall snapshot (JSON-serializable)."""
        routers = []
        for router in sim.routers:
            ports = {
                port.name: occupancy
                for port, buffer in router.buffers.items()
                if (occupancy := buffer.occupancy())
            }
            if ports:
                routers.append({
                    "node": router.node,
                    "buffered": sum(ports.values()),
                    "ports": ports,
                    "draining": router.antistarvation.draining,
                })
        routers.sort(key=lambda entry: -entry["buffered"])
        return {
            "time": sim.now,
            "window_cycles": self.config.window_cycles,
            "delivered_total": sim.total_delivered,
            "outstanding": outstanding,
            "buffered": sim.total_buffered_packets(),
            "pending": sim.total_pending_injections(),
            "in_transit": sim.packets_in_transit,
            "sinking": sim.packets_sinking,
            "routers": routers,
        }
