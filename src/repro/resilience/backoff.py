"""Jittered exponential backoff, shared by every retry loop we own.

Exponential backoff without jitter synchronizes: when one event (a
burst of link faults, a coordinator restart) knocks over many retriers
at once, they all wait the *same* doubling series and retry in
lockstep -- a retry storm that re-collides forever.  The classic fix
is "full-spectrum" randomization of each delay; we use the bounded
variant (delay scaled by a uniform factor in ``[1 - jitter, 1 + jitter]``)
so the backoff stays recognizably exponential in traces and tests.

Determinism: the jitter draw always comes from a *caller-provided*
seeded :class:`random.Random`.  There is deliberately no module-level
RNG -- the simulator's retransmission jitter must replay exactly under
one fault seed, and a fleet worker's reconnect jitter must differ per
worker, so the stream owner is always the caller.
"""

from __future__ import annotations

import random

__all__ = ["jittered_backoff"]


def jittered_backoff(
    base: float,
    factor: float,
    attempt: int,
    rng: random.Random | None = None,
    jitter: float = 0.0,
    max_delay: float | None = None,
) -> float:
    """Delay before retry *attempt* (0-based): jittered exponential.

    The nominal delay is ``base * factor**attempt``, capped at
    *max_delay* (the cap applies before jitter, so the jittered delay
    can exceed the cap by at most the jitter fraction -- capping after
    would make every long backoff identical again, which is the storm
    we are avoiding).  With ``jitter > 0`` the delay is scaled by a
    uniform factor in ``[1 - jitter, 1 + jitter]`` drawn from *rng*;
    ``jitter == 0`` (or no *rng*) reproduces the legacy deterministic
    series exactly.
    """
    if base < 0:
        raise ValueError("base cannot be negative")
    if factor < 1.0:
        raise ValueError("factor must be >= 1 (no shrinking waits)")
    if not 0.0 <= jitter < 1.0:
        raise ValueError("jitter must be in [0, 1)")
    if attempt < 0:
        raise ValueError("attempt cannot be negative")
    delay = base * factor**attempt
    if max_delay is not None:
        delay = min(delay, max_delay)
    if jitter and rng is not None:
        delay *= 1.0 + jitter * (2.0 * rng.random() - 1.0)
    return delay
