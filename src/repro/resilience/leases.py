"""Lease bookkeeping shared by the supervisor and the fleet coordinator.

A *lease* is one grant of one task to one holder -- a local worker
process under :class:`~repro.resilience.supervisor.PointSupervisor`,
or a remote worker connection under
:class:`repro.service.coordinator.FleetCoordinator`.  Both schedulers
need exactly the same bookkeeping around it:

* when was the task granted, and when did its holder last heartbeat;
* which leases have expired (wall-clock deadline, or heartbeat gone
  stale -- the wedge detector);
* how many times has this task crashed its holder, and is it due for
  quarantine.

:class:`LeaseTable` owns that state so the two schedulers cannot
drift: the supervisor reaps the *process* holding an expired lease,
the coordinator kicks the *connection*, but "expired" and "poison"
mean the same thing in both.  Each lease carries a table-unique
``dispatch`` id; a scheduler that stamps the id onto the work it hands
out can recognize (and discard) stale deliveries from a holder whose
lease was already expired and re-granted -- that is what makes
at-least-once dispatch record exactly-once.

Wall-clock only ever flows into *expiry decisions*, never into task
results, so lease accounting cannot perturb determinism.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["Lease", "LeaseTable"]


@dataclass
class Lease:
    """One live grant of one task to one holder."""

    task_id: Any
    holder: Any
    #: table-unique grant id; deliveries stamped with an older dispatch
    #: for the same task are stale and must be discarded.
    dispatch: int
    granted_at: float
    last_beat: float = 0.0

    def __post_init__(self) -> None:
        if not self.last_beat:
            self.last_beat = self.granted_at


@dataclass
class LeaseTable:
    """Active leases plus per-task crash/quarantine accounting.

    ``deadline_s`` bounds a lease's total wall-clock age and
    ``stale_s`` bounds the silence since its last heartbeat; either
    being ``None`` disables that check.  The table never acts on
    expiry itself -- :meth:`expired` reports, the scheduler reaps or
    kicks and then :meth:`release`\\ s.
    """

    deadline_s: float | None = None
    stale_s: float | None = None
    _leases: dict[Any, Lease] = field(default_factory=dict, repr=False)
    _crashes: dict[Any, int] = field(default_factory=dict, repr=False)
    _dispatch: Iterator[int] = field(
        default_factory=lambda: itertools.count(1), repr=False
    )

    # -- granting and releasing ------------------------------------------

    def grant(self, task_id: Any, holder: Any, now: float | None = None) -> Lease:
        """Lease *task_id* to *holder*; re-granting replaces the lease."""
        if now is None:
            now = time.monotonic()
        lease = Lease(
            task_id=task_id,
            holder=holder,
            dispatch=next(self._dispatch),
            granted_at=now,
        )
        self._leases[task_id] = lease
        return lease

    def release(self, task_id: Any) -> Lease | None:
        """Drop the task's lease (result landed, or holder reaped)."""
        return self._leases.pop(task_id, None)

    def lease_for(self, task_id: Any) -> Lease | None:
        return self._leases.get(task_id)

    def held_by(self, holder: Any) -> list[Lease]:
        """Every lease currently granted to *holder*."""
        return [
            lease for lease in self._leases.values() if lease.holder is holder
        ]

    def __len__(self) -> int:
        return len(self._leases)

    def __iter__(self) -> Iterator[Lease]:
        return iter(list(self._leases.values()))

    # -- liveness --------------------------------------------------------

    def beat(self, task_id: Any, now: float | None = None) -> bool:
        """Record a heartbeat for the task's lease; False if none live."""
        lease = self._leases.get(task_id)
        if lease is None:
            return False
        lease.last_beat = time.monotonic() if now is None else now
        return True

    def expired(self, now: float | None = None) -> list[tuple[Lease, str]]:
        """Leases past a bound, with the human-readable reap detail.

        The detail strings are the journalled/traced reap reasons;
        they are shared verbatim between the single-host supervisor
        and the fleet coordinator so operators read one vocabulary.
        """
        if now is None:
            now = time.monotonic()
        out: list[tuple[Lease, str]] = []
        for lease in self._leases.values():
            if (
                self.deadline_s is not None
                and now - lease.granted_at > self.deadline_s
            ):
                out.append((
                    lease,
                    f"point deadline exceeded ({self.deadline_s:g}s)",
                ))
            elif (
                self.stale_s is not None
                and now - lease.last_beat > self.stale_s
            ):
                out.append((
                    lease,
                    f"heartbeat stale beyond {self.stale_s:g}s",
                ))
        return out

    # -- crash accounting ------------------------------------------------

    def record_crash(self, task_id: Any) -> int:
        """Count one holder crash against the task; returns the total."""
        count = self._crashes.get(task_id, 0) + 1
        self._crashes[task_id] = count
        return count

    def crashes(self, task_id: Any) -> int:
        return self._crashes.get(task_id, 0)

    def should_quarantine(self, task_id: Any, quarantine_after: int) -> bool:
        """True once the task has crashed its holders to the limit."""
        return self._crashes.get(task_id, 0) >= quarantine_after
