"""Seeded, config-driven fault injection for the timing model.

Three fault families, all driven by one :class:`random.Random` so a
given (config, seed) pair replays the exact same fault schedule:

* **link faults** -- each packet traversal of an inter-router link may
  lose or corrupt a flit (per-flit Bernoulli, so long block responses
  are proportionally more exposed, like real wires).  Both outcomes are
  recovered by the 21364-style link-level retry protocol
  (:class:`repro.network.links.LinkRetrySpec`): bounded
  retransmissions with exponential backoff, after which the packet is
  dropped with a recorded reason instead of silently vanishing;
* **grant faults** -- an individual arbiter grant may be suppressed
  (the packet stays buffered and renominates) or mis-routed to the
  nomination's other candidate output when one is ready;
* **router stall** -- one router's grants are blocked for a window of
  cycles, modeling a glitching arbiter; a permanent stall
  (``stall_cycles=inf``) manufactures the deadlocks the progress
  watchdog exists to catch.

The injector interposes at two seams: the timing model consults
:meth:`FaultInjector.link_fault` on every link arrival, and the router
calls :meth:`FaultInjector.filter_grants` (installed as
``Router.grant_filter``) between the arbitration algorithm and grant
application.  Both seams cost a single ``is None`` check when no
injector is attached.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field, replace

from repro.core.types import Grant
from repro.network.links import LinkRetrySpec
from repro.network.packets import Packet
from repro.resilience.backoff import jittered_backoff

#: drop reason recorded when a packet exhausts its link retries.
REASON_LINK_RETRIES_EXHAUSTED = "link-retries-exhausted"


@dataclass(frozen=True)
class FaultConfig:
    """What to break, how often, and how recovery is bounded.

    Attributes:
        seed: fault-schedule RNG seed (independent of the simulation
            seed, so the same traffic can be replayed under different
            fault schedules).
        flit_drop_rate: per-flit probability a flit is lost on a link.
        flit_corrupt_rate: per-flit probability a flit arrives with an
            uncorrectable ECC error.  Both trigger retransmission; they
            are counted separately.
        grant_suppression_rate: per-grant probability the grant is
            silently dropped (the packet renominates later).
        grant_misroute_rate: per-grant probability the grant is
            redirected to the nomination's alternate candidate output,
            when one exists and is still ready.
        stall_node: router whose grants are blocked during the stall
            window; None disables stalling.
        stall_start_cycle: first cycle of the stall window.
        stall_cycles: stall duration; ``math.inf`` stalls forever.
        retry: the link-level retransmission policy.
    """

    seed: int = 0
    flit_drop_rate: float = 0.0
    flit_corrupt_rate: float = 0.0
    grant_suppression_rate: float = 0.0
    grant_misroute_rate: float = 0.0
    stall_node: int | None = None
    stall_start_cycle: float = 0.0
    stall_cycles: float = 0.0
    retry: LinkRetrySpec = field(default_factory=LinkRetrySpec)

    def __post_init__(self) -> None:
        # Reject garbage loudly: a NaN or negative rate would otherwise
        # propagate into the Bernoulli draws and silently disable (or
        # randomize) the fault schedule.
        for name in (
            "flit_drop_rate",
            "flit_corrupt_rate",
            "grant_suppression_rate",
            "grant_misroute_rate",
        ):
            rate = getattr(self, name)
            if not isinstance(rate, (int, float)) or isinstance(rate, bool):
                raise ValueError(f"{name} must be a number, got {rate!r}")
            if math.isnan(rate) or not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {rate!r}")
        if self.flit_drop_rate + self.flit_corrupt_rate > 1.0:
            raise ValueError("flit drop + corrupt rates cannot exceed 1")
        if math.isnan(self.stall_cycles) or self.stall_cycles < 0:
            raise ValueError(
                f"stall_cycles must be non-negative, got {self.stall_cycles!r}"
            )
        if (
            math.isnan(self.stall_start_cycle)
            or math.isinf(self.stall_start_cycle)
            or self.stall_start_cycle < 0
        ):
            raise ValueError(
                "stall_start_cycle must be finite and non-negative, "
                f"got {self.stall_start_cycle!r}"
            )

    @property
    def affects_links(self) -> bool:
        return self.flit_drop_rate > 0.0 or self.flit_corrupt_rate > 0.0

    @property
    def affects_grants(self) -> bool:
        return (
            self.grant_suppression_rate > 0.0
            or self.grant_misroute_rate > 0.0
            or (self.stall_node is not None and self.stall_cycles > 0)
        )

    @property
    def enabled(self) -> bool:
        return self.affects_links or self.affects_grants

    def with_seed(self, seed: int) -> "FaultConfig":
        """A copy with a different fault schedule (retry helper)."""
        return replace(self, seed=seed)


class FaultInjector:
    """One run's fault schedule; attach via ``NetworkSimulator(faults=...)``.

    Keeps its own tally of injected faults (``counts``) so tests can
    assert a schedule actually fired without telemetry attached.
    """

    def __init__(self, config: FaultConfig) -> None:
        self.config = config
        self._rng = random.Random(config.seed)
        #: dedicated stream for retransmission-backoff jitter.  Kept
        #: separate from the fault-schedule RNG so enabling (or
        #: retuning) jitter never shifts which flits fault -- the
        #: Bernoulli draws above stay on their own seeded sequence.
        self._backoff_rng = random.Random(config.seed ^ 0x6A177E12)
        self.counts: dict[str, int] = {
            "flit-drop": 0,
            "flit-corrupt": 0,
            "grant-suppressed": 0,
            "grant-misrouted": 0,
            "stall-blocked": 0,
        }

    @property
    def affects_links(self) -> bool:
        return self.config.affects_links

    @property
    def affects_grants(self) -> bool:
        return self.config.affects_grants

    @property
    def retry(self) -> LinkRetrySpec:
        return self.config.retry

    def retry_backoff_cycles(self, attempt: int) -> float:
        """Jittered core cycles before retransmission *attempt* (0-based).

        Scales :meth:`LinkRetrySpec.backoff_cycles` by a seeded uniform
        factor in ``[1 - jitter, 1 + jitter]`` so simultaneous faulted
        packets de-synchronize instead of retrying in lockstep.  The
        draw comes from the injector's dedicated backoff stream, so a
        given fault seed replays the exact same jitter schedule.
        """
        retry = self.config.retry
        return jittered_backoff(
            retry.backoff_base_cycles,
            retry.backoff_factor,
            attempt,
            rng=self._backoff_rng,
            jitter=retry.jitter,
        )

    # -- link faults -----------------------------------------------------

    def link_fault(self, packet: Packet) -> str | None:
        """Fault verdict for one link traversal of *packet*.

        Returns ``"flit-drop"``, ``"flit-corrupt"`` or None.  The
        per-flit rates compound over the packet's length, so a 19-flit
        block response is ~6x more exposed than a 3-flit request.
        """
        config = self.config
        per_flit = config.flit_drop_rate + config.flit_corrupt_rate
        if per_flit <= 0.0:
            return None
        survival = (1.0 - per_flit) ** packet.flits
        if self._rng.random() < survival:
            return None
        kind = (
            "flit-drop"
            if self._rng.random() < config.flit_drop_rate / per_flit
            else "flit-corrupt"
        )
        self.counts[kind] += 1
        return kind

    # -- grant faults ----------------------------------------------------

    def stalled(self, node: int, now: float) -> bool:
        config = self.config
        if config.stall_node != node or config.stall_cycles <= 0:
            return False
        end = config.stall_start_cycle + config.stall_cycles
        return config.stall_start_cycle <= now < end

    def filter_grants(self, router, launch, live, grants, now):
        """``Router.grant_filter`` hook: break individual grants.

        Suppressed grants simply vanish from the grant list -- the
        router's loser-release path returns their packets to the
        buffers for renomination, which is exactly how a dropped grant
        wire would behave.  Mis-routed grants are redirected to the
        nomination's other candidate output, but only when that
        alternate hop plan is still ready, so flow control stays
        honest (the fault changes the decision, not the physics).
        """
        config = self.config
        tel = router.telemetry
        if self.stalled(router.node, now):
            self.counts["stall-blocked"] += len(grants)
            if tel.enabled and grants:
                tel.on_grant_fault(now, router.node, "stall-blocked", len(grants))
            return []
        rng = self._rng
        suppression = config.grant_suppression_rate
        misroute = config.grant_misroute_rate
        kept: list[Grant] = []
        suppressed = 0
        misrouted = 0
        taken = {grant.output for grant in grants}
        by_key = None
        for grant in grants:
            if suppression and rng.random() < suppression:
                suppressed += 1
                continue
            if misroute and rng.random() < misroute:
                if by_key is None:
                    by_key = {(n.row, n.packet): n for n in live}
                nomination = by_key.get((grant.row, grant.packet))
                redirected = self._misroute(
                    router, launch, nomination, grant, taken, now
                )
                if redirected is not None:
                    taken.discard(grant.output)
                    taken.add(redirected.output)
                    grant = redirected
                    misrouted += 1
            kept.append(grant)
        if suppressed:
            self.counts["grant-suppressed"] += suppressed
            if tel.enabled:
                tel.on_grant_fault(now, router.node, "grant-suppressed", suppressed)
        if misrouted:
            self.counts["grant-misrouted"] += misrouted
            if tel.enabled:
                tel.on_grant_fault(now, router.node, "grant-misrouted", misrouted)
        return kept

    # -- standalone-model faults -----------------------------------------

    def filter_matching(self, grants: list[Grant], trial: int) -> list[Grant]:
        """Standalone-model seam: break grants at the matching layer.

        The standalone model (Figures 8/9) has no notion of wall-clock
        time or of multiple routers, so the stall window is interpreted
        over *trial indices* (any non-None ``stall_node`` stalls the
        single router under test) and only grant suppression applies
        per grant -- there is no alternate hop plan to mis-route to.
        A suppressed subset of a legal matching is still a legal
        matching, so :class:`~repro.resilience.ArbitrationInvariants`
        stays honest under injection.
        """
        config = self.config
        if (
            config.stall_node is not None
            and config.stall_cycles > 0
            and config.stall_start_cycle
            <= trial
            < config.stall_start_cycle + config.stall_cycles
        ):
            self.counts["stall-blocked"] += len(grants)
            return []
        rate = config.grant_suppression_rate
        if rate <= 0.0 or not grants:
            return grants
        rng = self._rng
        kept = [grant for grant in grants if not rng.random() < rate]
        self.counts["grant-suppressed"] += len(grants) - len(kept)
        return kept

    def _misroute(
        self, router, launch, nomination, grant: Grant, taken: set[int], now: float
    ) -> Grant | None:
        """Redirect *grant* to a ready alternate output, if any."""
        if nomination is None or len(nomination.outputs) < 2:
            return None
        for output in nomination.outputs:
            if output == grant.output or output in taken:
                continue
            plan = launch.plans.get((grant.row, grant.packet, output))
            if plan is not None and router.plan_is_ready(plan, now):
                return Grant(row=grant.row, packet=grant.packet, output=output)
        return None

    def total_faults(self) -> int:
        return sum(self.counts.values())


def parse_fault_spec(spec: str) -> FaultConfig:
    """Parse a compact CLI fault spec into a :class:`FaultConfig`.

    The spec is comma-separated ``key=value`` pairs, e.g.
    ``"drop=1e-3,corrupt=5e-4,seed=7"``.  Keys: ``drop``, ``corrupt``,
    ``suppress``, ``misroute`` (rates); ``stall-node``, ``stall-start``,
    ``stall-cycles`` (``inf`` allowed); ``seed``; ``max-retries``,
    ``backoff`` (retry policy, backoff in base cycles) and ``jitter``
    (fractional backoff randomization in ``[0, 1)``).
    """
    def _float(key: str, value: str) -> float:
        try:
            return float(value)
        except ValueError:
            raise ValueError(
                f"fault spec {key}={value!r}: not a number"
            ) from None

    def _int(key: str, value: str) -> int:
        try:
            return int(value)
        except ValueError:
            raise ValueError(
                f"fault spec {key}={value!r}: not an integer"
            ) from None

    kwargs: dict = {}
    retry_kwargs: dict = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, value = part.partition("=")
        if not sep:
            raise ValueError(f"fault spec entry {part!r} is not key=value")
        key = key.strip().lower()
        value = value.strip()
        if key == "drop":
            kwargs["flit_drop_rate"] = _float(key, value)
        elif key == "corrupt":
            kwargs["flit_corrupt_rate"] = _float(key, value)
        elif key == "suppress":
            kwargs["grant_suppression_rate"] = _float(key, value)
        elif key == "misroute":
            kwargs["grant_misroute_rate"] = _float(key, value)
        elif key == "stall-node":
            kwargs["stall_node"] = _int(key, value)
        elif key == "stall-start":
            kwargs["stall_start_cycle"] = _float(key, value)
        elif key == "stall-cycles":
            kwargs["stall_cycles"] = _float(key, value)
        elif key == "seed":
            kwargs["seed"] = _int(key, value)
        elif key == "max-retries":
            retry_kwargs["max_retries"] = _int(key, value)
        elif key == "backoff":
            retry_kwargs["backoff_base_cycles"] = _float(key, value)
        elif key == "jitter":
            retry_kwargs["jitter"] = _float(key, value)
        else:
            raise ValueError(f"unknown fault spec key {key!r}")
    if retry_kwargs:
        kwargs["retry"] = LinkRetrySpec(**retry_kwargs)
    return FaultConfig(**kwargs)


def permanent_stall(node: int, start_cycle: float = 0.0, seed: int = 0) -> FaultConfig:
    """A config that deadlocks *node* forever -- watchdog test fodder."""
    return FaultConfig(
        seed=seed,
        stall_node=node,
        stall_start_cycle=start_cycle,
        stall_cycles=math.inf,
    )
