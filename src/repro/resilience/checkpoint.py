"""Checkpoint/resume for load sweeps: a JSONL journal of BNF points.

A paper-preset Figure 10/11 sweep is hours of compute spread over
hundreds of points; a crash at point 180 should not cost the first
179.  :class:`SweepJournal` appends one self-contained JSON record per
completed (or failed) point, fsync-free but line-atomic, so
``sweep_algorithm(..., journal=...)`` can

* **checkpoint** -- record each point the moment it finishes;
* **resume** -- skip points whose latest journal record is a success,
  reconstructing the :class:`~repro.sim.metrics.BNFPoint` verbatim;
* **retry** -- record failures (with the attempt count and error) so
  a rerun knows which points are flaky and the operator can see why.

Rates are keyed by ``repr(float(rate))`` -- the shortest round-trip
representation -- so ``0.3`` and the float-artifact
``0.30000000000000004`` are distinct points, exactly like the trace
filenames of :mod:`repro.sim.sweep`.
"""

from __future__ import annotations

import json
import logging
import os
import socket
import time
from pathlib import Path

from repro.sim.metrics import BNFPoint

logger = logging.getLogger(__name__)


class JournalLockError(RuntimeError):
    """Another live writer holds (or appears to hold) the journal lock."""


class JournalLock:
    """Advisory single-writer lock guarding one :class:`SweepJournal`.

    The journal's append path is line-atomic against *crashes*, not
    against a second writer: two parents (say, two coordinators
    started on the same campaign directory) appending concurrently
    would interleave records and each would hold a stale latest-wins
    cache.  The lock is a sidecar ``<journal>.lock`` file created with
    ``O_CREAT | O_EXCL`` (atomic on every platform we care about)
    holding JSON ``{"pid", "host", "acquired_at"}``.

    Stale-lock takeover: a SIGKILLed writer leaves its lock behind,
    and requiring manual cleanup would break the crash/--resume story.
    If the recorded host is *this* host and the pid is no longer
    alive, the lock is stale -- it is taken over with a logged
    warning.  A lock from a *different* host cannot be liveness-checked
    from here, so it always raises (delete the file manually if the
    other coordinator is known dead).  An unparseable lock file is
    treated as stale debris.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._held = False

    def acquire(self) -> "JournalLock":
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps({
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "acquired_at": time.time(),
        })
        for _ in range(2):  # second try follows a stale-lock removal
            try:
                fd = os.open(
                    self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
            except FileExistsError:
                self._clear_if_stale()
                continue
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
            self._held = True
            return self
        raise JournalLockError(
            f"{self.path}: could not acquire the journal lock "
            f"(still contended after a stale check)"
        )

    def _clear_if_stale(self) -> None:
        """Remove a dead holder's lock file, or raise if it looks live."""
        try:
            holder = json.loads(self.path.read_text(encoding="utf-8"))
            pid = int(holder["pid"])
            host = str(holder["host"])
        except FileNotFoundError:
            return  # released between our O_EXCL failure and this read
        except (ValueError, KeyError, TypeError, OSError):
            logger.warning(
                "%s: unreadable journal lock file; treating as stale "
                "and taking over",
                self.path,
            )
            self._remove_quietly()
            return
        if host != socket.gethostname():
            raise JournalLockError(
                f"{self.path}: journal locked by pid {pid} on host "
                f"{host!r} (not this host, so liveness cannot be "
                f"checked); remove the lock file if that writer is dead"
            )
        if _pid_alive(pid):
            raise JournalLockError(
                f"{self.path}: journal locked by live pid {pid} on this "
                f"host; two writers must never share one journal"
            )
        logger.warning(
            "%s: taking over stale journal lock left by dead pid %d",
            self.path,
            pid,
        )
        self._remove_quietly()

    def _remove_quietly(self) -> None:
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    def release(self) -> None:
        if not self._held:
            return
        self._held = False
        self._remove_quietly()

    @property
    def held(self) -> bool:
        return self._held

    def __enter__(self) -> "JournalLock":
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()


def _pid_alive(pid: int) -> bool:
    """True when *pid* exists on this host (signal-0 probe)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return False
    return True


def rate_key(rate: float) -> str:
    """Canonical journal key for an offered rate (exact round-trip)."""
    return repr(float(rate))


def _fsync_directory(directory: Path) -> None:
    """Make a rename in *directory* durable (best-effort).

    ``os.replace`` updates the directory entry, and that update lives
    in the directory's own metadata -- fsyncing the renamed file alone
    does not persist it.  Platforms that cannot fsync a directory
    (notably Windows) raise ``OSError`` on the open or the fsync; the
    rename is still atomic there, just not durably ordered, so the
    error is swallowed rather than failing the compaction.
    """
    flags = os.O_RDONLY | getattr(os, "O_DIRECTORY", 0)
    try:
        fd = os.open(directory, flags)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class SweepJournal:
    """Append-only JSONL journal of sweep points, keyed (algorithm, rate)."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        #: (algorithm, rate_key) -> latest record; later lines win, so
        #: a retried point's success supersedes its earlier failures.
        self._latest: dict[tuple[str, str], dict] = {}
        self._loaded = False
        #: the salvaged (discarded) torn final line, for inspection.
        self.salvaged_tail: str | None = None
        #: byte offset of the torn tail; the next append truncates it.
        self._torn_offset: int | None = None
        #: the final line parsed but lacked its newline (the crash hit
        #: between the two writes); the next append completes it first.
        self._needs_newline = False

    def lock(self) -> JournalLock:
        """This journal's single-writer lock (``<path>.lock`` sidecar).

        Writers that may run concurrently with other parents -- the
        parallel sweep runner, the chaos campaign, the fleet
        coordinator -- acquire it around their whole write phase.
        """
        return JournalLock(self.path.with_name(self.path.name + ".lock"))

    # -- reading ---------------------------------------------------------

    def load(self) -> None:
        """(Re)read the journal from disk; a missing file is empty.

        Torn-tail tolerant: a *final* line that is not valid JSON
        **and** lacks its trailing newline is exactly what a crash
        mid-append leaves behind, so it is salvaged -- the intact
        prefix loads, the tail is logged, kept on
        :attr:`salvaged_tail`, and physically discarded by the next
        append or :meth:`compact`.  That torn line was a record in
        flight, so ``--resume`` simply retries its point.  Corruption
        anywhere *else* (mid-file, or a final line whose newline made
        it to disk) cannot be a torn append and still raises.
        """
        self._latest.clear()
        self._loaded = True
        self.salvaged_tail = None
        self._torn_offset = None
        self._needs_newline = False
        if not self.path.exists():
            return
        text = self.path.read_bytes().decode("utf-8")
        if not text:
            return
        ends_with_newline = text.endswith("\n")
        lines = text.split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        offset = 0
        for index, raw_line in enumerate(lines):
            is_final = index == len(lines) - 1
            line = raw_line.strip()
            if line:
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as error:
                    if is_final and not ends_with_newline:
                        self.salvaged_tail = raw_line
                        self._torn_offset = offset
                        logger.warning(
                            "%s: salvaged torn final line (%d bytes "
                            "discarded on next write): %.80r",
                            self.path,
                            len(raw_line.encode("utf-8")),
                            raw_line,
                        )
                        break
                    raise ValueError(
                        f"{self.path}:{index + 1}: corrupt journal line "
                        f"({error})"
                    ) from error
                if is_final and not ends_with_newline:
                    self._needs_newline = True
                key = (record.get("algorithm", ""), record.get("rate_key", ""))
                self._latest[key] = record
            offset += len(raw_line.encode("utf-8")) + 1

    def _ensure_loaded(self) -> None:
        if not self._loaded:
            self.load()

    def record_for(self, algorithm: str, rate: float) -> dict | None:
        self._ensure_loaded()
        return self._latest.get((algorithm, rate_key(rate)))

    def completed_point(self, algorithm: str, rate: float) -> BNFPoint | None:
        """The journalled point, if its latest record is a success."""
        record = self.record_for(algorithm, rate)
        if record is None or record.get("status") != "ok":
            return None
        return BNFPoint.from_dict(record["point"])

    def completed_count(self) -> int:
        self._ensure_loaded()
        return sum(
            1 for record in self._latest.values() if record.get("status") == "ok"
        )

    def failures(self) -> list[dict]:
        """Points whose latest record is a failure (newest state only)."""
        self._ensure_loaded()
        return [
            record
            for record in self._latest.values()
            if record.get("status") == "failed"
        ]

    # -- writing ---------------------------------------------------------

    def record_success(
        self,
        algorithm: str,
        rate: float,
        point: BNFPoint,
        attempts: int = 1,
        resilience: dict | None = None,
    ) -> None:
        record = {
            "kind": "sweep-point",
            "status": "ok",
            "algorithm": algorithm,
            "rate": rate,
            "rate_key": rate_key(rate),
            "attempts": attempts,
            "point": point.as_dict(),
        }
        if resilience:
            record["resilience"] = resilience
        self._append(record)

    def record_failure(
        self,
        algorithm: str,
        rate: float,
        attempt: int,
        error: BaseException | str,
        reason: str | None = None,
    ) -> None:
        """Journal a failed attempt.

        *reason* distinguishes supervised failures -- ``"worker-lost"``
        (the worker process died mid-point) and ``"timeout"`` (reaped
        at the deadline or heartbeat-staleness threshold) -- from the
        default in-task exception.  All of them leave the point's
        latest status ``failed``, so ``--resume`` retries it.
        """
        record = {
            "kind": "sweep-point",
            "status": "failed",
            "algorithm": algorithm,
            "rate": rate,
            "rate_key": rate_key(rate),
            "attempt": attempt,
            "error": f"{type(error).__name__}: {error}"
            if isinstance(error, BaseException)
            else str(error),
        }
        if reason is not None:
            record["reason"] = reason
        self._append(record)

    def record_quarantined(
        self, algorithm: str, rate: float, crashes: int, error: str
    ) -> None:
        """Journal a poison point abandoned after *crashes* crashes.

        A quarantined record is not a success, so ``--resume`` still
        retries the point (perhaps on a healthier host or with a
        longer deadline); it is first-class so reports can distinguish
        "kept crashing its workers" from an ordinary failed attempt.
        """
        self._append({
            "kind": "sweep-point",
            "status": "quarantined",
            "algorithm": algorithm,
            "rate": rate,
            "rate_key": rate_key(rate),
            "crashes": crashes,
            "error": str(error),
        })

    def quarantined(self) -> list[dict]:
        """Points whose latest record is a quarantine."""
        self._ensure_loaded()
        return [
            record
            for record in self._latest.values()
            if record.get("status") == "quarantined"
        ]

    def record_outcome(
        self,
        algorithm: str,
        rate: float,
        outcome: dict,
        attempts: int = 1,
    ) -> None:
        """Journal an arbitrary structured outcome under a sweep key.

        The chaos campaign runner reuses the sweep journal as its
        checkpoint/resume store by keying each scenario as
        ``(scenario_id, float(index))``; the outcome dict (status,
        digest, metrics, ...) rides in the record verbatim.  Outcomes
        are always ``status: ok`` at the journal level -- a *failing*
        chaos scenario is still a *completed* unit of campaign work,
        so resume must skip it.
        """
        self._append({
            "kind": "chaos-scenario",
            "status": "ok",
            "algorithm": algorithm,
            "rate": rate,
            "rate_key": rate_key(rate),
            "attempts": attempts,
            "outcome": outcome,
        })

    def outcome_for(self, algorithm: str, rate: float) -> dict | None:
        """The journalled outcome dict, if this key has completed."""
        record = self.record_for(algorithm, rate)
        if record is None or record.get("status") != "ok":
            return None
        outcome = record.get("outcome")
        return outcome if isinstance(outcome, dict) else None

    def compact(self) -> int:
        """Rewrite the journal latest-wins; returns the lines dropped.

        Long sweeps with flaky points accrete one failure line per
        retry, so the journal grows without bound while only the latest
        record per (algorithm, rate) key ever matters.  Compaction
        writes those latest records to a sibling temp file and
        atomically renames it over the journal (fsync first), so a
        crash mid-compaction leaves either the old complete journal or
        the new complete one -- never a torn file.  The containing
        directory is fsynced after the rename so the rename itself is
        durable, not just the new file's bytes.  Replaying the
        compacted journal reconstructs the exact same latest-wins
        state.  A no-op (returning 0) when nothing would shrink.
        """
        self._ensure_loaded()
        if not self.path.exists():
            return 0
        with self.path.open("r", encoding="utf-8") as handle:
            total_lines = sum(1 for line in handle if line.strip())
        dropped = total_lines - len(self._latest)
        if dropped <= 0:
            return 0
        temp_path = self.path.with_name(self.path.name + ".compact.tmp")
        with temp_path.open("w", encoding="utf-8") as handle:
            for record in self._latest.values():
                handle.write(json.dumps(record, separators=(",", ":")))
                handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, self.path)
        _fsync_directory(self.path.parent)
        # The rewrite is whole lines only: any salvaged tail is gone.
        self._torn_offset = None
        self._needs_newline = False
        return dropped

    def _append(self, record: dict) -> None:
        self._ensure_loaded()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self._torn_offset is not None:
            # Physically discard the salvaged torn tail before the
            # first new record lands after it.
            with self.path.open("r+b") as handle:
                handle.truncate(self._torn_offset)
            self._torn_offset = None
            self._needs_newline = False
        with self.path.open("a", encoding="utf-8") as handle:
            if self._needs_newline:
                # The previous final record parsed but its newline
                # never hit the disk; complete the line first.
                handle.write("\n")
                self._needs_newline = False
            handle.write(json.dumps(record, separators=(",", ":")))
            handle.write("\n")
        self._latest[(record["algorithm"], record["rate_key"])] = record
