"""Supervised process workers: heartbeats, deadlines, reaping, quarantine.

``ProcessPoolExecutor`` has two failure modes that kill a long sweep
or chaos campaign outright: a worker that *dies* breaks the whole pool
(``BrokenProcessPool`` fails every pending future), and a worker that
*wedges* -- an infinite loop, a lost wake-up -- hangs the parent's
``wait()`` forever, because the executor has no per-task deadline and
no way to terminate one worker without poisoning the rest.

:class:`PointSupervisor` replaces the executor with raw spawn-context
``multiprocessing.Process`` workers it owns outright, one duplex pipe
each, so it can

* watch **heartbeats**: the task runner receives a heartbeat callable
  that the simulation drives from inside its event loop (see
  ``NetworkSimulator(heartbeat=...)``), so a wedged loop stops beating
  -- a thread-based heartbeat would defeat the whole point;
* enforce a per-task **wall-clock deadline** and a **heartbeat
  staleness** threshold, reaping (terminate + join, then kill) any
  worker that trips either, and replenishing the pool with a fresh
  process instead of aborting;
* classify every abnormal end as a :class:`SupervisorEvent` --
  ``worker-lost`` (the process died), ``timeout`` (reaped at a
  deadline) or ``quarantined`` (the same task crashed its worker
  ``quarantine_after`` times: a poison point that would otherwise eat
  the pool forever) -- so the caller can journal each one and a
  ``--resume`` rerun retries it;
* report counters and trace events through an optional
  :class:`~repro.obs.telemetry.Telemetry`
  (``resilience_worker_lost_total`` / ``resilience_point_timeouts_total``
  / ``resilience_quarantined_total``).

Determinism: the supervisor only decides *where and when* a task runs,
never what it computes -- task payloads are the same picklable specs
the executor carried, workers rebuild all state from them, and results
stay bitwise identical to a serial run.  Wall-clock only ever flows
into *reaping decisions*, never into results, so supervised outcomes
journal deterministically.

This is ROADMAP item 2's lease/heartbeat scheduler at single-host
scale: the same (lease = task assignment, heartbeat, reap, reassign)
protocol later stretches over many hosts.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass
from multiprocessing import get_context
from multiprocessing.connection import Connection, wait as connection_wait
from typing import Any, Callable

from repro.resilience.leases import LeaseTable

__all__ = [
    "PointSupervisor",
    "SupervisorConfig",
    "SupervisorEvent",
]


@dataclass(frozen=True)
class SupervisorConfig:
    """Tuning knobs for one supervised pool.

    Attributes:
        point_timeout_s: hard wall-clock ceiling per task; a worker
            still running when it expires is reaped (``None`` = no
            deadline).
        heartbeat_stale_s: reap a worker whose last heartbeat is older
            than this -- catches wedges long before a generous
            deadline would (``None`` = staleness not checked).
        heartbeat_interval_cycles: how often (in simulated cycles) the
            simulation's heartbeat tick fires; the sender additionally
            throttles to wall time, so small values are safe.
        quarantine_after: supervised crashes (worker-lost + timeout)
            of one task before it is quarantined instead of retried.
        rerun_quarantined: after quarantining, re-run the point
            serially in the parent process to capture the real
            traceback (off by default: a poison point that SIGKILLs
            its worker would then kill the parent).
        poll_interval_s: the supervisor's liveness/deadline poll
            cadence; also bounds how long a reap can lag its deadline.
        reap_grace_s: seconds to wait after ``terminate()`` before
            escalating to ``kill()``.
    """

    point_timeout_s: float | None = None
    heartbeat_stale_s: float | None = None
    heartbeat_interval_cycles: float = 1_000.0
    quarantine_after: int = 3
    rerun_quarantined: bool = False
    poll_interval_s: float = 0.05
    reap_grace_s: float = 5.0

    def __post_init__(self) -> None:
        if self.point_timeout_s is not None and self.point_timeout_s <= 0:
            raise ValueError("point_timeout_s must be positive")
        if self.heartbeat_stale_s is not None and self.heartbeat_stale_s <= 0:
            raise ValueError("heartbeat_stale_s must be positive")
        if self.heartbeat_interval_cycles <= 0:
            raise ValueError("heartbeat_interval_cycles must be positive")
        if self.quarantine_after < 1:
            raise ValueError("quarantine_after must be at least 1")
        if self.poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be positive")

    def as_dict(self) -> dict:
        """Manifest form (the tuning half of a supervisor section)."""
        return {
            "point_timeout_s": self.point_timeout_s,
            "heartbeat_stale_s": self.heartbeat_stale_s,
            "heartbeat_interval_cycles": self.heartbeat_interval_cycles,
            "quarantine_after": self.quarantine_after,
        }


@dataclass(frozen=True)
class SupervisorEvent:
    """One supervision outcome handed to the caller, in order.

    ``kind`` is one of:

    * ``"result"`` -- the task finished; :attr:`result` is whatever the
      runner returned (the normal case, successes and in-task failures
      alike);
    * ``"worker-lost"`` -- the worker process died mid-task (SIGKILL,
      OOM, segfault); the task will be retried unless quarantine is
      due;
    * ``"timeout"`` -- the worker was reaped at the task deadline or
      the heartbeat-staleness threshold; retried likewise;
    * ``"quarantined"`` -- the task crashed its worker
      ``quarantine_after`` times and is abandoned; always follows the
      final crash's own event.
    """

    kind: str
    task_id: Any
    result: Any = None
    detail: str = ""
    #: supervised crashes of this task so far (0 for clean results).
    crashes: int = 0


class _HeartbeatSender:
    """The callable a worker's task runner drives between epochs.

    Throttled to wall time so a fast simulation loop does not flood
    the pipe; a send failure (parent gone) is swallowed -- the reap
    arrives either way.
    """

    def __init__(self, conn: Connection, min_interval_s: float = 0.2) -> None:
        self._conn = conn
        self._min_interval_s = min_interval_s
        self._task_id: Any = None
        self._last = 0.0

    def reset(self, task_id: Any) -> None:
        self._task_id = task_id
        self._last = 0.0
        self()  # one immediate beat: "task received, alive"

    def __call__(self) -> None:
        now = time.monotonic()
        if now - self._last < self._min_interval_s:
            return
        self._last = now
        try:
            self._conn.send(("heartbeat", self._task_id))
        except OSError:
            pass


def _worker_main(conn: Connection, runner: Callable[[Any, Callable], Any]) -> None:
    """Long-lived worker loop: recv task, run, send result, repeat.

    Module-level so a spawn context can pickle it by reference.  Any
    exception escaping *runner* is reported as an ``error`` message
    (the worker survives); runners are expected to catch task-level
    exceptions themselves and fold them into their result objects.
    """
    heartbeat = _HeartbeatSender(conn)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message[0] == "exit":
            break
        _, task_id, payload = message
        heartbeat.reset(task_id)
        try:
            result = runner(payload, heartbeat)
        except BaseException as error:  # noqa: BLE001 -- report, don't die
            reply = ("error", task_id, f"{type(error).__name__}: {error}")
        else:
            reply = ("done", task_id, result)
        try:
            conn.send(reply)
        except Exception as error:  # result not picklable, parent gone, ...
            try:
                conn.send((
                    "error",
                    task_id,
                    f"result failed to serialize: "
                    f"{type(error).__name__}: {error}",
                ))
            except Exception:
                break
    try:
        conn.close()
    except OSError:
        pass


@dataclass
class _Worker:
    process: Any
    conn: Connection
    task_id: Any = None


class PointSupervisor:
    """A self-healing pool of supervised worker processes.

    Usage::

        with PointSupervisor(workers, runner, config=cfg) as sup:
            for task_id, payload in work:
                sup.submit(task_id, payload)
            while sup.outstanding:
                event = sup.next_event()
                ...  # journal / retry / collect per event.kind

    *runner* is a module-level callable ``runner(payload, heartbeat)``
    executed in the worker; it should call ``heartbeat()`` between
    simulation epochs (the sweep and chaos runners thread it into the
    simulator's heartbeat tick).

    With ``resubmit_crashed=True`` (the sweep's mode) a crashed task is
    automatically resubmitted until ``quarantine_after`` crashes, then
    a ``quarantined`` event ends it.  With ``False`` (the campaign's
    mode) each crash event is terminal and the caller decides.
    """

    def __init__(
        self,
        workers: int,
        runner: Callable[[Any, Callable], Any],
        config: SupervisorConfig | None = None,
        mp_context: str = "spawn",
        telemetry=None,
        resubmit_crashed: bool = True,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = workers
        self.runner = runner
        self.config = config if config is not None else SupervisorConfig()
        self.telemetry = telemetry
        self.resubmit_crashed = resubmit_crashed
        self._context = get_context(mp_context)
        self._pool: list[_Worker] = []
        #: (ready_at, seq, task_id) min-heap of tasks awaiting a slot;
        #: ready_at implements parent-side retry backoff.
        self._ready: list[tuple[float, int, Any]] = []
        self._seq = itertools.count()
        self._payloads: dict[Any, Any] = {}
        #: lease + crash/quarantine bookkeeping, shared verbatim with
        #: the fleet coordinator (repro.service.coordinator).
        self._leases = LeaseTable(
            deadline_s=self.config.point_timeout_s,
            stale_s=self.config.heartbeat_stale_s,
        )
        self._events: list[SupervisorEvent] = []
        self._started = time.monotonic()
        self._closed = False
        self.stats = {
            "worker_lost": 0,
            "timeouts": 0,
            "quarantined": 0,
            "respawns": 0,
        }

    # -- lifecycle -------------------------------------------------------

    def __enter__(self) -> "PointSupervisor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut every worker down (graceful when idle, forceful else)."""
        if self._closed:
            return
        self._closed = True
        for worker in self._pool:
            if worker.process.is_alive() and worker.task_id is None:
                try:
                    worker.conn.send(("exit",))
                except OSError:
                    pass
        deadline = time.monotonic() + self.config.reap_grace_s
        for worker in self._pool:
            worker.process.join(max(0.0, deadline - time.monotonic()))
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(self.config.reap_grace_s)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join()
            try:
                worker.conn.close()
            except OSError:
                pass
        self._pool.clear()

    # -- submitting and consuming ----------------------------------------

    def submit(self, task_id: Any, payload: Any, delay_s: float = 0.0) -> None:
        """Queue *payload* under *task_id*; *delay_s* defers dispatch.

        Resubmitting an id replaces its payload (how the sweep bumps a
        spec's attempt counter between retries).
        """
        if self._closed:
            raise RuntimeError("supervisor is closed")
        self._payloads[task_id] = payload
        heapq.heappush(
            self._ready,
            (time.monotonic() + max(0.0, delay_s), next(self._seq), task_id),
        )

    @property
    def outstanding(self) -> bool:
        """True while any task is queued, running or awaiting delivery."""
        return bool(
            self._events
            or self._ready
            or any(w.task_id is not None for w in self._pool)
        )

    def next_event(self) -> SupervisorEvent:
        """Block until the next :class:`SupervisorEvent` is available."""
        while True:
            if self._events:
                return self._events.pop(0)
            if not self.outstanding:
                raise RuntimeError("no outstanding supervised work")
            self._pump()

    def summary(self) -> dict:
        """The manifest's supervisor section: config + live totals."""
        return {**self.config.as_dict(), **self.stats}

    # -- the supervision loop --------------------------------------------

    def _pump(self) -> None:
        self._dispatch_ready()
        conns = [w.conn for w in self._pool]
        if conns:
            # Wake early only for a *future* retry coming due.  A task
            # that is already due but undispatched means every slot is
            # busy -- nothing to wake for until a worker speaks, so a
            # zero timeout here would busy-spin the parent at 100% CPU
            # against its own workers.
            timeout = self.config.poll_interval_s
            if self._ready:
                until_due = self._ready[0][0] - time.monotonic()
                if until_due > 0.0:
                    timeout = min(timeout, until_due)
            by_conn = {w.conn: w for w in self._pool}
            for conn in connection_wait(conns, timeout=timeout):
                self._drain_conn(by_conn[conn])
        elif self._ready:
            # No workers yet (all dead, none respawned until a slot is
            # needed): wait out the nearest backoff without spinning.
            time.sleep(
                min(
                    self.config.poll_interval_s,
                    max(0.0, self._ready[0][0] - time.monotonic()),
                )
            )
        self._check_workers()

    def _dispatch_ready(self) -> None:
        now = time.monotonic()
        while self._ready and self._ready[0][0] <= now:
            worker = self._idle_worker()
            if worker is None:
                return
            _, _, task_id = heapq.heappop(self._ready)
            worker.task_id = task_id
            self._leases.grant(task_id, worker, now)
            try:
                worker.conn.send(("task", task_id, self._payloads[task_id]))
            except OSError:
                # Dead before dispatch; _check_workers reaps and the
                # crash path requeues.
                pass

    def _idle_worker(self) -> _Worker | None:
        for worker in self._pool:
            if worker.task_id is None and worker.process.is_alive():
                return worker
        if len(self._pool) < self.workers:
            return self._spawn()
        return None

    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_worker_main,
            args=(child_conn, self.runner),
            daemon=True,
        )
        process.start()
        child_conn.close()
        worker = _Worker(process=process, conn=parent_conn)
        self._pool.append(worker)
        return worker

    def _drain_conn(self, worker: _Worker) -> None:
        while True:
            try:
                if not worker.conn.poll():
                    return
                message = worker.conn.recv()
            except (EOFError, OSError):
                return  # process death; _check_workers classifies it
            kind = message[0]
            if kind == "heartbeat":
                if message[1] == worker.task_id:
                    self._leases.beat(worker.task_id)
            elif kind == "done":
                _, task_id, result = message
                worker.task_id = None
                self._leases.release(task_id)
                self._events.append(
                    SupervisorEvent(
                        kind="result",
                        task_id=task_id,
                        result=result,
                        crashes=self._leases.crashes(task_id),
                    )
                )
            elif kind == "error":
                # The runner let an exception escape (runners fold task
                # failures into results, so this is abnormal).  The
                # worker survives; account it like a crash so a
                # repeat offender still quarantines.
                _, task_id, detail = message
                worker.task_id = None
                self._leases.release(task_id)
                self._record_crash("worker-lost", task_id, detail)

    def _check_workers(self) -> None:
        now = time.monotonic()
        for worker in list(self._pool):
            if not worker.process.is_alive():
                self._pool.remove(worker)
                try:
                    worker.conn.close()
                except OSError:
                    pass
                if worker.task_id is not None:
                    task_id = worker.task_id
                    self._leases.release(task_id)
                    self.stats["respawns"] += 1
                    self._record_crash(
                        "worker-lost",
                        task_id,
                        f"worker process died "
                        f"(exitcode {worker.process.exitcode})",
                    )
                continue
        # Deadline / heartbeat-staleness expiry is the lease table's
        # verdict; reaping the holder process is ours.
        for lease, detail in self._leases.expired(now):
            if lease.holder in self._pool:
                self._reap(lease.holder, "timeout", detail)

    def _reap(self, worker: _Worker, kind: str, detail: str) -> None:
        task_id = worker.task_id
        self._pool.remove(worker)
        self._leases.release(task_id)
        worker.process.terminate()
        worker.process.join(self.config.reap_grace_s)
        if worker.process.is_alive():
            worker.process.kill()
            worker.process.join()
        try:
            worker.conn.close()
        except OSError:
            pass
        self.stats["respawns"] += 1
        self._record_crash(kind, task_id, detail)

    def _record_crash(self, kind: str, task_id: Any, detail: str) -> None:
        count = self._leases.record_crash(task_id)
        elapsed = time.monotonic() - self._started
        if kind == "timeout":
            self.stats["timeouts"] += 1
            if self.telemetry is not None and self.telemetry.enabled:
                self.telemetry.on_point_timeout(
                    elapsed, str(task_id), detail, count
                )
        else:
            self.stats["worker_lost"] += 1
            if self.telemetry is not None and self.telemetry.enabled:
                self.telemetry.on_worker_lost(
                    elapsed, str(task_id), detail, count
                )
        self._events.append(
            SupervisorEvent(
                kind=kind, task_id=task_id, detail=detail, crashes=count
            )
        )
        if not self.resubmit_crashed:
            return
        if not self._leases.should_quarantine(
            task_id, self.config.quarantine_after
        ):
            self.submit(task_id, self._payloads[task_id])
            return
        self.stats["quarantined"] += 1
        if self.telemetry is not None and self.telemetry.enabled:
            self.telemetry.on_quarantine(
                time.monotonic() - self._started, str(task_id), count, detail
            )
        self._events.append(
            SupervisorEvent(
                kind="quarantined",
                task_id=task_id,
                detail=detail,
                crashes=count,
            )
        )
