"""Runtime invariant checking for the simulators.

:class:`InvariantChecker` attaches to a
:class:`~repro.sim.timing_model.NetworkSimulator` and re-verifies, on a
configurable cycle cadence plus once at the end of the run, the
properties the paper's conclusions silently depend on:

* **packet conservation** -- every packet ever injected is delivered,
  dropped with a recorded reason, or still accounted for (buffered in
  a router, waiting in an injection queue, in transit on a link, or
  sinking at a local port).  Nothing silently vanishes, nothing is
  double-counted;
* **no duplicate in-flight ids** -- a packet uid occupies at most one
  buffer slot network-wide (virtual cut-through: the whole packet
  lives in one place);
* **buffer-credit sanity** -- per virtual channel, occupancy and
  outstanding reservations are non-negative and never exceed the
  partition's capacity (credit flow control cannot go negative);
* **anti-starvation age bound** -- no buffered packet has waited at
  one router longer than the configured bound, which the two-color
  draining scheme is supposed to guarantee.

Violations are recorded (and emitted as telemetry events when a sink
is attached); with ``fail_fast`` they raise
:class:`InvariantViolationError` at the offending cycle, which is the
mode the test suite and CI smoke jobs run in.

:class:`ArbitrationInvariants` is the standalone-model counterpart: a
per-trial matching validator around
:func:`repro.core.types.validate_matching`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.types import Grant, Nomination, validate_matching


@dataclass(frozen=True)
class InvariantConfig:
    """Cadence and strictness of the runtime checks.

    Attributes:
        check_interval_cycles: cycles between periodic sweeps; the
            final check at the end of the run always happens.
        max_wait_cycles: anti-starvation bound -- the longest a packet
            may wait at a single router.  None disables the age check
            (e.g. for runs with anti-starvation ablated).
        fail_fast: raise :class:`InvariantViolationError` at the first
            violation instead of collecting them.
    """

    check_interval_cycles: float = 1_000.0
    max_wait_cycles: float | None = 200_000.0
    fail_fast: bool = False

    def __post_init__(self) -> None:
        if self.check_interval_cycles <= 0:
            raise ValueError("check_interval_cycles must be positive")
        if self.max_wait_cycles is not None and self.max_wait_cycles <= 0:
            raise ValueError("max_wait_cycles must be positive (or None)")


@dataclass(frozen=True, slots=True)
class InvariantViolation:
    """One detected violation: when, which invariant, and the evidence."""

    time: float
    name: str
    detail: str


class InvariantViolationError(AssertionError):
    """Raised in ``fail_fast`` mode (or by :meth:`raise_if_violated`)."""

    def __init__(self, violations: list[InvariantViolation]) -> None:
        self.violations = violations
        lines = [f"{len(violations)} invariant violation(s):"]
        lines += [
            f"  cycle {v.time:.1f} [{v.name}] {v.detail}" for v in violations[:10]
        ]
        if len(violations) > 10:
            lines.append(f"  ... and {len(violations) - 10} more")
        super().__init__("\n".join(lines))


class InFlightTracker:
    """Incremental network-wide registry of buffered packets.

    The timing model maintains this at the three buffer transitions --
    local-port inject, link-arrival commit, and dispatch removal (plus
    a defensive discard on drops) -- so the invariant checker's
    periodic sweeps can read duplicate-uid and age state in
    O(buffered packets) instead of re-walking every router x port x
    virtual channel.  A uid entering a second buffer slot while still
    registered is a model bug; the collision is recorded at insertion
    time and surfaced (as a ``duplicate-in-flight`` violation) by the
    next check.
    """

    __slots__ = ("entries", "collisions")

    def __init__(self) -> None:
        #: uid -> (node, port name, packet); the packet reference keeps
        #: ``waiting_since`` readable for the incremental age check.
        self.entries: dict[int, tuple[int, str, object]] = {}
        #: (uid, prior location, new location) recorded at add() time.
        self.collisions: list[tuple[int, tuple[int, str], tuple[int, str]]] = []

    def add(self, packet, node: int, port) -> None:
        uid = packet.uid
        prior = self.entries.get(uid)
        if prior is not None:
            self.collisions.append(
                (uid, (prior[0], prior[1]), (node, port.name))
            )
        self.entries[uid] = (node, port.name, packet)

    def discard(self, packet) -> None:
        self.entries.pop(packet.uid, None)

    def __len__(self) -> int:
        return len(self.entries)


class InvariantChecker:
    """Continuous verification of a network simulation's bookkeeping.

    Attach with ``NetworkSimulator(config, invariants=checker)`` (or
    pass an :class:`InvariantConfig`); the simulator schedules the
    periodic sweeps and the end-of-run check itself.

    When the simulator maintains an :class:`InFlightTracker` (it does
    whenever invariants are attached), periodic sweeps take the
    *incremental* path -- conservation totals, tracker-vs-buffer
    consistency, collision-recorded duplicates and the age bound over
    the tracker's O(buffered) entries -- and the exhaustive
    per-buffer walk (credit sanity included) runs only where callers
    ask for ``full=True``: the end of :meth:`NetworkSimulator.run` and
    the post-drain check of guarded sweep points.
    """

    def __init__(self, config: InvariantConfig | None = None) -> None:
        self.config = config or InvariantConfig()
        self.violations: list[InvariantViolation] = []
        self.checks_run = 0

    @property
    def clean(self) -> bool:
        return not self.violations

    def raise_if_violated(self) -> None:
        if self.violations:
            raise InvariantViolationError(self.violations)

    # -- the checks ------------------------------------------------------

    def check_network(
        self, sim, full: bool | None = None
    ) -> list[InvariantViolation]:
        """Run every invariant against *sim*'s current state.

        Called between events, where the simulator's accounting is
        guaranteed consistent.  Returns the violations found by this
        sweep (also appended to :attr:`violations`).

        *full* selects the exhaustive per-buffer walk; the default
        (None) walks only when the simulator has no
        :class:`InFlightTracker`, so high-cadence periodic checks on
        paper-preset networks stay O(buffered packets).
        """
        self.checks_run += 1
        found: list[InvariantViolation] = []
        now = sim.now
        tracker = getattr(sim, "_inflight", None)
        self._check_conservation(sim, now, found)
        if full or tracker is None:
            self._check_buffers(sim, now, found)
        else:
            self._check_tracker(sim, tracker, now, found)
        if found:
            self.violations.extend(found)
            tel = sim.telemetry
            if tel.enabled:
                for violation in found:
                    tel.on_invariant_violation(
                        violation.time, violation.name, violation.detail
                    )
            if self.config.fail_fast:
                raise InvariantViolationError(found)
        return found

    def _check_conservation(self, sim, now: float, found: list) -> None:
        buffered = sim.total_buffered_packets()
        pending = sim.total_pending_injections()
        accounted = (
            sim.total_delivered
            + sim.total_dropped
            + buffered
            + pending
            + sim.packets_in_transit
            + sim.packets_sinking
        )
        if accounted != sim.total_injected:
            found.append(InvariantViolation(
                now,
                "packet-conservation",
                f"injected={sim.total_injected} != accounted={accounted} "
                f"(delivered={sim.total_delivered} dropped={sim.total_dropped} "
                f"buffered={buffered} pending={pending} "
                f"in_transit={sim.packets_in_transit} "
                f"sinking={sim.packets_sinking})",
            ))

    def _check_tracker(
        self, sim, tracker: InFlightTracker, now: float, found: list
    ) -> None:
        """The incremental sweep: tracker state instead of a full walk.

        Covers the duplicate-uid check (collisions were recorded at
        insertion), the anti-starvation age bound (over the tracker's
        live entries), and a consistency cross-check that the tracker
        agrees with the buffers' own occupancy counters -- which is
        what catches a missed hook, the one failure mode the
        incremental path adds.  Credit sanity needs the per-channel
        reservation counters and stays in the ``full`` walk.
        """
        if tracker.collisions:
            for uid, prior, current in tracker.collisions:
                found.append(InvariantViolation(
                    now,
                    "duplicate-in-flight",
                    f"packet #{uid} buffered at node {current[0]}/"
                    f"{current[1]} and at node {prior[0]}/{prior[1]}",
                ))
            tracker.collisions.clear()
        buffered = sim.total_buffered_packets()
        if len(tracker) != buffered:
            found.append(InvariantViolation(
                now,
                "inflight-registry",
                f"in-flight registry tracks {len(tracker)} packets but "
                f"buffers hold {buffered}",
            ))
        max_wait = self.config.max_wait_cycles
        if max_wait is not None:
            for uid, (node, port_name, packet) in tracker.entries.items():
                wait = now - packet.waiting_since
                if wait > max_wait:
                    found.append(InvariantViolation(
                        now,
                        "anti-starvation-age",
                        f"packet #{uid} has waited {wait:.0f} cycles at "
                        f"node {node}/{port_name} (bound {max_wait:.0f})",
                    ))

    def _check_buffers(self, sim, now: float, found: list) -> None:
        """Duplicate uids, credit sanity and the age bound in one walk."""
        seen: dict[int, tuple[int, object]] = {}
        max_wait = self.config.max_wait_cycles
        for router in sim.routers:
            for port, buffer in router.buffers.items():
                for channel in buffer.channels_with_waiting():
                    for packet in buffer.packets(channel):
                        prior = seen.get(packet.uid)
                        if prior is not None:
                            found.append(InvariantViolation(
                                now,
                                "duplicate-in-flight",
                                f"packet #{packet.uid} buffered at node "
                                f"{router.node}/{port.name} and at node "
                                f"{prior[0]}/{prior[1]}",
                            ))
                        else:
                            seen[packet.uid] = (router.node, port.name)
                        if max_wait is not None:
                            wait = now - packet.waiting_since
                            if wait > max_wait:
                                found.append(InvariantViolation(
                                    now,
                                    "anti-starvation-age",
                                    f"packet #{packet.uid} has waited "
                                    f"{wait:.0f} cycles at node "
                                    f"{router.node}/{port.name} "
                                    f"(bound {max_wait:.0f})",
                                ))
                for channel, occupancy, reserved in buffer.credit_state():
                    capacity = buffer.capacity(channel)
                    if reserved < 0 or occupancy + reserved > capacity:
                        found.append(InvariantViolation(
                            now,
                            "buffer-credit",
                            f"node {router.node}/{port.name} {channel}: "
                            f"occupancy={occupancy} reserved={reserved} "
                            f"capacity={capacity}",
                        ))


class ArbitrationInvariants:
    """Per-trial matching validation for the standalone model.

    Wraps :func:`repro.core.types.validate_matching` into the same
    record-or-raise shape as :class:`InvariantChecker`, so the
    standalone model (Figures 8/9) can assert every trial's grants form
    a legal matching -- unique rows/packets/outputs, nominated
    combinations only, free outputs only, group capacities respected.
    """

    def __init__(self, fail_fast: bool = True) -> None:
        self.fail_fast = fail_fast
        self.violations: list[InvariantViolation] = []
        self.checks_run = 0

    @property
    def clean(self) -> bool:
        return not self.violations

    def check_arbitration(
        self,
        nominations: list[Nomination],
        free_outputs: frozenset[int],
        grants: list[Grant],
        trial: int = 0,
    ) -> None:
        self.checks_run += 1
        try:
            validate_matching(nominations, grants, free_outputs)
        except ValueError as error:
            violation = InvariantViolation(
                float(trial), "arbitration-matching", str(error)
            )
            self.violations.append(violation)
            if self.fail_fast:
                raise InvariantViolationError([violation]) from error


@dataclass
class ResilienceReport:
    """Aggregate outcome of a guarded run (sweeps attach one per point)."""

    invariant_violations: int = 0
    watchdog_fires: int = 0
    faults_injected: int = 0
    packets_dropped: int = 0
    link_retries: int = 0
    attempts: int = 1
    resumed: bool = False

    def as_dict(self) -> dict:
        return dict(self.__dict__)

    @classmethod
    def from_dict(cls, data: dict) -> "ResilienceReport":
        report = cls()
        for key, value in data.items():
            if hasattr(report, key):
                setattr(report, key, value)
        return report
