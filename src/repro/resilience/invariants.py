"""Runtime invariant checking for the simulators.

:class:`InvariantChecker` attaches to a
:class:`~repro.sim.timing_model.NetworkSimulator` and re-verifies, on a
configurable cycle cadence plus once at the end of the run, the
properties the paper's conclusions silently depend on:

* **packet conservation** -- every packet ever injected is delivered,
  dropped with a recorded reason, or still accounted for (buffered in
  a router, waiting in an injection queue, in transit on a link, or
  sinking at a local port).  Nothing silently vanishes, nothing is
  double-counted;
* **no duplicate in-flight ids** -- a packet uid occupies at most one
  buffer slot network-wide (virtual cut-through: the whole packet
  lives in one place);
* **buffer-credit sanity** -- per virtual channel, occupancy and
  outstanding reservations are non-negative and never exceed the
  partition's capacity (credit flow control cannot go negative);
* **anti-starvation age bound** -- no buffered packet has waited at
  one router longer than the configured bound, which the two-color
  draining scheme is supposed to guarantee.

Violations are recorded (and emitted as telemetry events when a sink
is attached); with ``fail_fast`` they raise
:class:`InvariantViolationError` at the offending cycle, which is the
mode the test suite and CI smoke jobs run in.

:class:`ArbitrationInvariants` is the standalone-model counterpart: a
per-trial matching validator around
:func:`repro.core.types.validate_matching`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.types import Grant, Nomination, validate_matching


@dataclass(frozen=True)
class InvariantConfig:
    """Cadence and strictness of the runtime checks.

    Attributes:
        check_interval_cycles: cycles between periodic sweeps; the
            final check at the end of the run always happens.
        max_wait_cycles: anti-starvation bound -- the longest a packet
            may wait at a single router.  None disables the age check
            (e.g. for runs with anti-starvation ablated).
        fail_fast: raise :class:`InvariantViolationError` at the first
            violation instead of collecting them.
    """

    check_interval_cycles: float = 1_000.0
    max_wait_cycles: float | None = 200_000.0
    fail_fast: bool = False

    def __post_init__(self) -> None:
        if self.check_interval_cycles <= 0:
            raise ValueError("check_interval_cycles must be positive")
        if self.max_wait_cycles is not None and self.max_wait_cycles <= 0:
            raise ValueError("max_wait_cycles must be positive (or None)")


@dataclass(frozen=True, slots=True)
class InvariantViolation:
    """One detected violation: when, which invariant, and the evidence."""

    time: float
    name: str
    detail: str


class InvariantViolationError(AssertionError):
    """Raised in ``fail_fast`` mode (or by :meth:`raise_if_violated`)."""

    def __init__(self, violations: list[InvariantViolation]) -> None:
        self.violations = violations
        lines = [f"{len(violations)} invariant violation(s):"]
        lines += [
            f"  cycle {v.time:.1f} [{v.name}] {v.detail}" for v in violations[:10]
        ]
        if len(violations) > 10:
            lines.append(f"  ... and {len(violations) - 10} more")
        super().__init__("\n".join(lines))


class InvariantChecker:
    """Continuous verification of a network simulation's bookkeeping.

    Attach with ``NetworkSimulator(config, invariants=checker)`` (or
    pass an :class:`InvariantConfig`); the simulator schedules the
    periodic sweeps and the end-of-run check itself.
    """

    def __init__(self, config: InvariantConfig | None = None) -> None:
        self.config = config or InvariantConfig()
        self.violations: list[InvariantViolation] = []
        self.checks_run = 0

    @property
    def clean(self) -> bool:
        return not self.violations

    def raise_if_violated(self) -> None:
        if self.violations:
            raise InvariantViolationError(self.violations)

    # -- the checks ------------------------------------------------------

    def check_network(self, sim) -> list[InvariantViolation]:
        """Run every invariant against *sim*'s current state.

        Called between events, where the simulator's accounting is
        guaranteed consistent.  Returns the violations found by this
        sweep (also appended to :attr:`violations`).
        """
        self.checks_run += 1
        found: list[InvariantViolation] = []
        now = sim.now
        self._check_conservation(sim, now, found)
        self._check_buffers(sim, now, found)
        if found:
            self.violations.extend(found)
            tel = sim.telemetry
            if tel.enabled:
                for violation in found:
                    tel.on_invariant_violation(
                        violation.time, violation.name, violation.detail
                    )
            if self.config.fail_fast:
                raise InvariantViolationError(found)
        return found

    def _check_conservation(self, sim, now: float, found: list) -> None:
        buffered = sim.total_buffered_packets()
        pending = sim.total_pending_injections()
        accounted = (
            sim.total_delivered
            + sim.total_dropped
            + buffered
            + pending
            + sim.packets_in_transit
            + sim.packets_sinking
        )
        if accounted != sim.total_injected:
            found.append(InvariantViolation(
                now,
                "packet-conservation",
                f"injected={sim.total_injected} != accounted={accounted} "
                f"(delivered={sim.total_delivered} dropped={sim.total_dropped} "
                f"buffered={buffered} pending={pending} "
                f"in_transit={sim.packets_in_transit} "
                f"sinking={sim.packets_sinking})",
            ))

    def _check_buffers(self, sim, now: float, found: list) -> None:
        """Duplicate uids, credit sanity and the age bound in one walk."""
        seen: dict[int, tuple[int, object]] = {}
        max_wait = self.config.max_wait_cycles
        for router in sim.routers:
            for port, buffer in router.buffers.items():
                for channel in buffer.channels_with_waiting():
                    for packet in buffer.packets(channel):
                        prior = seen.get(packet.uid)
                        if prior is not None:
                            found.append(InvariantViolation(
                                now,
                                "duplicate-in-flight",
                                f"packet #{packet.uid} buffered at node "
                                f"{router.node}/{port.name} and at node "
                                f"{prior[0]}/{prior[1]}",
                            ))
                        else:
                            seen[packet.uid] = (router.node, port.name)
                        if max_wait is not None:
                            wait = now - packet.waiting_since
                            if wait > max_wait:
                                found.append(InvariantViolation(
                                    now,
                                    "anti-starvation-age",
                                    f"packet #{packet.uid} has waited "
                                    f"{wait:.0f} cycles at node "
                                    f"{router.node}/{port.name} "
                                    f"(bound {max_wait:.0f})",
                                ))
                for channel, occupancy, reserved in buffer.credit_state():
                    capacity = buffer.capacity(channel)
                    if reserved < 0 or occupancy + reserved > capacity:
                        found.append(InvariantViolation(
                            now,
                            "buffer-credit",
                            f"node {router.node}/{port.name} {channel}: "
                            f"occupancy={occupancy} reserved={reserved} "
                            f"capacity={capacity}",
                        ))


class ArbitrationInvariants:
    """Per-trial matching validation for the standalone model.

    Wraps :func:`repro.core.types.validate_matching` into the same
    record-or-raise shape as :class:`InvariantChecker`, so the
    standalone model (Figures 8/9) can assert every trial's grants form
    a legal matching -- unique rows/packets/outputs, nominated
    combinations only, free outputs only, group capacities respected.
    """

    def __init__(self, fail_fast: bool = True) -> None:
        self.fail_fast = fail_fast
        self.violations: list[InvariantViolation] = []
        self.checks_run = 0

    @property
    def clean(self) -> bool:
        return not self.violations

    def check_arbitration(
        self,
        nominations: list[Nomination],
        free_outputs: frozenset[int],
        grants: list[Grant],
        trial: int = 0,
    ) -> None:
        self.checks_run += 1
        try:
            validate_matching(nominations, grants, free_outputs)
        except ValueError as error:
            violation = InvariantViolation(
                float(trial), "arbitration-matching", str(error)
            )
            self.violations.append(violation)
            if self.fail_fast:
                raise InvariantViolationError([violation]) from error


@dataclass
class ResilienceReport:
    """Aggregate outcome of a guarded run (sweeps attach one per point)."""

    invariant_violations: int = 0
    watchdog_fires: int = 0
    faults_injected: int = 0
    packets_dropped: int = 0
    link_retries: int = 0
    attempts: int = 1
    resumed: bool = False

    def as_dict(self) -> dict:
        return dict(self.__dict__)

    @classmethod
    def from_dict(cls, data: dict) -> "ResilienceReport":
        report = cls()
        for key, value in data.items():
            if hasattr(report, key):
                setattr(report, key, value)
        return report
