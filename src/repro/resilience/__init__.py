"""Resilience layer: fault injection, invariants, watchdog, checkpoints.

The paper's central claim -- SPAA matches PIM1/WFA while the Rotary
Rule prevents post-saturation collapse -- is only credible if the
simulator provably conserves packets and makes forward progress deep
into saturation, exactly the regime where silent bugs hide.  This
package makes the reproduction hard to break and loud when it does:

* :mod:`repro.resilience.faults` -- a seeded, config-driven
  :class:`FaultInjector` that drops/corrupts flits on links (recovered
  by the 21364-style link retry protocol), suppresses or mis-routes
  individual arbiter grants, and stalls a router for N cycles;
* :mod:`repro.resilience.invariants` -- an :class:`InvariantChecker`
  that continuously asserts packet conservation, duplicate-free
  in-flight ids, buffer-credit sanity and the anti-starvation age
  bound, plus :class:`ArbitrationInvariants` for the standalone model;
* :mod:`repro.resilience.watchdog` -- a :class:`ProgressWatchdog` that
  detects deadlock/livelock and emits a structured per-port occupancy
  diagnostic instead of hanging;
* :mod:`repro.resilience.checkpoint` -- a :class:`SweepJournal` that
  persists completed BNF points so long sweeps survive crashes and can
  resume a partial curve (torn-tail tolerant: a half-written final
  line from a crash is salvaged, not fatal);
* :mod:`repro.resilience.supervisor` -- a :class:`PointSupervisor`
  that runs pool workers under heartbeats, per-task deadlines and
  poison-point quarantine, reaping and replenishing instead of
  hanging or aborting.
"""

from repro.resilience.backoff import jittered_backoff
from repro.resilience.checkpoint import (
    JournalLock,
    JournalLockError,
    SweepJournal,
    rate_key,
)
from repro.resilience.leases import Lease, LeaseTable
from repro.resilience.supervisor import (
    PointSupervisor,
    SupervisorConfig,
    SupervisorEvent,
)
from repro.resilience.faults import (
    REASON_LINK_RETRIES_EXHAUSTED,
    FaultConfig,
    FaultInjector,
    parse_fault_spec,
    permanent_stall,
)
from repro.resilience.invariants import (
    ArbitrationInvariants,
    InFlightTracker,
    InvariantChecker,
    InvariantConfig,
    InvariantViolation,
    InvariantViolationError,
    ResilienceReport,
)
from repro.resilience.watchdog import (
    DeadlockError,
    ProgressWatchdog,
    WatchdogConfig,
)

__all__ = [
    "ArbitrationInvariants",
    "JournalLock",
    "JournalLockError",
    "Lease",
    "LeaseTable",
    "DeadlockError",
    "FaultConfig",
    "FaultInjector",
    "InFlightTracker",
    "InvariantChecker",
    "InvariantConfig",
    "InvariantViolation",
    "InvariantViolationError",
    "PointSupervisor",
    "ProgressWatchdog",
    "REASON_LINK_RETRIES_EXHAUSTED",
    "ResilienceReport",
    "SupervisorConfig",
    "SupervisorEvent",
    "SweepJournal",
    "WatchdogConfig",
    "jittered_backoff",
    "parse_fault_spec",
    "permanent_stall",
    "rate_key",
]
