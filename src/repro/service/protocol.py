"""JSON-lines wire protocol between coordinator and fleet workers.

Frames are one JSON object per ``\\n``-terminated line -- trivially
debuggable with ``nc`` and immune to partial-read framing bugs.  Task
payloads (the picklable :class:`~repro.sim.parallel.PointSpec` /
scenario specs the single-host pools already ship between processes)
ride *inside* a frame as base64-wrapped pickle, so a remote worker
rebuilds exactly the object a local worker would have received and
results stay bitwise identical to a serial run.

Frame vocabulary (``type`` field):

===============  =======================  ==============================
frame            direction                meaning
===============  =======================  ==============================
``hello``        worker -> coordinator    join the fleet (``name``)
``welcome``      coordinator -> worker    accepted; carries ``session``
``task``         coordinator -> worker    a leased task (``token``,
                                          ``dispatch``, ``task_kind``,
                                          ``payload``)
``heartbeat``    worker -> coordinator    liveness for the running task
``result``       worker -> coordinator    task finished (``payload``)
``error``        worker -> coordinator    runner raised (``detail``)
``shutdown``     coordinator -> worker    campaign over; exit cleanly
``status``       client -> coordinator    one-shot status query
``submit``       client -> coordinator    one-shot job submission
===============  =======================  ==============================

Pickle is only ever decoded from peers that were told where to
connect by the operator who launched the fleet; the service binds to
localhost by default and offers no authentication -- do not expose it
to untrusted networks (see ``docs/service.md``).
"""

from __future__ import annotations

import base64
import json
import pickle
import socket
import threading
from typing import Any

__all__ = [
    "MessageChannel",
    "ProtocolError",
    "connect",
    "decode_payload",
    "encode_payload",
]

#: Bound on one frame's length; a frame larger than this is a protocol
#: violation, not a workload (point specs are tiny, results are small
#: summary dataclasses -- traces travel through the filesystem, not
#: the wire).
MAX_FRAME_BYTES = 32 * 1024 * 1024


class ProtocolError(RuntimeError):
    """A malformed or oversized frame arrived on the wire."""


def encode_payload(obj: Any) -> str:
    """Pickle *obj* and wrap it for transport inside a JSON frame."""
    return base64.b64encode(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def decode_payload(data: str) -> Any:
    """Inverse of :func:`encode_payload`."""
    return pickle.loads(base64.b64decode(data.encode("ascii")))


class MessageChannel:
    """One socket speaking newline-delimited JSON frames.

    Receives are single-threaded (each side has one reader); sends are
    serialized under a lock because the coordinator's pump thread and
    the worker's heartbeat callable both write.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._reader = sock.makefile("rb")
        self._send_lock = threading.Lock()
        self.peer = _peer_name(sock)

    def send(self, frame: dict) -> None:
        """Ship one frame; raises ``OSError`` if the peer is gone."""
        data = json.dumps(frame, separators=(",", ":")).encode("utf-8") + b"\n"
        with self._send_lock:
            self._sock.sendall(data)

    def recv(self) -> dict | None:
        """Block for the next frame; ``None`` on orderly EOF."""
        line = self._reader.readline(MAX_FRAME_BYTES + 1)
        if not line:
            return None
        if len(line) > MAX_FRAME_BYTES:
            raise ProtocolError(
                f"frame exceeds {MAX_FRAME_BYTES} bytes from {self.peer}"
            )
        try:
            frame = json.loads(line)
        except json.JSONDecodeError as error:
            raise ProtocolError(f"bad frame from {self.peer}: {error}") from error
        if not isinstance(frame, dict) or "type" not in frame:
            raise ProtocolError(f"frame without a type from {self.peer}")
        return frame

    def close(self) -> None:
        # Shut the socket down before touching the reader: a peer's
        # reader thread blocked in ``readline`` holds the buffer lock,
        # and closing the file first would wait on that lock forever.
        # The shutdown pops the blocked read with EOF, releasing it.
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._reader.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass


def connect(host: str, port: int, timeout_s: float = 10.0) -> MessageChannel:
    """Dial the coordinator and return the connected channel."""
    sock = socket.create_connection((host, port), timeout=timeout_s)
    sock.settimeout(None)
    return MessageChannel(sock)


def _peer_name(sock: socket.socket) -> str:
    try:
        host, port = sock.getpeername()[:2]
        return f"{host}:{port}"
    except OSError:
        return "<disconnected>"
