"""The service verbs: ``serve``, ``work``, ``submit`` and ``status``.

Usage::

    # coordinator, one-shot job over whoever connects:
    repro-experiments serve chaos --output-dir fleet-out --count 8 \\
        --port 7421 --wait-workers 2
    # workers (any host that can reach the coordinator):
    repro-experiments work --connect cohost:7421 --name worker-a
    # idle coordinator + remote submission:
    repro-experiments serve --port 7421 &
    repro-experiments submit chaos --connect cohost:7421 --output-dir out
    repro-experiments status --connect cohost:7421

``serve`` with a job runs it and then broadcasts ``shutdown`` so the
fleet exits cleanly; ``serve`` without one idles, draining submitted
jobs in arrival order until interrupted.  A SIGKILLed coordinator
restarts with ``--resume``: the journal already holds every completed
point, so only the remainder is re-leased.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.service.jobs import JOB_KINDS, job_from_args, run_job
from repro.service.protocol import connect
from repro.service.server import ServiceServer
from repro.service.worker import WorkerConfig, run_worker

__all__ = ["build_parser", "main"]


def _parse_endpoint(text: str) -> tuple[str, int]:
    host, sep, port = text.rpartition(":")
    if not sep:
        raise SystemExit(f"--connect needs host:port, got {text!r}")
    try:
        return host, int(port)
    except ValueError as error:
        raise SystemExit(f"bad --connect port in {text!r}") from error


def _progress(args: argparse.Namespace):
    if getattr(args, "quiet", False):
        return None
    return lambda message: print(message, file=sys.stderr, flush=True)


def _wait_for_workers(server: ServiceServer, count: int) -> None:
    import time

    while len(server.workers) < count:
        time.sleep(0.05)


def _cmd_serve(args: argparse.Namespace) -> int:
    with ServiceServer(args.host, args.port) as server:
        state = {"state": "idle"}
        server.set_status_provider(
            lambda: {
                "state": state["state"],
                "workers": [w.name for w in server.workers],
            }
        )
        print(
            f"serving on {server.host}:{server.port} "
            f"(session {server.session})",
            file=sys.stderr,
            flush=True,
        )
        try:
            if args.wait_workers:
                _wait_for_workers(server, args.wait_workers)
            if args.job is not None:
                job = job_from_args(args)
                state["state"] = f"running {job['kind']}"
                return run_job(server, job, progress=_progress(args))
            while True:  # idle: drain submitted jobs until interrupted
                frame = server.jobs.get()
                job = frame.get("job") or {}
                state["state"] = f"running {job.get('kind')}"
                code = run_job(server, job, progress=_progress(args))
                state["state"] = "idle"
                if code != 0:
                    print(
                        f"submitted {job.get('kind')} job exited {code}",
                        file=sys.stderr,
                        flush=True,
                    )
        except KeyboardInterrupt:
            return 130
        finally:
            server.broadcast({"type": "shutdown"})


def _cmd_work(args: argparse.Namespace) -> int:
    host, port = _parse_endpoint(args.connect)
    return run_worker(
        WorkerConfig(
            host=host,
            port=port,
            name=args.name or "",
            max_reconnects=args.max_reconnects,
            seed=args.seed,
        )
    )


def _cmd_submit(args: argparse.Namespace) -> int:
    host, port = _parse_endpoint(args.connect)
    job = job_from_args(args)
    channel = connect(host, port)
    try:
        channel.send({"type": "submit", "job": job})
        reply = channel.recv()
    finally:
        channel.close()
    if reply is None or reply.get("type") != "ok":
        print("coordinator rejected the submission", file=sys.stderr)
        return 1
    print(f"submitted {job['kind']} to session {reply.get('session')}")
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    host, port = _parse_endpoint(args.connect)
    channel = connect(host, port)
    try:
        channel.send({"type": "status"})
        reply = channel.recv()
    finally:
        channel.close()
    if reply is None:
        print("no status reply", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(reply, indent=2, sort_keys=True))
        return 0
    workers = reply.get("workers") or []
    print(f"session:  {reply.get('session')}")
    print(f"state:    {reply.get('state')}")
    print(f"workers:  {len(workers)}" + (f" ({', '.join(workers)})" if workers else ""))
    return 0


def _add_job_flags(parser: argparse.ArgumentParser) -> None:
    """The job-describing flags ``serve`` and ``submit`` share."""
    parser.add_argument(
        "job",
        nargs="?" if parser.prog.endswith("serve") else None,
        choices=JOB_KINDS,
        help="what to run over the fleet (fig10, fig11 or chaos)",
    )
    parser.add_argument(
        "--preset",
        default="fast",
        help="figure preset (paper/fast/smoke) or chaos sizing (fast/smoke)",
    )
    parser.add_argument(
        "--panel", default=None, help="restrict fig10/fig11 to one panel"
    )
    parser.add_argument(
        "--telemetry-dir", type=Path, default=None,
        help="fig10/fig11: per-point JSONL traces + sweep manifests here",
    )
    parser.add_argument(
        "--journal-dir", type=Path, default=None,
        help="fig10/fig11: per-panel sweep journals under this directory",
    )
    parser.add_argument(
        "--output", type=Path, default=None,
        help="fig10/fig11: also write the figure report here",
    )
    parser.add_argument(
        "--max-attempts", type=int, default=1,
        help="fig10/fig11: in-task tries per point (default 1)",
    )
    parser.add_argument(
        "--output-dir", type=Path, default=None,
        help="chaos: campaign directory (journal, traces/, bundles/)",
    )
    parser.add_argument("--seed", type=int, default=0, help="chaos: campaign seed")
    parser.add_argument(
        "--count", type=int, default=20, help="chaos: scenarios to generate"
    )
    parser.add_argument(
        "--inject-deadlock", action="store_true",
        help="chaos: append the guaranteed-deadlock scenario",
    )
    parser.add_argument(
        "--no-standalone", action="store_true",
        help="chaos: timing-model scenarios only",
    )
    parser.add_argument(
        "--no-traces", action="store_true",
        help="chaos: skip per-scenario telemetry traces",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="skip work already completed in the journal",
    )
    parser.add_argument(
        "--point-timeout", type=float, default=None, metavar="SECONDS",
        help="lease deadline & heartbeat-staleness bound per point; a "
             "worker past either is kicked and the point re-leased",
    )
    parser.add_argument(
        "--quarantine-after", type=int, default=3, metavar="K",
        help="quarantine a point after K lost/kicked workers (default 3)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress progress lines"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Distributed sweep/chaos service: a lease-based coordinator "
            "plus remote workers (see docs/service.md)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve_p = sub.add_parser(
        "serve", help="run the coordinator (one-shot job, or idle + submit)"
    )
    serve_p.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default 127.0.0.1; the service is "
             "unauthenticated -- do not expose it to untrusted networks)",
    )
    serve_p.add_argument(
        "--port", type=int, default=0,
        help="listen port (default 0 = ephemeral, printed on stderr)",
    )
    serve_p.add_argument(
        "--wait-workers", type=int, default=0, metavar="N",
        help="wait until N workers have joined before starting the job",
    )
    _add_job_flags(serve_p)
    serve_p.set_defaults(func=_cmd_serve)

    work_p = sub.add_parser("work", help="join a coordinator as a fleet worker")
    work_p.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="the coordinator to join",
    )
    work_p.add_argument(
        "--name", default=None, help="worker name shown in status/traces"
    )
    work_p.add_argument(
        "--seed", type=int, default=0,
        help="seed for the jittered reconnect backoff (default 0)",
    )
    work_p.add_argument(
        "--max-reconnects", type=int, default=None, metavar="N",
        help="give up after N consecutive failed connection attempts "
             "(default: retry until shutdown)",
    )
    work_p.set_defaults(func=_cmd_work)

    submit_p = sub.add_parser(
        "submit", help="hand a job to an idle (serve, no job) coordinator"
    )
    submit_p.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="the coordinator to submit to",
    )
    _add_job_flags(submit_p)
    submit_p.set_defaults(func=_cmd_submit)

    status_p = sub.add_parser("status", help="query a coordinator's status")
    status_p.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="the coordinator to query",
    )
    status_p.add_argument(
        "--json", action="store_true", help="print the raw status frame"
    )
    status_p.set_defaults(func=_cmd_status)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
