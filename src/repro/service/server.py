"""The coordinator's listening side: sockets in, one inbox queue out.

:class:`ServiceServer` owns every thread the service needs -- one
acceptor plus one reader per connection -- and funnels everything they
hear into a single ``queue.Queue``, so the scheduling brain
(:class:`~repro.service.coordinator.FleetCoordinator`) stays
single-threaded and can share its event loop shape (and its
:class:`~repro.resilience.leases.LeaseTable`) with the single-host
supervisor.

A connection's first frame routes it:

* ``hello`` -- a fleet worker joining; it stays connected and its
  frames flow into the inbox as ``("join", conn)`` /
  ``("message", conn, frame)`` / ``("leave", conn)`` items;
* ``status`` -- a one-shot client; answered from the status provider
  and closed without touching the inbox;
* ``submit`` -- a one-shot client handing in a job; the decoded frame
  is pushed onto :attr:`jobs` and acknowledged.

The server restarts cleanly after a coordinator SIGKILL because it
holds no durable state at all -- the journal is the only truth, and
rebuilding the lease table from it is the coordinator's job.
"""

from __future__ import annotations

import queue
import secrets
import socket
import threading
from typing import Any, Callable

from repro.service.protocol import MessageChannel, ProtocolError

__all__ = ["ServiceServer", "WorkerConnection"]


class WorkerConnection:
    """One joined fleet worker, as the coordinator sees it."""

    def __init__(self, channel: MessageChannel, name: str) -> None:
        self.channel = channel
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WorkerConnection({self.name!r}, {self.channel.peer})"


class ServiceServer:
    """Accept loop + per-connection readers feeding one inbox queue.

    Usage::

        with ServiceServer(host, port) as server:
            coordinator = FleetCoordinator(server, config)
            ...

    ``port=0`` binds an ephemeral port (tests); :attr:`port` reports
    the bound one either way.  Each server run mints a random
    ``session`` id that workers echo back, so a result produced for a
    previous coordinator incarnation can never be mistaken for this
    one's.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self.session = secrets.token_hex(8)
        #: ("join", wc) / ("message", wc, frame) / ("leave", wc)
        self.inbox: "queue.Queue[tuple]" = queue.Queue()
        #: decoded ``submit`` frames awaiting the serve loop.
        self.jobs: "queue.Queue[dict]" = queue.Queue()
        self._status_provider: Callable[[], dict] = lambda: {}
        self._workers: list[WorkerConnection] = []
        self._lock = threading.Lock()
        self._closed = False
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen()
        self.host, self.port = self._listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="service-accept", daemon=True
        )
        self._accept_thread.start()

    # -- lifecycle -------------------------------------------------------

    def __enter__(self) -> "ServiceServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Stop accepting and drop every connection."""
        if self._closed:
            return
        self._closed = True
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            workers = list(self._workers)
            self._workers.clear()
        for worker in workers:
            worker.channel.close()

    # -- the coordinator's handles ---------------------------------------

    def set_status_provider(self, provider: Callable[[], dict]) -> None:
        """Install the callable answering one-shot ``status`` queries."""
        self._status_provider = provider

    @property
    def workers(self) -> list[WorkerConnection]:
        with self._lock:
            return list(self._workers)

    def kick(self, worker: WorkerConnection) -> None:
        """Forcibly drop a worker (its reader then reports ``leave``)."""
        with self._lock:
            if worker in self._workers:
                self._workers.remove(worker)
        worker.channel.close()

    def broadcast(self, frame: dict) -> None:
        """Best-effort frame to every joined worker (e.g. shutdown)."""
        for worker in self.workers:
            try:
                worker.channel.send(frame)
            except OSError:
                pass

    # -- threads ---------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            threading.Thread(
                target=self._route_connection,
                args=(MessageChannel(sock),),
                name=f"service-conn-{sock.fileno()}",
                daemon=True,
            ).start()

    def _route_connection(self, channel: MessageChannel) -> None:
        try:
            frame = channel.recv()
        except (ProtocolError, OSError):
            channel.close()
            return
        if frame is None:
            channel.close()
            return
        kind = frame.get("type")
        if kind == "hello":
            self._serve_worker(channel, frame)
        elif kind == "status":
            self._answer(channel, self._safe_status())
        elif kind == "submit":
            self.jobs.put(frame)
            self._answer(channel, {"type": "ok", "session": self.session})
        else:
            channel.close()

    def _answer(self, channel: MessageChannel, reply: dict) -> None:
        try:
            channel.send(reply)
        except OSError:
            pass
        channel.close()

    def _safe_status(self) -> dict:
        try:
            status = dict(self._status_provider())
        except Exception as error:  # noqa: BLE001 - never kill the reader
            status = {"error": f"{type(error).__name__}: {error}"}
        status["type"] = "status"
        status["session"] = self.session
        return status

    def _serve_worker(self, channel: MessageChannel, hello: dict) -> None:
        worker = WorkerConnection(
            channel, str(hello.get("name") or channel.peer)
        )
        try:
            channel.send({"type": "welcome", "session": self.session})
        except OSError:
            channel.close()
            return
        with self._lock:
            if self._closed:
                channel.close()
                return
            self._workers.append(worker)
        self.inbox.put(("join", worker))
        while True:
            try:
                frame = channel.recv()
            except (ProtocolError, OSError):
                frame = None
            if frame is None:
                break
            self.inbox.put(("message", worker, frame))
        with self._lock:
            if worker in self._workers:
                self._workers.remove(worker)
        channel.close()
        self.inbox.put(("leave", worker))
