"""Lease-based fleet scheduler: the distributed ``PointSupervisor``.

:class:`FleetCoordinator` drives remote workers through a
:class:`~repro.service.server.ServiceServer` with exactly the
interface of :class:`~repro.resilience.supervisor.PointSupervisor`
(``submit`` / ``next_event`` / ``outstanding`` / ``summary``), so
:class:`~repro.sim.parallel.ParallelSweepRunner` and the chaos
campaign swap it in without changing their event loops.  Policy is
the same :class:`~repro.resilience.supervisor.SupervisorConfig` --
deadlines, staleness, quarantine -- and the bookkeeping is the same
:class:`~repro.resilience.leases.LeaseTable`; only the *holder*
changes from a local process to a remote connection.

Exactly-once recording over at-least-once dispatch:

* every grant stamps the table-unique lease ``dispatch`` id onto the
  task frame, and workers echo it on heartbeats and results;
* a delivery whose ``(token, dispatch)`` does not match the live
  lease held by *that* connection is stale -- its lease expired and
  the task was re-granted -- and is counted and discarded, never
  journalled;
* the coordinator stays the journal's single writer; workers never
  touch it.

The coordinator holds no durable state.  After a SIGKILL the caller
reconstructs "what is already done" from the journal (the same
``--resume`` path a single-host run uses) and only the remainder is
ever leased out again.
"""

from __future__ import annotations

import heapq
import itertools
import queue
import secrets
import time
from typing import Any

from repro.resilience.leases import LeaseTable
from repro.resilience.supervisor import SupervisorConfig, SupervisorEvent
from repro.service.protocol import decode_payload, encode_payload
from repro.service.server import ServiceServer, WorkerConnection

__all__ = ["FleetCoordinator"]


class FleetCoordinator:
    """Schedule submitted tasks across the server's joined workers.

    Drop-in for :class:`~repro.resilience.supervisor.PointSupervisor`
    (same events, same ``resubmit_crashed`` semantics); *task_kind*
    names the worker-side runner (``"sweep-point"`` or
    ``"chaos-scenario"``, see ``repro.service.worker.TASK_RUNNERS``).

    ``close()`` does **not** close the shared server: one serve loop
    runs many sweeps (fig10 panels, campaign phases) over one fleet.
    """

    def __init__(
        self,
        server: ServiceServer,
        config: SupervisorConfig | None = None,
        telemetry=None,
        resubmit_crashed: bool = True,
        task_kind: str = "sweep-point",
    ) -> None:
        self.server = server
        self.config = config if config is not None else SupervisorConfig()
        self.telemetry = telemetry
        self.resubmit_crashed = resubmit_crashed
        self.task_kind = task_kind
        self._leases = LeaseTable(
            deadline_s=self.config.point_timeout_s,
            stale_s=self.config.heartbeat_stale_s,
        )
        #: (ready_at, seq, task_id) min-heap, as in the supervisor.
        self._ready: list[tuple[float, int, Any]] = []
        self._seq = itertools.count()
        self._payloads: dict[Any, Any] = {}
        # Tokens travel where task ids cannot (task ids are arbitrary
        # tuples; frames are JSON).  The nonce keeps tokens unique
        # across successive coordinators sharing one server, so a
        # previous sweep's straggler result can never match.
        self._token_prefix = secrets.token_hex(4)
        self._tokens: dict[Any, str] = {}
        self._tasks_by_token: dict[str, Any] = {}
        self._events: list[SupervisorEvent] = []
        self._started = time.monotonic()
        self._closed = False
        self.stats = {
            "worker_lost": 0,
            "timeouts": 0,
            "quarantined": 0,
            "respawns": 0,
            "leases": 0,
            "reassignments": 0,
            "duplicates": 0,
            "worker_connects": 0,
        }

    # -- lifecycle -------------------------------------------------------

    def __enter__(self) -> "FleetCoordinator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Stop scheduling; the server (and its workers) live on."""
        self._closed = True

    # -- submitting and consuming ----------------------------------------

    def submit(self, task_id: Any, payload: Any, delay_s: float = 0.0) -> None:
        """Queue *payload* under *task_id*; *delay_s* defers dispatch."""
        if self._closed:
            raise RuntimeError("coordinator is closed")
        self._payloads[task_id] = payload
        if task_id not in self._tokens:
            token = f"{self._token_prefix}-{next(self._seq)}"
            self._tokens[task_id] = token
            self._tasks_by_token[token] = task_id
        heapq.heappush(
            self._ready,
            (time.monotonic() + max(0.0, delay_s), next(self._seq), task_id),
        )

    @property
    def outstanding(self) -> bool:
        """True while any task is queued, leased or awaiting delivery."""
        return bool(self._events or self._ready or len(self._leases))

    def next_event(self) -> SupervisorEvent:
        """Block until the next :class:`SupervisorEvent` is available."""
        while True:
            if self._events:
                return self._events.pop(0)
            if not self.outstanding:
                raise RuntimeError("no outstanding fleet work")
            self._pump()

    def summary(self) -> dict:
        """The manifest's supervisor section: config + live totals."""
        return {**self.config.as_dict(), **self.stats}

    def status(self) -> dict:
        """One-shot snapshot for the ``status`` CLI verb."""
        return {
            "workers": [w.name for w in self.server.workers],
            "queued": len(self._ready),
            "leased": len(self._leases),
            "stats": dict(self.stats),
        }

    # -- the scheduling loop ---------------------------------------------

    def _pump(self) -> None:
        self._dispatch_ready()
        timeout = self.config.poll_interval_s
        if self._ready:
            until_due = self._ready[0][0] - time.monotonic()
            if until_due > 0.0:
                timeout = min(timeout, until_due)
        try:
            item = self.server.inbox.get(timeout=timeout)
        except queue.Empty:
            item = None
        while item is not None:
            self._handle(item)
            try:
                item = self.server.inbox.get_nowait()
            except queue.Empty:
                item = None
        self._check_leases()

    def _idle_worker(self) -> WorkerConnection | None:
        # The server's live connection list is the roster (so a fleet
        # assembled for a previous sweep carries over); a worker is
        # idle when it holds no lease in *this* coordinator's table.
        for worker in self.server.workers:
            if not self._leases.held_by(worker):
                return worker
        return None

    def _dispatch_ready(self) -> None:
        now = time.monotonic()
        while self._ready and self._ready[0][0] <= now:
            worker = self._idle_worker()
            if worker is None:
                return
            _, _, task_id = heapq.heappop(self._ready)
            reassigned = self._leases.crashes(task_id) > 0
            lease = self._leases.grant(task_id, worker, now)
            self.stats["leases"] += 1
            if reassigned:
                self.stats["reassignments"] += 1
            if self.telemetry is not None and self.telemetry.enabled:
                self.telemetry.on_lease_granted(
                    time.monotonic() - self._started,
                    str(task_id),
                    worker.name,
                    lease.dispatch,
                    reassigned,
                )
            frame = {
                "type": "task",
                "token": self._tokens[task_id],
                "dispatch": lease.dispatch,
                "task_kind": self.task_kind,
                "payload": encode_payload(self._payloads[task_id]),
            }
            try:
                worker.channel.send(frame)
            except OSError:
                # Connection died under us: requeue (the task never
                # ran, so this is not a crash) and let the reader's
                # ``leave`` clean the roster.
                self._leases.release(task_id)
                self.stats["leases"] -= 1
                if reassigned:
                    self.stats["reassignments"] -= 1
                self.submit(task_id, self._payloads[task_id])
                self.server.kick(worker)

    def _handle(self, item: tuple) -> None:
        kind = item[0]
        if kind == "join":
            self.stats["worker_connects"] += 1
            if self.telemetry is not None and self.telemetry.enabled:
                self.telemetry.on_worker_connect(
                    time.monotonic() - self._started, item[1].name
                )
        elif kind == "leave":
            self._worker_left(item[1])
        elif kind == "message":
            self._worker_message(item[1], item[2])

    def _worker_left(self, worker: WorkerConnection) -> None:
        for lease in self._leases.held_by(worker):
            self._leases.release(lease.task_id)
            self._record_crash(
                "worker-lost",
                lease.task_id,
                f"worker {worker.name} disconnected mid-task",
            )

    def _worker_message(self, worker: WorkerConnection, frame: dict) -> None:
        kind = frame.get("type")
        if kind == "heartbeat":
            lease = self._live_lease(worker, frame)
            if lease is not None:
                self._leases.beat(lease.task_id)
        elif kind == "result":
            lease = self._live_lease(worker, frame)
            if lease is None:
                self._count_duplicate(worker, frame)
                return
            task_id = lease.task_id
            self._leases.release(task_id)
            self._events.append(
                SupervisorEvent(
                    kind="result",
                    task_id=task_id,
                    result=decode_payload(frame["payload"]),
                    crashes=self._leases.crashes(task_id),
                )
            )
        elif kind == "error":
            lease = self._live_lease(worker, frame)
            if lease is None:
                self._count_duplicate(worker, frame)
                return
            task_id = lease.task_id
            self._leases.release(task_id)
            self._record_crash(
                "worker-lost",
                task_id,
                str(frame.get("detail", "worker runner raised")),
            )

    def _live_lease(self, worker: WorkerConnection, frame: dict):
        """The live lease a delivery matches, else ``None`` (stale)."""
        task_id = self._tasks_by_token.get(frame.get("token"))
        if task_id is None:
            return None
        lease = self._leases.lease_for(task_id)
        if (
            lease is None
            or lease.dispatch != frame.get("dispatch")
            or lease.holder is not worker
        ):
            return None
        return lease

    def _count_duplicate(self, worker: WorkerConnection, frame: dict) -> None:
        self.stats["duplicates"] += 1
        if self.telemetry is not None and self.telemetry.enabled:
            self.telemetry.on_duplicate_result(
                time.monotonic() - self._started,
                str(self._tasks_by_token.get(frame.get("token"), "<unknown>")),
                worker.name,
            )

    def _check_leases(self) -> None:
        for lease, detail in self._leases.expired():
            worker = lease.holder
            self._leases.release(lease.task_id)
            if self.telemetry is not None and self.telemetry.enabled:
                self.telemetry.on_lease_expired(
                    time.monotonic() - self._started,
                    str(lease.task_id),
                    worker.name,
                    detail,
                )
            # The remote analogue of reaping: drop the connection so
            # a wedged worker cannot later deliver a stale result as
            # a live one (and its process notices on reconnect).
            self.server.kick(worker)
            self._record_crash("timeout", lease.task_id, detail)

    def _record_crash(self, kind: str, task_id: Any, detail: str) -> None:
        count = self._leases.record_crash(task_id)
        elapsed = time.monotonic() - self._started
        if kind == "timeout":
            self.stats["timeouts"] += 1
            if self.telemetry is not None and self.telemetry.enabled:
                self.telemetry.on_point_timeout(
                    elapsed, str(task_id), detail, count
                )
        else:
            self.stats["worker_lost"] += 1
            if self.telemetry is not None and self.telemetry.enabled:
                self.telemetry.on_worker_lost(
                    elapsed, str(task_id), detail, count
                )
        self._events.append(
            SupervisorEvent(
                kind=kind, task_id=task_id, detail=detail, crashes=count
            )
        )
        if not self.resubmit_crashed:
            return
        if not self._leases.should_quarantine(
            task_id, self.config.quarantine_after
        ):
            self.submit(task_id, self._payloads[task_id])
            return
        self.stats["quarantined"] += 1
        if self.telemetry is not None and self.telemetry.enabled:
            self.telemetry.on_quarantine(
                time.monotonic() - self._started, str(task_id), count, detail
            )
        self._events.append(
            SupervisorEvent(
                kind="quarantined",
                task_id=task_id,
                detail=detail,
                crashes=count,
            )
        )
