"""Distributed sweep/chaos service: coordinator, worker fleet, CLI.

This package stretches the single-host supervised pool
(:mod:`repro.resilience.supervisor`) over many hosts with nothing but
the standard library: a TCP coordinator that leases journal keys to
remote workers (``repro-experiments serve``), a worker loop that runs
the exact serial per-point path and streams the simulator's in-band
heartbeats back over the wire (``repro-experiments work``), and a
JSON-lines protocol between them.

The coordinator remains the journal's *single writer*: dispatch is
at-least-once (expired leases are re-granted), recording is
exactly-once (stale deliveries are recognized by their lease dispatch
id and discarded).  See ``docs/service.md`` for the protocol and the
failure matrix.
"""

from repro.service.coordinator import FleetCoordinator
from repro.service.protocol import (
    MessageChannel,
    connect,
    decode_payload,
    encode_payload,
)
from repro.service.server import ServiceServer
from repro.service.worker import FleetWorker, WorkerConfig

__all__ = [
    "FleetCoordinator",
    "FleetWorker",
    "MessageChannel",
    "ServiceServer",
    "WorkerConfig",
    "connect",
    "decode_payload",
    "encode_payload",
]
