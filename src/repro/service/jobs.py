"""Job descriptions the service runs: figure sweeps and chaos campaigns.

A *job* is a plain JSON dict -- buildable from ``serve``'s own flags
or shipped over the wire by ``submit`` -- that :func:`run_job` turns
into the exact same calls the normal CLI makes, with the live
:class:`~repro.service.server.ServiceServer` threaded in as the
``fleet`` backend.  Everything else (journals, resume, manifests,
bundle capture) is untouched, which is what keeps fleet artifacts
byte-comparable to single-host ones.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Callable

from repro.resilience.supervisor import SupervisorConfig
from repro.service.server import ServiceServer

__all__ = ["JOB_KINDS", "job_from_args", "run_job"]

JOB_KINDS = ("fig10", "fig11", "chaos")


def job_from_args(args) -> dict:
    """The JSON job dict for ``serve``/``submit``'s parsed flags."""
    job = {
        "kind": args.job,
        "resume": bool(args.resume),
        "point_timeout": args.point_timeout,
        "quarantine_after": args.quarantine_after,
    }
    if args.job == "chaos":
        if args.output_dir is None:
            raise SystemExit("chaos jobs require --output-dir")
        job.update(
            output_dir=str(args.output_dir),
            seed=args.seed,
            count=args.count,
            preset=args.preset,
            inject_deadlock=bool(args.inject_deadlock),
            include_standalone=not args.no_standalone,
            traces=not args.no_traces,
        )
    else:
        job.update(
            preset=args.preset,
            panel=args.panel,
            telemetry_dir=(
                str(args.telemetry_dir)
                if args.telemetry_dir is not None
                else None
            ),
            journal_dir=(
                str(args.journal_dir)
                if args.journal_dir is not None
                else None
            ),
            max_attempts=args.max_attempts,
            output=str(args.output) if args.output is not None else None,
        )
        if job["resume"] and job["journal_dir"] is None:
            raise SystemExit("--resume requires --journal-dir")
    return job


def _supervisor_for(job: dict) -> SupervisorConfig | None:
    timeout = job.get("point_timeout")
    if timeout is None:
        return None
    if timeout <= 0:
        raise SystemExit("--point-timeout must be positive")
    return SupervisorConfig(
        point_timeout_s=timeout,
        heartbeat_stale_s=timeout,
        quarantine_after=int(job.get("quarantine_after") or 3),
    )


def run_job(
    server: ServiceServer,
    job: dict,
    progress: Callable[[str], None] | None = None,
) -> int:
    """Run one job over the fleet; returns the job's exit code."""
    kind = job.get("kind")
    if kind in ("fig10", "fig11"):
        return _run_figure_job(server, job, progress)
    if kind == "chaos":
        return _run_chaos_job(server, job, progress)
    raise SystemExit(f"unknown job kind: {kind!r}")


def _run_figure_job(
    server: ServiceServer,
    job: dict,
    progress: Callable[[str], None] | None,
) -> int:
    from repro.experiments import figure10, figure11
    from repro.sim.sweep import SweepGuard

    module = figure10 if job["kind"] == "fig10" else figure11
    panels = module.PANELS
    if job.get("panel"):
        wanted = str(job["panel"]).lower()
        panels = tuple(
            panel
            for panel in panels
            if wanted in panel.name.lower()
            or wanted == getattr(panel, "key", "").lower()
        )
        if not panels:
            raise SystemExit(f"no {job['kind']} panel matches {job['panel']!r}")
    guard = SweepGuard(
        journal_path=job.get("journal_dir"),
        resume=bool(job.get("resume")),
        max_attempts=int(job.get("max_attempts") or 1),
        supervisor=_supervisor_for(job),
        fleet=server,
    )
    runner = module.run_figure10 if job["kind"] == "fig10" else module.run_figure11
    formatter = (
        module.format_figure10 if job["kind"] == "fig10" else module.format_figure11
    )
    result = runner(
        preset=job.get("preset", "fast"),
        panels=panels,
        progress=progress,
        telemetry_dir=job.get("telemetry_dir"),
        guard=guard,
    )
    text = formatter(result)
    print(text)
    if job.get("output"):
        path = Path(job["output"])
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text + "\n", encoding="utf-8")
    return 0


def _run_chaos_job(
    server: ServiceServer,
    job: dict,
    progress: Callable[[str], None] | None,
) -> int:
    from repro.chaos.campaign import CampaignConfig, run_campaign
    from repro.chaos.scenario import ScenarioSpace

    config = CampaignConfig(
        output_dir=Path(job["output_dir"]),
        seed=int(job.get("seed") or 0),
        count=int(job.get("count") if job.get("count") is not None else 20),
        space=(
            ScenarioSpace.smoke()
            if job.get("preset") == "smoke"
            else ScenarioSpace()
        ),
        include_standalone=bool(job.get("include_standalone", True)),
        inject_deadlock=bool(job.get("inject_deadlock")),
        resume=bool(job.get("resume")),
        traces=bool(job.get("traces", True)),
        supervisor=_supervisor_for(job),
        fleet=server,
    )
    result = run_campaign(config, progress=progress)
    totals = ", ".join(
        f"{status}={count}" for status, count in result.status_totals().items()
    )
    print(
        f"campaign seed={config.seed}: {len(result.scenarios)} scenario(s), "
        f"{totals or 'nothing ran'}"
    )
    for scenario, outcome, bundle in result.failures:
        print(f"  {scenario.scenario_id}: {outcome.status} -> {bundle}")
    print(f"manifest: {result.manifest_path}")
    crashed = result.crashed
    if crashed:
        print(
            f"{len(crashed)} scenario(s) crashed the harness "
            "(unexplained failures)",
            file=sys.stderr,
        )
        return 1
    return 0
