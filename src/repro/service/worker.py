"""Fleet worker: connect, lease tasks, run the exact serial path.

:class:`FleetWorker` is the remote analogue of the supervised pool's
worker loop (:func:`repro.resilience.supervisor._worker_main`): recv a
task, rebuild the picklable spec, run the same module-level runner a
local worker would (``run_point_attempt`` for sweep points, the
campaign's scenario runner for chaos), and ship the result back.  The
simulator's in-band heartbeats are forwarded over the socket, stamped
with the task's lease ``dispatch`` id so the coordinator can tell a
live worker from a zombie whose lease already expired.

Failure handling is all on the reconnect path:

* connection refused / dropped -- retry with the shared
  :func:`~repro.resilience.backoff.jittered_backoff` (seeded, so a
  fleet of workers restarting together does not stampede the
  coordinator in lockstep);
* a result that cannot be sent is stashed and re-sent after
  reconnecting **iff** the coordinator is the same incarnation (the
  ``welcome`` frame's session id matches); a restarted coordinator
  rebuilt its state from the journal, so the stash is dropped and the
  point simply re-runs -- determinism makes the re-run bit-identical;
* a ``shutdown`` frame ends the loop cleanly (exit code 0).

Workers never touch the journal; the coordinator is its single
writer.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.resilience.backoff import jittered_backoff
from repro.service.protocol import (
    MessageChannel,
    ProtocolError,
    connect,
    decode_payload,
    encode_payload,
)

__all__ = ["FleetWorker", "WorkerConfig", "run_worker"]


def _sweep_point_runner() -> Callable[[Any, Callable], Any]:
    from repro.sim.parallel import run_point_attempt

    return run_point_attempt


def _chaos_scenario_runner() -> Callable[[Any, Callable], Any]:
    from repro.chaos.campaign import _supervised_scenario

    return _supervised_scenario


#: task_kind -> lazy runner factory.  Lazy so importing the service
#: package never drags in the simulator stack.
TASK_RUNNERS: dict[str, Callable[[], Callable[[Any, Callable], Any]]] = {
    "sweep-point": _sweep_point_runner,
    "chaos-scenario": _chaos_scenario_runner,
}


@dataclass(frozen=True)
class WorkerConfig:
    """Where to connect and how stubbornly to reconnect.

    ``reconnect_jitter`` is drawn from a worker-local RNG seeded with
    ``seed`` -- deterministic per worker, decorrelated across a fleet
    started with distinct seeds.
    """

    host: str = "127.0.0.1"
    port: int = 0
    name: str = ""
    reconnect_base_s: float = 0.5
    reconnect_factor: float = 2.0
    reconnect_max_s: float = 30.0
    reconnect_jitter: float = 0.5
    #: consecutive failed connection attempts before giving up;
    #: ``None`` retries until a shutdown arrives.
    max_reconnects: int | None = None
    seed: int = 0


class _SocketHeartbeat:
    """The heartbeat callable threaded into the simulator's tick.

    Wall-throttled like the pipe-based sender; a send failure is
    swallowed -- the coordinator's staleness check notices either
    way, and the serve loop will hit the same dead socket next.
    """

    def __init__(
        self, channel: MessageChannel, min_interval_s: float = 0.2
    ) -> None:
        self._channel = channel
        self._min_interval_s = min_interval_s
        self._token: str | None = None
        self._dispatch: int | None = None
        self._last = 0.0

    def reset(self, token: str, dispatch: int) -> None:
        self._token = token
        self._dispatch = dispatch
        self._last = 0.0
        self()  # one immediate beat: "task received, alive"

    def __call__(self) -> None:
        now = time.monotonic()
        if now - self._last < self._min_interval_s:
            return
        self._last = now
        try:
            self._channel.send(
                {
                    "type": "heartbeat",
                    "token": self._token,
                    "dispatch": self._dispatch,
                }
            )
        except OSError:
            pass


class FleetWorker:
    """One remote worker process's whole life: connect, serve, retry."""

    def __init__(self, config: WorkerConfig) -> None:
        self.config = config
        self._rng = random.Random(config.seed)
        #: (session, frame) of a result the last send failed on.
        self._stash: tuple[str, dict] | None = None
        self._runners: dict[str, Callable[[Any, Callable], Any]] = {}

    def run(self) -> int:
        """Serve until shutdown (0) or reconnects exhausted (1)."""
        attempt = 0
        while True:
            try:
                channel = connect(self.config.host, self.config.port)
            except OSError:
                attempt += 1
                if (
                    self.config.max_reconnects is not None
                    and attempt > self.config.max_reconnects
                ):
                    return 1
                time.sleep(
                    jittered_backoff(
                        self.config.reconnect_base_s,
                        self.config.reconnect_factor,
                        attempt - 1,
                        rng=self._rng,
                        jitter=self.config.reconnect_jitter,
                        max_delay=self.config.reconnect_max_s,
                    )
                )
                continue
            attempt = 0
            try:
                done = self._serve(channel)
            finally:
                channel.close()
            if done:
                return 0

    # -- one connection's serve loop -------------------------------------

    def _serve(self, channel: MessageChannel) -> bool:
        """True when a shutdown ends the worker, False to reconnect."""
        try:
            channel.send({"type": "hello", "name": self.config.name})
            welcome = channel.recv()
        except (OSError, ProtocolError):
            return False
        if welcome is None or welcome.get("type") != "welcome":
            return False
        session = str(welcome.get("session", ""))
        if not self._flush_stash(channel, session):
            return False
        heartbeat = _SocketHeartbeat(channel)
        while True:
            try:
                frame = channel.recv()
            except (OSError, ProtocolError):
                return False
            if frame is None:
                return False
            kind = frame.get("type")
            if kind == "shutdown":
                return True
            if kind != "task":
                continue
            reply = self._run_task(frame, heartbeat)
            try:
                channel.send(reply)
            except OSError:
                # Coordinator gone mid-send: keep the result for the
                # same incarnation, then reconnect.
                self._stash = (session, reply)
                return False

    def _flush_stash(self, channel: MessageChannel, session: str) -> bool:
        if self._stash is None:
            return True
        stashed_session, reply = self._stash
        self._stash = None
        if stashed_session != session:
            # New coordinator incarnation: it rebuilt from the journal
            # and will re-lease anything unfinished; the stale result
            # would only be discarded as a duplicate.
            return True
        try:
            channel.send(reply)
        except OSError:
            self._stash = (stashed_session, reply)
            return False
        return True

    def _run_task(self, frame: dict, heartbeat: _SocketHeartbeat) -> dict:
        token = str(frame.get("token"))
        dispatch = frame.get("dispatch")
        base = {"token": token, "dispatch": dispatch}
        heartbeat.reset(token, dispatch)
        try:
            runner = self._runner(str(frame.get("task_kind")))
            payload = decode_payload(frame["payload"])
            result = runner(payload, heartbeat)
            return {
                "type": "result",
                "payload": encode_payload(result),
                **base,
            }
        except BaseException as error:  # noqa: BLE001 - report, stay alive
            return {
                "type": "error",
                "detail": f"{type(error).__name__}: {error}",
                **base,
            }

    def _runner(self, task_kind: str) -> Callable[[Any, Callable], Any]:
        runner = self._runners.get(task_kind)
        if runner is None:
            factory = TASK_RUNNERS.get(task_kind)
            if factory is None:
                raise ValueError(f"unknown task kind: {task_kind!r}")
            runner = self._runners[task_kind] = factory()
        return runner


def run_worker(config: WorkerConfig) -> int:
    """Module-level entry point (spawnable by tests and the CLI)."""
    return FleetWorker(config).run()
