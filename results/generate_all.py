#!/usr/bin/env python3
"""Regenerate every figure's data for EXPERIMENTS.md.

Standalone figures run at full paper scale (1000 trials); the timing
figures run at the ``smoke`` preset with slightly reduced rate grids so
the whole script finishes on a laptop-class single core in under an
hour.  ``repro-experiments all --preset paper`` is the full-scale
version of the same thing.
"""

import time
from pathlib import Path

from repro.experiments import claims, figure8, figure9, figure10, figure11

RESULTS = Path(__file__).parent
PRESET = "smoke"
RATES = (0.005, 0.015, 0.03, 0.045, 0.065)


def save(name: str, text: str, started: float) -> None:
    elapsed = time.time() - started
    (RESULTS / name).write_text(text + f"\n\n[generated in {elapsed:.1f}s]\n")
    print(f"{name} done in {elapsed:.1f}s", flush=True)


def fresh(name: str) -> bool:
    """Skip results already produced by an earlier (better) run."""
    return not (RESULTS / name).exists()


def main() -> None:
    if fresh("fig8.txt"):
        t = time.time()
        save("fig8.txt",
             figure8.format_figure8(figure8.run_figure8(trials=1000)), t)

    if fresh("fig9.txt"):
        t = time.time()
        save("fig9.txt",
             figure9.format_figure9(figure9.run_figure9(trials=1000)), t)

    if fresh("claims.txt"):
        t = time.time()
        result = claims.format_claims(
            claims.run_arb_latency_cost(preset=PRESET),
            claims.run_pipelining_gain(preset=PRESET),
        )
        save("claims.txt", result, t)

    panels10 = tuple(
        figure10.Panel(
            p.name, p.width, p.height, p.pattern, RATES,
            headline_latency_ns=p.headline_latency_ns,
            rotary_latency_ns=p.rotary_latency_ns,
        )
        for p in figure10.PANELS
    )
    t = time.time()
    fig10 = figure10.run_figure10(
        preset=PRESET, panels=panels10,
        progress=lambda m: print("  " + m, flush=True),
    )
    save("fig10.txt", figure10.format_figure10(fig10), t)

    panels11 = tuple(
        figure11.ScalingPanel(
            p.key, p.name, p.width, p.height, p.mshr_limit, p.pipeline_scale,
            RATES if p.key != "a" else (0.01, 0.03, 0.06, 0.09, 0.13),
            p.headline_latency_ns, p.baseline,
        )
        for p in figure11.PANELS
    )
    t = time.time()
    fig11 = figure11.run_figure11(
        preset=PRESET, panels=panels11,
        progress=lambda m: print("  " + m, flush=True),
    )
    save("fig11.txt", figure11.format_figure11(fig11), t)


if __name__ == "__main__":
    main()
