"""Unit tests for the Router's nominate/resolve launch machinery.

These build a tiny 2x2 torus of routers by hand (no simulator) and
drive one router through launches directly, checking the readiness
tests, escape routing, credit reservations and grant effects.
"""

import random

import pytest

from repro.core.antistarvation import AntiStarvationConfig, AntiStarvationTracker
from repro.core.registry import ArbiterContext, make_arbiter
from repro.network.channels import (
    BufferPlan,
    adaptive_channel,
    entry_channel,
    escape_channel,
)
from repro.network.packets import Packet, PacketClass
from repro.network.topology import Torus2D
from repro.router.connection_matrix import DEFAULT_CONNECTION_MATRIX
from repro.router.ports import InputPort, OutputPort, TORUS_OUTPUTS, network_rows
from repro.router.router import Router


def build_network(algorithm="SPAA-base", width=2, height=2, plan=None):
    topology = Torus2D(width, height)
    plan = plan or BufferPlan()
    routers = []
    for node in range(topology.num_nodes):
        rng = random.Random(100 + node)
        context = ArbiterContext(16, 7, network_rows(), rng)
        routers.append(
            Router(
                node=node,
                topology=topology,
                arbiter=make_arbiter(algorithm, context),
                buffer_plan=plan,
                matrix=DEFAULT_CONNECTION_MATRIX,
                antistarvation=AntiStarvationTracker(AntiStarvationConfig()),
                rng=rng,
            )
        )
    for router in routers:
        for output in TORUS_OUTPUTS:
            direction = output.direction
            neighbor = routers[topology.neighbor(router.node, direction)]
            in_port = InputPort(int(direction.opposite))
            router.downstream[output] = (neighbor, in_port)
    return topology, routers


def inject(router, packet, port=InputPort.CACHE):
    channel = entry_channel(packet.pclass)
    assert router.buffers[port].inject(packet, channel)
    return channel


class TestNominate:
    def test_empty_router_nominates_nothing(self):
        _, routers = build_network()
        assert routers[0].nominate(0.0, 3.0, fanout=1, nominations_per_port=1) is None

    def test_network_bound_packet_nominated_to_torus_output(self):
        _, routers = build_network()
        packet = Packet(PacketClass.REQUEST, source=0, destination=1)
        inject(routers[0], packet)
        launch = routers[0].nominate(0.0, 3.0, fanout=1, nominations_per_port=1)
        assert launch is not None
        assert len(launch.nominations) == 1
        nom = launch.nominations[0]
        # 0 -> 1 on a 2x2 torus: one hop east (or west; tie resolves east).
        assert nom.outputs == (int(OutputPort.EAST),)

    def test_local_destination_targets_the_mc_sink(self):
        _, routers = build_network()
        packet = Packet(
            PacketClass.REQUEST, source=0, destination=0,
            sink_outputs=(int(OutputPort.L1),),
        )
        inject(routers[0], packet)
        launch = routers[0].nominate(0.0, 3.0, fanout=2, nominations_per_port=2)
        assert launch.nominations[0].outputs == (int(OutputPort.L1),)

    def test_response_may_sink_through_either_local_port(self):
        _, routers = build_network()
        packet = Packet(PacketClass.BLOCK_RESPONSE, source=1, destination=0)
        inject(routers[0], packet)
        launch = routers[0].nominate(0.0, 3.0, fanout=2, nominations_per_port=2)
        assert set(launch.nominations[0].outputs) == {
            int(OutputPort.L0), int(OutputPort.L1)
        }

    def test_nominated_packet_marked_in_flight_until_resolve(self):
        _, routers = build_network()
        packet = Packet(PacketClass.REQUEST, source=0, destination=1)
        inject(routers[0], packet)
        first = routers[0].nominate(0.0, 3.0, fanout=1, nominations_per_port=1)
        assert first is not None
        # Same packet cannot be nominated again before the reset step.
        assert routers[0].nominate(1.0, 4.0, fanout=1, nominations_per_port=1) is None

    def test_busy_output_blocks_nomination(self):
        _, routers = build_network()
        packet = Packet(PacketClass.REQUEST, source=0, destination=1)
        inject(routers[0], packet)
        routers[0].output_busy_until[int(OutputPort.EAST)] = 100.0
        routers[0].output_busy_until[int(OutputPort.WEST)] = 100.0
        assert routers[0].nominate(0.0, 3.0, fanout=1, nominations_per_port=1) is None

    def test_full_downstream_buffer_blocks_adaptive_then_uses_escape(self):
        topology, routers = build_network(width=4, height=2)
        # Fill the downstream adaptive request channel completely.
        east_neighbor = routers[1]
        adaptive = adaptive_channel(PacketClass.REQUEST)
        while east_neighbor.buffers[InputPort.WEST].can_reserve(adaptive):
            east_neighbor.buffers[InputPort.WEST].reserve(adaptive)
        packet = Packet(PacketClass.REQUEST, source=0, destination=2)
        inject(routers[0], packet)
        launch = routers[0].nominate(0.0, 3.0, fanout=2, nominations_per_port=2)
        assert launch is not None
        # 0 -> 2 on a 4x2 torus is two hops east: only east is minimal,
        # so the escape path also goes east but on VC0.
        (key,) = [k for k in launch.plans]
        plan = launch.plans[key]
        assert plan.output is OutputPort.EAST
        assert plan.target_channel == escape_channel(PacketClass.REQUEST, 0)

    def test_io_packets_only_use_escape_channels(self):
        _, routers = build_network()
        packet = Packet(PacketClass.READ_IO, source=0, destination=1)
        inject(routers[0], packet, port=InputPort.IO)
        launch = routers[0].nominate(0.0, 3.0, fanout=2, nominations_per_port=2)
        (key,) = [k for k in launch.plans]
        assert launch.plans[key].target_channel.kind.name in ("VC0", "VC1")


class TestResolve:
    def test_grant_moves_packet_and_reserves_downstream(self):
        _, routers = build_network()
        packet = Packet(PacketClass.REQUEST, source=0, destination=1)
        inject(routers[0], packet)
        launch = routers[0].nominate(0.0, 3.0, fanout=1, nominations_per_port=1)
        dispatches = routers[0].resolve(3.0, launch)
        assert len(dispatches) == 1
        dispatch = dispatches[0]
        assert dispatch.packet is packet
        assert routers[0].buffers[InputPort.CACHE].is_empty()
        assert packet.hops == 1
        # Output busy for 3 flits x 1.5 cycles on a torus link.
        assert routers[0].output_busy_until[int(OutputPort.EAST)] == \
            pytest.approx(3.0 + 4.5)
        # Downstream slot reserved for the arrival.
        west = routers[1].buffers[InputPort.WEST]
        assert west.free_slots(adaptive_channel(PacketClass.REQUEST)) == \
            west.capacity(adaptive_channel(PacketClass.REQUEST)) - 1

    def test_local_sink_grant_uses_one_cycle_per_flit(self):
        # WFA accepts the two-output (L0 or L1) sink nomination.
        _, routers = build_network(algorithm="WFA-base")
        packet = Packet(PacketClass.BLOCK_RESPONSE, source=1, destination=0)
        inject(routers[0], packet)
        launch = routers[0].nominate(0.0, 3.0, fanout=2, nominations_per_port=2)
        dispatch = routers[0].resolve(3.0, launch)[0]
        assert dispatch.service_cycles == pytest.approx(19.0)
        assert dispatch.plan.target_channel is None

    def test_loser_released_for_renomination(self):
        """Two packets race for the east output; the loser renominates."""
        _, routers = build_network(width=4, height=2)
        first = Packet(PacketClass.REQUEST, source=0, destination=2)
        second = Packet(PacketClass.FORWARD, source=0, destination=2)
        inject(routers[0], first)
        inject(routers[0], second, port=InputPort.MC0)
        launch = routers[0].nominate(0.0, 3.0, fanout=1, nominations_per_port=1)
        assert len(launch.nominations) == 2
        dispatches = routers[0].resolve(3.0, launch)
        assert len(dispatches) == 1  # collision: east can take one
        relaunch = routers[0].nominate(3.0, 6.0, fanout=1, nominations_per_port=1)
        assert relaunch is None or len(relaunch.nominations) <= 1
        # The loser is no longer in flight: after its output frees it
        # can be nominated again.
        routers[0].output_busy_until[int(OutputPort.EAST)] = 0.0
        retry = routers[0].nominate(10.0, 13.0, fanout=1, nominations_per_port=1)
        assert retry is not None

    def test_speculative_collision_detected_at_resolve(self):
        """SPAA pipelining: output taken between nominate and resolve."""
        _, routers = build_network()
        packet = Packet(PacketClass.REQUEST, source=0, destination=1)
        inject(routers[0], packet)
        launch = routers[0].nominate(0.0, 3.0, fanout=1, nominations_per_port=1)
        # Another launch's grant occupies the east output meanwhile.
        routers[0].output_busy_until[int(OutputPort.EAST)] = 50.0
        dispatches = routers[0].resolve(3.0, launch)
        assert dispatches == []
        assert not routers[0].buffers[InputPort.CACHE].is_empty()

    def test_upstream_node_mapping(self):
        topology, routers = build_network(width=4, height=2)
        router = routers[0]
        assert router.upstream_node(InputPort.EAST) == topology.neighbor(
            0, InputPort.EAST.direction
        )
        with pytest.raises(ValueError):
            router.upstream_node(InputPort.CACHE)

    def test_reset_clears_dynamic_state(self):
        _, routers = build_network()
        packet = Packet(PacketClass.REQUEST, source=0, destination=1)
        inject(routers[0], packet)
        routers[0].nominate(0.0, 3.0, fanout=1, nominations_per_port=1)
        routers[0].reset_arbitration_state()
        # In-flight cleared: the packet can be nominated again.
        assert routers[0].nominate(5.0, 8.0, fanout=1, nominations_per_port=1) \
            is not None


class TestEscapeVcProgression:
    def test_dateline_switches_to_vc1_on_wraparound(self):
        topology, routers = build_network(width=4, height=2)
        # Node 3 -> node 1: minimal route is 2 hops east, crossing the
        # wrap link from x=3 to x=0.  Block the adaptive channel so the
        # escape path is taken.
        adaptive = adaptive_channel(PacketClass.REQUEST)
        while routers[0].buffers[InputPort.WEST].can_reserve(adaptive):
            routers[0].buffers[InputPort.WEST].reserve(adaptive)
        packet = Packet(PacketClass.REQUEST, source=3, destination=1)
        inject(routers[3], packet)
        launch = routers[3].nominate(0.0, 3.0, fanout=2, nominations_per_port=2)
        (key,) = list(launch.plans)
        plan = launch.plans[key]
        assert plan.target_channel == escape_channel(PacketClass.REQUEST, 1), (
            "a hop across the wrap link must land on VC1"
        )
        dispatch = routers[3].resolve(3.0, launch)[0]
        assert dispatch.packet.escape_vc == 1
