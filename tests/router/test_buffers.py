"""Unit tests for per-input-port buffering and credit flow control."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.channels import (
    BufferPlan,
    adaptive_channel,
    escape_channel,
)
from repro.network.packets import Packet, PacketClass
from repro.router.buffers import BufferOverflowError, InputBuffer


def small_plan() -> BufferPlan:
    return BufferPlan(
        adaptive_capacity={
            PacketClass.REQUEST: 2,
            PacketClass.FORWARD: 2,
            PacketClass.BLOCK_RESPONSE: 2,
            PacketClass.NONBLOCK_RESPONSE: 2,
        }
    )


def packet(pclass=PacketClass.REQUEST) -> Packet:
    return Packet(pclass, source=0, destination=1)


REQ = adaptive_channel(PacketClass.REQUEST)
ESC = escape_channel(PacketClass.REQUEST, 0)


class TestReservations:
    def test_reserve_then_commit(self):
        buffer = InputBuffer(small_plan())
        buffer.reserve(REQ)
        assert buffer.free_slots(REQ) == 1
        p = packet()
        buffer.commit(p, REQ)
        assert buffer.occupancy(REQ) == 1
        assert buffer.head(REQ) is p

    def test_reserve_beyond_capacity_fails(self):
        buffer = InputBuffer(small_plan())
        buffer.reserve(REQ)
        buffer.reserve(REQ)
        assert not buffer.can_reserve(REQ)
        with pytest.raises(BufferOverflowError):
            buffer.reserve(REQ)

    def test_commit_without_reservation_fails(self):
        buffer = InputBuffer(small_plan())
        with pytest.raises(ValueError, match="without reservation"):
            buffer.commit(packet(), REQ)

    def test_cancel_reservation(self):
        buffer = InputBuffer(small_plan())
        buffer.reserve(REQ)
        buffer.cancel_reservation(REQ)
        assert buffer.free_slots(REQ) == 2
        with pytest.raises(ValueError):
            buffer.cancel_reservation(REQ)

    def test_occupied_plus_reserved_bounds_capacity(self):
        buffer = InputBuffer(small_plan())
        buffer.reserve(REQ)
        buffer.commit(packet(), REQ)
        buffer.reserve(REQ)
        assert not buffer.can_reserve(REQ)


class TestInjection:
    def test_inject_succeeds_with_space(self):
        buffer = InputBuffer(small_plan())
        assert buffer.inject(packet(), REQ)
        assert buffer.occupancy() == 1

    def test_inject_fails_when_full(self):
        buffer = InputBuffer(small_plan())
        assert buffer.inject(packet(), REQ)
        assert buffer.inject(packet(), REQ)
        assert not buffer.inject(packet(), REQ)
        assert buffer.occupancy(REQ) == 2

    def test_inject_respects_reservations(self):
        buffer = InputBuffer(small_plan())
        buffer.reserve(REQ)
        buffer.reserve(REQ)
        assert not buffer.inject(packet(), REQ)


class TestFifoDiscipline:
    def test_heads_follow_fifo_order(self):
        buffer = InputBuffer(small_plan())
        first, second = packet(), packet()
        buffer.inject(first, REQ)
        buffer.inject(second, REQ)
        assert buffer.head(REQ) is first
        buffer.remove(first, REQ)
        assert buffer.head(REQ) is second

    def test_removing_non_head_is_a_model_bug(self):
        buffer = InputBuffer(small_plan())
        first, second = packet(), packet()
        buffer.inject(first, REQ)
        buffer.inject(second, REQ)
        with pytest.raises(ValueError, match="head"):
            buffer.remove(second, REQ)

    def test_channels_are_independent_queues(self):
        buffer = InputBuffer(small_plan())
        req_packet = packet()
        esc_packet = packet()
        buffer.inject(req_packet, REQ)
        buffer.inject(esc_packet, ESC)
        assert buffer.head(REQ) is req_packet
        assert buffer.head(ESC) is esc_packet
        assert buffer.occupancy() == 2


class TestAccounting:
    def test_nonempty_channel_tracking(self):
        buffer = InputBuffer(small_plan())
        assert buffer.is_empty()
        assert buffer.channels_with_waiting() == set()
        p = packet()
        buffer.inject(p, REQ)
        assert buffer.channels_with_waiting() == {REQ}
        buffer.remove(p, REQ)
        assert buffer.is_empty()
        assert buffer.channels_with_waiting() == set()

    def test_total_capacity_reports_plan(self):
        assert InputBuffer(BufferPlan()).total_capacity() == 316

    @settings(max_examples=30, deadline=None)
    @given(ops=st.lists(st.sampled_from(["inject", "remove"]), max_size=40))
    def test_occupancy_never_negative_or_above_capacity(self, ops):
        buffer = InputBuffer(small_plan())
        live: list[Packet] = []
        for op in ops:
            if op == "inject":
                p = packet()
                if buffer.inject(p, REQ):
                    live.append(p)
            elif live:
                buffer.remove(live.pop(0), REQ)
            assert 0 <= buffer.occupancy(REQ) <= buffer.capacity(REQ)
            assert buffer.occupancy() == len(live)
