"""Stateful property test: InputBuffer as a hypothesis state machine.

Random interleavings of reserve / cancel / commit / inject / remove
must never violate the buffer's conservation invariants, whatever the
order -- this is the flow-control foundation the whole timing model
rests on.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.network.channels import BufferPlan, adaptive_channel, escape_channel
from repro.network.packets import Packet, PacketClass
from repro.router.buffers import InputBuffer

CHANNELS = (
    adaptive_channel(PacketClass.REQUEST),
    adaptive_channel(PacketClass.BLOCK_RESPONSE),
    escape_channel(PacketClass.REQUEST, 0),
)


def tiny_plan() -> BufferPlan:
    return BufferPlan(
        adaptive_capacity={
            PacketClass.REQUEST: 3,
            PacketClass.FORWARD: 2,
            PacketClass.BLOCK_RESPONSE: 2,
            PacketClass.NONBLOCK_RESPONSE: 2,
        },
        escape_capacity=1,
    )


class BufferMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.buffer = InputBuffer(tiny_plan())
        self.model_queues = {channel: [] for channel in CHANNELS}
        self.model_reserved = {channel: 0 for channel in CHANNELS}

    channels = st.sampled_from(range(len(CHANNELS)))

    @rule(index=channels)
    def reserve(self, index):
        channel = CHANNELS[index]
        if self.buffer.can_reserve(channel):
            self.buffer.reserve(channel)
            self.model_reserved[channel] += 1

    @rule(index=channels)
    def cancel(self, index):
        channel = CHANNELS[index]
        if self.model_reserved[channel] > 0:
            self.buffer.cancel_reservation(channel)
            self.model_reserved[channel] -= 1

    @rule(index=channels)
    def commit(self, index):
        channel = CHANNELS[index]
        if self.model_reserved[channel] > 0:
            packet = Packet(channel.pclass, 0, 1)
            self.buffer.commit(packet, channel)
            self.model_reserved[channel] -= 1
            self.model_queues[channel].append(packet)

    @rule(index=channels)
    def inject(self, index):
        channel = CHANNELS[index]
        packet = Packet(channel.pclass, 0, 1)
        accepted = self.buffer.inject(packet, channel)
        model_free = (
            self.buffer.capacity(channel)
            - len(self.model_queues[channel])
            - self.model_reserved[channel]
        )
        assert accepted == (model_free > 0)
        if accepted:
            self.model_queues[channel].append(packet)

    @rule(index=channels)
    def remove_head(self, index):
        channel = CHANNELS[index]
        if self.model_queues[channel]:
            packet = self.model_queues[channel].pop(0)
            self.buffer.remove(packet, channel)

    @invariant()
    def occupancy_matches_model(self):
        if not hasattr(self, "buffer"):
            return
        for channel in CHANNELS:
            assert self.buffer.occupancy(channel) == len(
                self.model_queues[channel]
            )
        assert self.buffer.occupancy() == sum(
            len(q) for q in self.model_queues.values()
        )

    @invariant()
    def heads_match_model(self):
        if not hasattr(self, "buffer"):
            return
        for channel in CHANNELS:
            expected = (
                self.model_queues[channel][0]
                if self.model_queues[channel]
                else None
            )
            assert self.buffer.head(channel) is expected

    @invariant()
    def free_slots_never_negative(self):
        if not hasattr(self, "buffer"):
            return
        for channel in CHANNELS:
            assert self.buffer.free_slots(channel) >= 0

    @invariant()
    def nonempty_tracking_consistent(self):
        if not hasattr(self, "buffer"):
            return
        expected = {
            channel for channel in CHANNELS if self.model_queues[channel]
        }
        tracked = {
            channel
            for channel in CHANNELS
            if channel in self.buffer.channels_with_waiting()
        }
        assert tracked == expected


BufferMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None
)
TestBufferStateMachine = BufferMachine.TestCase
