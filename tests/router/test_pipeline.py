"""Unit tests for the reference pipeline structure (Figure 4)."""

from repro.router.pipeline import (
    ARBITRATION_STAGES,
    LOCAL_TO_NETWORK,
    NETWORK_TO_NETWORK,
    Stage,
    pin_to_pin_cycles,
)


class TestPipelineSpecs:
    def test_arbitration_is_three_stages(self):
        """LA, RE, GA: the three cycles SPAA's latency refers to."""
        assert ARBITRATION_STAGES == (Stage.LA, Stage.RE, Stage.GA)
        assert NETWORK_TO_NETWORK.arbitration_latency == 3
        assert LOCAL_TO_NETWORK.arbitration_latency == 3

    def test_figure4a_local_pipeline_shape(self):
        stages = LOCAL_TO_NETWORK.scheduling_stages
        assert stages[0] is Stage.RT  # router-table lookup first
        assert stages[-3:] == (Stage.LA, Stage.RE, Stage.GA)

    def test_figure4b_network_pipeline_shape(self):
        stages = NETWORK_TO_NETWORK.scheduling_stages
        assert stages[0] is Stage.ECC  # checked on arrival
        assert Stage.DW in stages
        assert stages[-3:] == (Stage.LA, Stage.RE, Stage.GA)

    def test_data_pipeline_ends_in_crossbar_and_ecc(self):
        for spec in (LOCAL_TO_NETWORK, NETWORK_TO_NETWORK):
            assert spec.data_stages[-2:] == (Stage.X, Stage.ECC)

    def test_pin_to_pin_is_13_cycles(self):
        """Paper section 2.2: 13 cycles, 10.8 ns at 1.2 GHz."""
        assert pin_to_pin_cycles() == 13

    def test_latency_properties(self):
        assert NETWORK_TO_NETWORK.scheduling_latency == 6
        assert LOCAL_TO_NETWORK.scheduling_latency == 7
        assert NETWORK_TO_NETWORK.data_latency == 7
