"""Unit tests for port naming and the Figure 5 connection matrix."""

import pytest

from repro.network.topology import Direction
from repro.router.connection_matrix import (
    DEFAULT_CONNECTION_MATRIX,
    ConnectionMatrix,
    default_connections,
)
from repro.router.ports import (
    InputPort,
    NUM_INPUT_PORTS,
    NUM_OUTPUT_PORTS,
    NUM_ROWS,
    OutputPort,
    READ_PORTS_PER_INPUT,
    input_for_direction,
    network_rows,
    output_for_direction,
    port_of_row,
    row_of,
)


class TestPorts:
    def test_the_21364_port_counts(self):
        assert NUM_INPUT_PORTS == 8
        assert NUM_OUTPUT_PORTS == 7
        assert READ_PORTS_PER_INPUT == 2
        assert NUM_ROWS == 16

    def test_network_classification(self):
        assert InputPort.NORTH.is_network
        assert InputPort.WEST.is_network
        assert not InputPort.CACHE.is_network
        assert not InputPort.IO.is_network
        assert OutputPort.EAST.is_network
        assert OutputPort.L0.is_local and OutputPort.IO.is_local

    def test_direction_mapping(self):
        assert InputPort.NORTH.direction is Direction.NORTH
        assert OutputPort.SOUTH.direction is Direction.SOUTH
        with pytest.raises(ValueError):
            _ = InputPort.CACHE.direction
        with pytest.raises(ValueError):
            _ = OutputPort.L1.direction

    def test_row_roundtrip(self):
        for port in InputPort:
            for rp in range(READ_PORTS_PER_INPUT):
                assert port_of_row(row_of(port, rp)) == (port, rp)
        with pytest.raises(ValueError):
            row_of(InputPort.NORTH, 2)
        with pytest.raises(ValueError):
            port_of_row(16)

    def test_network_rows_are_the_torus_read_ports(self):
        rows = network_rows()
        assert rows == tuple(range(8))

    def test_link_endpoint_mapping(self):
        """A packet sent EAST arrives at the neighbor's WEST input."""
        assert output_for_direction(Direction.EAST) is OutputPort.EAST
        assert input_for_direction(Direction.EAST) is InputPort.WEST
        assert input_for_direction(Direction.NORTH) is InputPort.SOUTH


class TestConnectionMatrix:
    def test_default_has_54_usable_cells(self):
        """The paper: 'the total nominations for the matrix could be
        up to 54 (unshaded boxes in Figure 5)'."""
        assert DEFAULT_CONNECTION_MATRIX.num_connections == 54

    def test_read_ports_partition_the_outputs(self):
        """'the individual read ports are not connected to all the
        output ports': rp0 drives the torus outputs, rp1 the locals."""
        matrix = DEFAULT_CONNECTION_MATRIX
        for port in InputPort:
            rp0_outputs = set(matrix.outputs_of_row(row_of(port, 0)))
            rp1_outputs = set(matrix.outputs_of_row(row_of(port, 1)))
            assert rp0_outputs <= {0, 1, 2, 3}
            assert rp1_outputs <= {4, 5, 6}
            assert not (rp0_outputs & rp1_outputs)

    def test_every_input_port_reaches_every_torus_output(self):
        matrix = DEFAULT_CONNECTION_MATRIX
        for port in InputPort:
            for out in (OutputPort.NORTH, OutputPort.SOUTH,
                        OutputPort.EAST, OutputPort.WEST):
                assert matrix.rows_for(port, out), f"{port} cannot reach {out}"

    def test_memory_controllers_avoid_their_own_local_port(self):
        matrix = DEFAULT_CONNECTION_MATRIX
        assert not matrix.connected(row_of(InputPort.MC0, 1), OutputPort.L0)
        assert matrix.connected(row_of(InputPort.MC0, 1), OutputPort.L1)
        assert not matrix.connected(row_of(InputPort.MC1, 1), OutputPort.L1)
        assert matrix.connected(row_of(InputPort.MC1, 1), OutputPort.L0)

    def test_rows_of_output_inverse(self):
        matrix = DEFAULT_CONNECTION_MATRIX
        for out in range(NUM_OUTPUT_PORTS):
            for row in matrix.rows_of_output(out):
                assert matrix.connected(row, out)

    def test_rejects_out_of_range_cells(self):
        with pytest.raises(ValueError):
            ConnectionMatrix(cells=frozenset({(99, 0)}))
        with pytest.raises(ValueError):
            ConnectionMatrix(cells=frozenset({(0, 9)}))

    def test_custom_matrix_supported(self):
        tiny = ConnectionMatrix(cells=frozenset({(0, 0), (1, 1)}))
        assert tiny.num_connections == 2
        assert tiny.outputs_of_row(0) == (0,)
        assert tiny.outputs_of_row(5) == ()

    def test_render_lists_every_row(self):
        text = DEFAULT_CONNECTION_MATRIX.render()
        assert text.count("\n") == NUM_ROWS
        assert "L-CACHE" in text and "G-L0" in text

    def test_default_connections_is_stable(self):
        assert default_connections() == default_connections()
