"""Unit and property tests for the 2D torus topology."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.topology import Direction, Torus2D


torus_strategy = st.builds(
    Torus2D,
    width=st.integers(min_value=2, max_value=12),
    height=st.integers(min_value=2, max_value=12),
)


class TestBasics:
    def test_rejects_degenerate_dimensions(self):
        with pytest.raises(ValueError):
            Torus2D(1, 4)
        with pytest.raises(ValueError):
            Torus2D(4, 0)

    def test_node_count(self):
        assert Torus2D(4, 4).num_nodes == 16
        assert Torus2D(8, 8).num_nodes == 64
        assert Torus2D(12, 12).num_nodes == 144

    def test_coordinates_roundtrip(self):
        torus = Torus2D(4, 3)
        for node in range(torus.num_nodes):
            x, y = torus.coordinates(node)
            assert torus.node_at(x, y) == node

    def test_out_of_range_node_rejected(self):
        torus = Torus2D(4, 4)
        with pytest.raises(ValueError):
            torus.coordinates(16)
        with pytest.raises(ValueError):
            torus.neighbor(-1, Direction.NORTH)

    def test_wraparound_neighbors(self):
        torus = Torus2D(4, 4)
        # Node 3 is at (3, 0): east wraps to (0, 0) = node 0.
        assert torus.neighbor(3, Direction.EAST) == 0
        # Node 0 at (0, 0): west wraps to (3, 0), south wraps to (0, 3).
        assert torus.neighbor(0, Direction.WEST) == 3
        assert torus.neighbor(0, Direction.SOUTH) == 12
        assert torus.neighbor(0, Direction.NORTH) == 4

    def test_direction_properties(self):
        assert Direction.NORTH.opposite is Direction.SOUTH
        assert Direction.EAST.opposite is Direction.WEST
        assert Direction.EAST.dimension == 0
        assert Direction.NORTH.dimension == 1
        assert Direction.EAST.positive and Direction.NORTH.positive
        assert not Direction.WEST.positive


class TestDistancesAndRouting:
    def test_ring_offset_shortest_way(self):
        torus = Torus2D(8, 8)
        # (0,0) -> (6,0): going west (-2) is shorter than east (+6).
        assert torus.ring_offset(0, 6, 0) == -2
        assert torus.ring_offset(0, 2, 0) == 2

    def test_half_ring_tie_resolves_positive(self):
        torus = Torus2D(8, 8)
        assert torus.ring_offset(0, 4, 0) == 4

    def test_distance_examples(self):
        torus = Torus2D(4, 4)
        assert torus.distance(0, 0) == 0
        assert torus.distance(0, 3) == 1  # wraparound
        assert torus.distance(0, 5) == 2
        assert torus.distance(0, 10) == 4  # (2,2): max distance in 4x4

    def test_minimal_directions_empty_at_destination(self):
        torus = Torus2D(4, 4)
        assert torus.minimal_directions(5, 5) == ()

    def test_minimal_directions_single_dimension(self):
        torus = Torus2D(4, 4)
        assert torus.minimal_directions(0, 1) == (Direction.EAST,)
        assert torus.minimal_directions(1, 0) == (Direction.WEST,)
        assert torus.minimal_directions(0, 4) == (Direction.NORTH,)

    def test_minimal_directions_diagonal_gives_two(self):
        torus = Torus2D(4, 4)
        directions = torus.minimal_directions(0, 5)
        assert set(directions) == {Direction.EAST, Direction.NORTH}

    def test_crosses_wraparound(self):
        torus = Torus2D(4, 4)
        assert torus.crosses_wraparound(3, Direction.EAST)
        assert not torus.crosses_wraparound(2, Direction.EAST)
        assert torus.crosses_wraparound(0, Direction.WEST)
        assert torus.crosses_wraparound(12, Direction.NORTH)
        assert torus.crosses_wraparound(0, Direction.SOUTH)

    def test_average_distance_4x4(self):
        # Ring of 4: per-dimension mean over all pairs = (0+1+1+2)/4 = 1;
        # excluding self inflates slightly: 32/15.
        assert Torus2D(4, 4).average_distance() == pytest.approx(32 / 15)


class TestTorusProperties:
    @settings(max_examples=60, deadline=None)
    @given(torus=torus_strategy, data=st.data())
    def test_neighbor_is_inverse_of_opposite(self, torus, data):
        node = data.draw(st.integers(min_value=0, max_value=torus.num_nodes - 1))
        direction = data.draw(st.sampled_from(list(Direction)))
        neighbor = torus.neighbor(node, direction)
        assert torus.neighbor(neighbor, direction.opposite) == node

    @settings(max_examples=60, deadline=None)
    @given(torus=torus_strategy, data=st.data())
    def test_distance_is_symmetric_on_odd_rings(self, torus, data):
        src = data.draw(st.integers(min_value=0, max_value=torus.num_nodes - 1))
        dst = data.draw(st.integers(min_value=0, max_value=torus.num_nodes - 1))
        assert torus.distance(src, dst) == torus.distance(dst, src)

    @settings(max_examples=60, deadline=None)
    @given(torus=torus_strategy, data=st.data())
    def test_minimal_directions_reduce_distance(self, torus, data):
        src = data.draw(st.integers(min_value=0, max_value=torus.num_nodes - 1))
        dst = data.draw(st.integers(min_value=0, max_value=torus.num_nodes - 1))
        for direction in torus.minimal_directions(src, dst):
            next_node = torus.neighbor(src, direction)
            assert torus.distance(next_node, dst) == torus.distance(src, dst) - 1

    @settings(max_examples=60, deadline=None)
    @given(torus=torus_strategy, data=st.data())
    def test_distance_bounded_by_half_perimeter(self, torus, data):
        src = data.draw(st.integers(min_value=0, max_value=torus.num_nodes - 1))
        dst = data.draw(st.integers(min_value=0, max_value=torus.num_nodes - 1))
        assert torus.distance(src, dst) <= torus.width // 2 + torus.height // 2

    @settings(max_examples=60, deadline=None)
    @given(torus=torus_strategy, data=st.data())
    def test_following_minimal_directions_reaches_destination(self, torus, data):
        src = data.draw(st.integers(min_value=0, max_value=torus.num_nodes - 1))
        dst = data.draw(st.integers(min_value=0, max_value=torus.num_nodes - 1))
        current = src
        for _ in range(torus.width + torus.height):
            directions = torus.minimal_directions(current, dst)
            if not directions:
                break
            current = torus.neighbor(current, directions[0])
        assert current == dst
