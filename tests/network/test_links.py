"""Unit tests for clocking and link timing constants."""

import pytest

from repro.network.links import DEFAULT_CLOCKS, DEFAULT_LINK, ClockSpec, LinkSpec


class TestClockSpec:
    def test_the_21364_clocks(self):
        assert DEFAULT_CLOCKS.core_ghz == 1.2
        assert DEFAULT_CLOCKS.link_ghz == 0.8
        assert DEFAULT_CLOCKS.cycle_ns == pytest.approx(0.8333, rel=1e-3)
        assert DEFAULT_CLOCKS.link_cycle_ns == pytest.approx(1.25)

    def test_links_are_one_and_a_half_core_cycles_per_flit(self):
        """The paper: network links run 33% slower than the router."""
        assert DEFAULT_CLOCKS.core_cycles_per_flit_on_link == pytest.approx(1.5)

    def test_rejects_bad_frequencies(self):
        with pytest.raises(ValueError):
            ClockSpec(core_ghz=0.0)
        with pytest.raises(ValueError):
            ClockSpec(core_ghz=1.0, link_ghz=2.0)


class TestLinkSpec:
    def test_pin_to_pin_latency(self):
        """13 cycles at 1.2 GHz = the paper's 10.8 ns pin-to-pin."""
        assert DEFAULT_LINK.pin_to_pin_cycles == 13.0
        assert DEFAULT_LINK.pin_to_pin_cycles * DEFAULT_CLOCKS.cycle_ns == \
            pytest.approx(10.8, rel=1e-2)

    def test_hop_latency_includes_link_clocks(self):
        # 3 network clocks at 0.8 GHz = 4.5 core cycles at 1.2 GHz.
        hop = DEFAULT_LINK.hop_latency_cycles(DEFAULT_CLOCKS)
        assert hop == pytest.approx(13.0 + 4.5)

    def test_rejects_negative_latencies(self):
        with pytest.raises(ValueError):
            LinkSpec(pin_to_pin_cycles=-1.0)

    def test_minimum_packet_latency_matches_paper_ballpark(self):
        """Sanity: ~2 hops of a 4x4 uniform workload lands near the
        paper's 45 ns minimum packet latency."""
        hop_ns = DEFAULT_LINK.hop_latency_cycles(DEFAULT_CLOCKS) * \
            DEFAULT_CLOCKS.cycle_ns
        arbitration_ns = 3 * DEFAULT_CLOCKS.cycle_ns  # SPAA per hop
        local_ns = DEFAULT_LINK.local_port_cycles * DEFAULT_CLOCKS.cycle_ns
        tail_ns = 8.5  # the paper's mix-averaged serialization tail
        estimate = 2 * (hop_ns + arbitration_ns) + 2 * local_ns + tail_ns
        assert 35.0 < estimate < 60.0
