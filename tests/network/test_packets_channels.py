"""Unit tests for packet classes, Packet records and virtual channels."""

import pytest

from repro.network.channels import (
    BufferPlan,
    ChannelKind,
    VirtualChannel,
    adaptive_channel,
    all_virtual_channels,
    default_buffer_plan,
    entry_channel,
    escape_channel,
)
from repro.network.packets import (
    DATA_BITS_PER_FLIT,
    ECC_BITS_PER_FLIT,
    FLIT_BITS,
    Packet,
    PacketClass,
)


class TestPacketClasses:
    def test_paper_flit_counts(self):
        assert PacketClass.REQUEST.flits == 3
        assert PacketClass.FORWARD.flits == 3
        assert PacketClass.BLOCK_RESPONSE.flits == 19
        assert PacketClass.NONBLOCK_RESPONSE.flits == 3
        assert PacketClass.WRITE_IO.flits == 19
        assert PacketClass.READ_IO.flits == 3
        assert PacketClass.SPECIAL.flits == 1

    def test_flit_geometry(self):
        assert FLIT_BITS == 39
        assert DATA_BITS_PER_FLIT + ECC_BITS_PER_FLIT == FLIT_BITS

    def test_block_response_carries_a_cache_line(self):
        """3 header flits + 16 data flits = 64 bytes of data payload."""
        data_flits = PacketClass.BLOCK_RESPONSE.flits - 3
        assert data_flits * DATA_BITS_PER_FLIT == 64 * 8

    def test_io_classification(self):
        assert PacketClass.WRITE_IO.is_io and PacketClass.READ_IO.is_io
        assert not PacketClass.REQUEST.is_io

    def test_adaptive_permission(self):
        """I/O rides only deadlock-free channels (ordering rules)."""
        assert PacketClass.REQUEST.adaptive_allowed
        assert not PacketClass.READ_IO.adaptive_allowed
        assert not PacketClass.SPECIAL.adaptive_allowed


class TestPacket:
    def test_unique_uids(self):
        first = Packet(PacketClass.REQUEST, 0, 1)
        second = Packet(PacketClass.REQUEST, 0, 1)
        assert first.uid != second.uid

    def test_initial_state(self):
        packet = Packet(PacketClass.FORWARD, 3, 9, transaction=5, injected_at=12.5)
        assert packet.hops == 0
        assert packet.escape_vc is None
        assert packet.waiting_since == 12.5
        assert packet.flits == 3
        assert packet.sink_outputs is None


class TestVirtualChannels:
    def test_nineteen_channels_total(self):
        """Three per non-special class... minus the I/O adaptive ones.

        The paper counts 19: 3 x 6 non-special classes + 1 special;
        but I/O classes only ride VC0/VC1, so the set we can enqueue
        to is 17 distinct queues -- we still allocate per the paper's
        accounting (the I/O 'adaptive' slots simply do not exist).
        """
        channels = all_virtual_channels()
        assert len(channels) == 17
        adaptive = [c for c in channels if c.kind is ChannelKind.ADAPTIVE]
        assert len(adaptive) == 5  # 4 coherence classes + special

    def test_special_has_single_channel(self):
        with pytest.raises(ValueError):
            VirtualChannel(PacketClass.SPECIAL, ChannelKind.VC0)

    def test_io_has_no_adaptive_channel(self):
        with pytest.raises(ValueError):
            VirtualChannel(PacketClass.READ_IO, ChannelKind.ADAPTIVE)

    def test_interned_lookups(self):
        assert adaptive_channel(PacketClass.REQUEST) is adaptive_channel(
            PacketClass.REQUEST
        )
        assert escape_channel(PacketClass.REQUEST, 0).kind is ChannelKind.VC0
        assert escape_channel(PacketClass.REQUEST, 1).kind is ChannelKind.VC1
        with pytest.raises(ValueError):
            escape_channel(PacketClass.REQUEST, 2)

    def test_entry_channel_per_class(self):
        assert entry_channel(PacketClass.REQUEST).kind is ChannelKind.ADAPTIVE
        assert entry_channel(PacketClass.READ_IO).kind is ChannelKind.VC0
        assert entry_channel(PacketClass.SPECIAL).kind is ChannelKind.ADAPTIVE


class TestBufferPlan:
    def test_default_plan_totals_316_packets(self):
        """The paper: buffer space for 316 packets per input port."""
        assert default_buffer_plan().total_packets() == 316

    def test_escape_channels_hold_one_packet(self):
        plan = default_buffer_plan()
        assert plan.capacity(escape_channel(PacketClass.REQUEST, 0)) == 1
        assert plan.capacity(escape_channel(PacketClass.BLOCK_RESPONSE, 1)) == 1

    def test_adaptive_channels_hold_the_bulk(self):
        plan = default_buffer_plan()
        adaptive_total = sum(
            plan.capacity(adaptive_channel(pclass))
            for pclass in (
                PacketClass.REQUEST,
                PacketClass.FORWARD,
                PacketClass.BLOCK_RESPONSE,
                PacketClass.NONBLOCK_RESPONSE,
            )
        )
        assert adaptive_total > 0.9 * 316 - 20

    def test_custom_plan_validation(self):
        with pytest.raises(ValueError):
            BufferPlan(escape_capacity=0)
        with pytest.raises(ValueError):
            BufferPlan(adaptive_capacity={PacketClass.READ_IO: 5})
        with pytest.raises(ValueError):
            BufferPlan(adaptive_capacity={PacketClass.REQUEST: 0})

    def test_small_plan_for_saturation_studies(self):
        plan = BufferPlan(
            adaptive_capacity={
                PacketClass.REQUEST: 4,
                PacketClass.FORWARD: 2,
                PacketClass.BLOCK_RESPONSE: 4,
                PacketClass.NONBLOCK_RESPONSE: 2,
            }
        )
        assert plan.total_packets() < 40
