"""Unit and property tests for routing: adaptive, escape, datelines."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.packets import Packet, PacketClass
from repro.network.routing import (
    adaptive_candidates,
    dimension_order_direction,
    escape_vc_after_hop,
    is_productive,
)
from repro.network.topology import Direction, Torus2D


def torus_and_pair():
    return st.tuples(
        st.integers(min_value=2, max_value=10),
        st.integers(min_value=2, max_value=10),
        st.data(),
    )


class TestAdaptiveCandidates:
    def test_at_most_two_directions(self):
        torus = Torus2D(8, 8)
        for src in range(torus.num_nodes):
            for dst in range(torus.num_nodes):
                assert len(adaptive_candidates(torus, src, dst)) <= 2

    def test_empty_at_destination(self):
        torus = Torus2D(4, 4)
        assert adaptive_candidates(torus, 5, 5) == ()

    def test_all_candidates_are_productive(self):
        torus = Torus2D(6, 4)
        for src in range(torus.num_nodes):
            for dst in range(torus.num_nodes):
                for direction in adaptive_candidates(torus, src, dst):
                    assert is_productive(torus, src, dst, direction)


class TestDimensionOrder:
    def test_x_before_y(self):
        torus = Torus2D(4, 4)
        # 0 -> 5 needs one hop east and one north; x goes first.
        assert dimension_order_direction(torus, 0, 5) is Direction.EAST
        # After the x hop, y remains.
        assert dimension_order_direction(torus, 1, 5) is Direction.NORTH

    def test_none_at_destination(self):
        torus = Torus2D(4, 4)
        assert dimension_order_direction(torus, 3, 3) is None

    def test_escape_route_always_reaches_destination(self):
        torus = Torus2D(5, 3)
        for src in range(torus.num_nodes):
            for dst in range(torus.num_nodes):
                current = src
                for _ in range(torus.width + torus.height):
                    direction = dimension_order_direction(torus, current, dst)
                    if direction is None:
                        break
                    current = torus.neighbor(current, direction)
                assert current == dst

    def test_escape_direction_is_minimal(self):
        torus = Torus2D(6, 6)
        for src in range(torus.num_nodes):
            for dst in range(torus.num_nodes):
                direction = dimension_order_direction(torus, src, dst)
                if direction is not None:
                    assert direction in torus.minimal_directions(src, dst)


class TestEscapeVcDateline:
    def packet(self) -> Packet:
        return Packet(PacketClass.REQUEST, source=0, destination=3)

    def test_starts_on_vc0(self):
        torus = Torus2D(4, 4)
        packet = self.packet()
        # Hop east from node 1 (no wrap): stays on VC0.
        assert escape_vc_after_hop(torus, packet, 1, Direction.EAST) == 0

    def test_wrap_hop_switches_to_vc1(self):
        torus = Torus2D(4, 4)
        packet = self.packet()
        assert escape_vc_after_hop(torus, packet, 3, Direction.EAST) == 1

    def test_stays_on_vc1_within_the_ring(self):
        torus = Torus2D(4, 4)
        packet = self.packet()
        packet.escape_vc = 1
        packet.last_direction = Direction.EAST
        assert escape_vc_after_hop(torus, packet, 0, Direction.EAST) == 1

    def test_turning_into_a_new_ring_restarts_on_vc0(self):
        torus = Torus2D(4, 4)
        packet = self.packet()
        packet.escape_vc = 1
        packet.last_direction = Direction.EAST
        # Turning north (new dimension) before any y wrap: VC0.
        assert escape_vc_after_hop(torus, packet, 1, Direction.NORTH) == 0

    @settings(max_examples=60, deadline=None)
    @given(
        width=st.integers(min_value=2, max_value=8),
        height=st.integers(min_value=2, max_value=8),
        data=st.data(),
    )
    def test_dimension_order_escape_crosses_at_most_one_dateline_per_ring(
        self, width, height, data
    ):
        """The deadlock-freedom argument: along a dimension-order route
        the VC sequence per ring is VC0* then VC1* (one switch max)."""
        torus = Torus2D(width, height)
        src = data.draw(st.integers(min_value=0, max_value=torus.num_nodes - 1))
        dst = data.draw(st.integers(min_value=0, max_value=torus.num_nodes - 1))
        packet = Packet(PacketClass.REQUEST, source=src, destination=dst)
        current = src
        per_ring_sequence: dict[int, list[int]] = {0: [], 1: []}
        for _ in range(width + height):
            direction = dimension_order_direction(torus, current, dst)
            if direction is None:
                break
            vc = escape_vc_after_hop(torus, packet, current, direction)
            per_ring_sequence[direction.dimension].append(vc)
            packet.escape_vc = vc
            packet.last_direction = direction
            current = torus.neighbor(current, direction)
        assert current == dst
        for sequence in per_ring_sequence.values():
            # Non-decreasing: once on VC1, never back to VC0 in-ring.
            assert sequence == sorted(sequence)
