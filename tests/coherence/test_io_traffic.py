"""Tests for the I/O-read extension (beyond the paper's mix)."""

import random

import pytest

from repro.coherence.protocol import CoherenceEngine
from repro.coherence.transactions import TransactionKind
from repro.network.packets import PacketClass
from repro.router.ports import InputPort, OutputPort
from repro.sim.config import NetworkConfig, SimulationConfig, TrafficConfig
from repro.sim.timing_model import NetworkSimulator

from tests.coherence.test_protocol import StubHost


def io_engine(host, io_fraction=1.0):
    return CoherenceEngine(
        host=host,
        num_nodes=16,
        mshr_limit=4,
        two_hop_fraction=0.7,
        memory_latency_ns=73.0,
        l2_latency_cycles=25.0,
        rng=random.Random(5),
        io_fraction=io_fraction,
    )


class TestIOFlow:
    def test_io_read_round_trip(self):
        host = StubHost()
        engine = io_engine(host)
        transaction = engine.try_start_transaction(2, 9)
        assert transaction.kind is TransactionKind.IO_READ

        node, port, request = host.injected.pop()
        assert (node, port) == (2, InputPort.IO)
        assert request.pclass is PacketClass.READ_IO
        assert request.sink_outputs == (int(OutputPort.IO),)

        engine.on_packet_delivered(request)
        host.run_next()  # memory response time

        node, port, data = host.injected.pop()
        assert (node, port) == (9, InputPort.IO)
        assert data.pclass is PacketClass.WRITE_IO
        assert data.destination == 2
        assert data.flits == 19

        engine.on_packet_delivered(data)
        assert transaction.complete
        assert engine.mshrs[2].outstanding == 0

    def test_zero_fraction_never_issues_io(self):
        host = StubHost()
        engine = io_engine(host, io_fraction=0.0)
        for _ in range(4):
            transaction = engine.try_start_transaction(0, 1)
            assert transaction.kind is not TransactionKind.IO_READ

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            io_engine(StubHost(), io_fraction=1.5)
        with pytest.raises(ValueError):
            TrafficConfig(io_fraction=-0.1)


class TestIOInTheNetwork:
    def test_io_traffic_flows_end_to_end(self):
        """I/O packets only ride VC0/VC1 and still drain completely."""
        config = SimulationConfig(
            algorithm="SPAA-base",
            network=NetworkConfig(width=4, height=4),
            traffic=TrafficConfig(injection_rate=0.01, io_fraction=0.3),
            warmup_cycles=500,
            measure_cycles=2_000,
            seed=11,
        )
        sim = NetworkSimulator(config)
        stats = sim.run()
        assert stats.packets_delivered > 0
        sim.drain()
        assert sim.engine.outstanding_transactions == 0
        assert sim.total_buffered_packets() == 0

    def test_pure_io_workload(self):
        """All-I/O traffic: dimension-order escape routing only."""
        config = SimulationConfig(
            algorithm="WFA-base",
            network=NetworkConfig(width=4, height=4),
            traffic=TrafficConfig(injection_rate=0.005, io_fraction=1.0),
            warmup_cycles=500,
            measure_cycles=2_000,
            seed=11,
        )
        sim = NetworkSimulator(config)
        stats = sim.run()
        sim.drain()
        assert stats.transactions_completed > 0
        assert sim.engine.outstanding_transactions == 0
        # 3-flit requests + 19-flit data packets and nothing else.
        mean_flits = stats.flits_delivered / stats.packets_delivered
        assert 3.0 <= mean_flits <= 19.0
