"""Unit tests for MSHRs and the coherence-protocol engine (stub host)."""

import random

import pytest

from repro.coherence.mshr import MSHRFile
from repro.coherence.protocol import CoherenceEngine
from repro.coherence.transactions import Transaction, TransactionKind
from repro.network.packets import Packet, PacketClass
from repro.router.ports import InputPort, OutputPort


class StubHost:
    """Records injections and runs scheduled callbacks on demand."""

    def __init__(self):
        self.now = 0.0
        self.injected: list[tuple[int, InputPort, Packet]] = []
        self.scheduled: list[tuple[float, object]] = []

    def cycles_per_ns(self) -> float:
        return 1.2

    def enqueue_local(self, node, port, packet):
        self.injected.append((node, port, packet))

    def schedule_after(self, delay, callback):
        self.scheduled.append((self.now + delay, callback))

    def run_next(self):
        self.scheduled.sort(key=lambda item: item[0])
        time, callback = self.scheduled.pop(0)
        self.now = time
        callback()


def make_engine(host, num_nodes=16, mshr_limit=4, two_hop=1.0, seed=1):
    return CoherenceEngine(
        host=host,
        num_nodes=num_nodes,
        mshr_limit=mshr_limit,
        two_hop_fraction=two_hop,
        memory_latency_ns=73.0,
        l2_latency_cycles=25.0,
        rng=random.Random(seed),
    )


class TestMSHR:
    def test_acquire_release_cycle(self):
        mshrs = MSHRFile(2)
        assert mshrs.try_acquire() and mshrs.try_acquire()
        assert not mshrs.try_acquire()
        assert mshrs.outstanding == 2 and mshrs.available == 0
        mshrs.release()
        assert mshrs.try_acquire()

    def test_over_release_rejected(self):
        mshrs = MSHRFile(1)
        with pytest.raises(ValueError):
            mshrs.release()

    def test_needs_positive_limit(self):
        with pytest.raises(ValueError):
            MSHRFile(0)


class TestTwoHopFlow:
    def test_request_then_memory_then_response(self):
        host = StubHost()
        engine = make_engine(host, two_hop=1.0)
        transaction = engine.try_start_transaction(requester=2, home=9)
        assert transaction.kind is TransactionKind.TWO_HOP
        assert transaction.owner is None

        # The request left the requester's cache port, aimed at the
        # home's chosen memory controller sink.
        node, port, request = host.injected.pop()
        assert (node, port) == (2, InputPort.CACHE)
        assert request.pclass is PacketClass.REQUEST
        assert request.destination == 9
        assert request.sink_outputs in (
            (int(OutputPort.L0),), (int(OutputPort.L1),)
        )

        engine.on_packet_delivered(request)
        assert host.scheduled, "memory response must be scheduled"
        # 73 ns at 1.2 cycles/ns.
        assert host.scheduled[0][0] == pytest.approx(73.0 * 1.2)
        host.run_next()

        node, port, response = host.injected.pop()
        assert node == 9
        assert port in (InputPort.MC0, InputPort.MC1)
        assert response.pclass is PacketClass.BLOCK_RESPONSE
        assert response.destination == 2

        engine.on_packet_delivered(response)
        assert transaction.complete
        assert engine.mshrs[2].outstanding == 0

    def test_mshr_exhaustion_throttles(self):
        host = StubHost()
        engine = make_engine(host, mshr_limit=2)
        assert engine.try_start_transaction(0, 1) is not None
        assert engine.try_start_transaction(0, 2) is not None
        assert engine.try_start_transaction(0, 3) is None
        assert len(host.injected) == 2

    def test_completion_hook_fires(self):
        host = StubHost()
        engine = make_engine(host)
        seen = []
        engine.on_transaction_complete = seen.append
        transaction = engine.try_start_transaction(0, 1)
        request = host.injected.pop()[2]
        engine.on_packet_delivered(request)
        host.run_next()
        response = host.injected.pop()[2]
        engine.on_packet_delivered(response)
        assert seen == [transaction]


class TestThreeHopFlow:
    def test_forward_and_owner_response(self):
        host = StubHost()
        engine = make_engine(host, two_hop=0.0)
        transaction = engine.try_start_transaction(requester=0, home=5)
        assert transaction.kind is TransactionKind.THREE_HOP
        assert transaction.owner not in (0, 5)

        request = host.injected.pop()[2]
        engine.on_packet_delivered(request)
        host.run_next()  # memory lookup -> forward injected at home

        node, port, forward = host.injected.pop()
        assert node == 5
        assert port in (InputPort.MC0, InputPort.MC1)
        assert forward.pclass is PacketClass.FORWARD
        assert forward.destination == transaction.owner

        engine.on_packet_delivered(forward)
        # L2 lookup at the owner: 25 cycles.
        assert host.scheduled[0][0] - host.now == pytest.approx(25.0)
        host.run_next()

        node, port, response = host.injected.pop()
        assert node == transaction.owner
        assert port is InputPort.CACHE  # the owning cache supplies data
        assert response.pclass is PacketClass.BLOCK_RESPONSE
        assert response.destination == 0

        engine.on_packet_delivered(response)
        assert transaction.complete

    def test_owner_selection_excludes_parties_when_possible(self):
        host = StubHost()
        engine = make_engine(host, two_hop=0.0, num_nodes=16)
        for _ in range(30):
            transaction = engine.try_start_transaction(3, 7)
            if transaction is None:
                break
            assert transaction.owner not in (3, 7)
            # complete it to free the MSHR
            request = host.injected.pop()[2]
            engine.on_packet_delivered(request)
            host.run_next()
            forward = host.injected.pop()[2]
            engine.on_packet_delivered(forward)
            host.run_next()
            response = host.injected.pop()[2]
            engine.on_packet_delivered(response)


class TestEngineBookkeeping:
    def test_unknown_packets_ignored(self):
        host = StubHost()
        engine = make_engine(host)
        stray = Packet(PacketClass.SPECIAL, 0, 1)
        engine.on_packet_delivered(stray)  # no transaction: no effect
        stale = Packet(PacketClass.REQUEST, 0, 1, transaction=99999)
        engine.on_packet_delivered(stale)  # unknown tid: no effect

    def test_outstanding_count(self):
        host = StubHost()
        engine = make_engine(host)
        assert engine.outstanding_transactions == 0
        engine.try_start_transaction(0, 1)
        assert engine.outstanding_transactions == 1

    def test_transaction_ids_unique(self):
        assert Transaction.next_tid() != Transaction.next_tid()
