"""Service CLI end to end: real processes, real SIGKILLs.

The heavyweight acceptance test lives here: a coordinator serving a
chaos campaign over two worker *processes* is SIGKILLed mid-campaign
and restarted with ``--resume``; the journal lock left by the corpse
is taken over, completed scenarios are not re-run, and the final
manifest is byte-identical to a single-host supervised run.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.chaos.campaign import CampaignConfig, run_campaign
from repro.chaos.scenario import ScenarioSpace
from repro.resilience.supervisor import SupervisorConfig

CAMPAIGN_ARGS = [
    "--preset", "smoke", "--no-traces", "--seed", "11",
    "--point-timeout", "60", "--quiet",
]


def free_port() -> int:
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def service_cli(*args, **popen_kwargs):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.experiments.cli", *args],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        **popen_kwargs,
    )


def start_workers(port, count=2):
    return [
        service_cli(
            "work", "--connect", f"127.0.0.1:{port}",
            "--name", f"w{i}", "--seed", str(i),
        )
        for i in range(count)
    ]


def reap(processes, timeout_s=30):
    codes = []
    for process in processes:
        try:
            codes.append(process.wait(timeout=timeout_s))
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait(timeout=10)
            codes.append("killed")
    return codes


def single_host_reference(output_dir: Path, count: int = 3):
    return run_campaign(
        CampaignConfig(
            output_dir=output_dir,
            seed=11,
            count=count,
            space=ScenarioSpace.smoke(),
            inject_deadlock=False,
            traces=False,
            workers=2,
            supervisor=SupervisorConfig(
                point_timeout_s=60.0, heartbeat_stale_s=60.0
            ),
        )
    )


def wait_for_journal_lines(journal: Path, count: int, timeout_s: float = 120.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if journal.exists():
            lines = [l for l in journal.read_text().splitlines() if l.strip()]
            if len(lines) >= count:
                return lines
        time.sleep(0.02)
    raise TimeoutError(f"{journal} never reached {count} records")


class TestServeEndToEnd:
    def test_fleet_campaign_matches_reference_manifest(self, tmp_path):
        reference = single_host_reference(tmp_path / "single")
        port = free_port()
        out = tmp_path / "fleet"
        serve = service_cli(
            "serve", "chaos", "--output-dir", str(out), "--count", "3",
            *CAMPAIGN_ARGS, "--port", str(port), "--wait-workers", "2",
        )
        workers = start_workers(port)
        stdout, stderr = serve.communicate(timeout=180)
        assert serve.returncode == 0, stderr[-2000:]
        assert reap(workers) == [0, 0], "workers must exit 0 on shutdown"
        assert (out / "campaign_manifest.json").read_bytes() == (
            reference.manifest_path.read_bytes()
        )

    def test_coordinator_sigkill_then_resume_restart(self, tmp_path):
        """The crash-safety acceptance path: SIGKILL the coordinator
        mid-campaign, restart with --resume on the same port, and the
        manifest still matches the single-host reference byte for
        byte -- no lost work, no double-recorded work, no manual
        lock cleanup."""
        # Smoke scenarios run in tens of milliseconds; a wide campaign
        # keeps plenty of work in flight when the SIGKILL lands.
        reference = single_host_reference(tmp_path / "single", count=24)
        port = free_port()
        out = tmp_path / "fleet"
        serve = service_cli(
            "serve", "chaos", "--output-dir", str(out), "--count", "24",
            *CAMPAIGN_ARGS, "--port", str(port), "--wait-workers", "2",
        )
        workers = start_workers(port)
        try:
            # Let at least one scenario land in the journal, then
            # murder the coordinator mid-campaign.
            wait_for_journal_lines(out / "campaign.journal.jsonl", 2)
            os.kill(serve.pid, signal.SIGKILL)
            serve.wait(timeout=30)
            assert (out / "campaign.journal.jsonl.lock").exists(), (
                "a SIGKILLed coordinator must leave its lock (that is "
                "what stale takeover is for)"
            )
            # Workers are now reconnecting with jittered backoff; the
            # restarted coordinator takes over the stale lock, resumes
            # from the journal, and re-leases only the remainder.
            restart = service_cli(
                "serve", "chaos", "--output-dir", str(out), "--count", "24",
                *CAMPAIGN_ARGS, "--resume", "--port", str(port),
                "--wait-workers", "2",
            )
            stdout, stderr = restart.communicate(timeout=180)
            assert restart.returncode == 0, stderr[-2000:]
            assert reap(workers) == [0, 0]
        finally:
            reap(workers, timeout_s=1)
        assert (out / "campaign_manifest.json").read_bytes() == (
            reference.manifest_path.read_bytes()
        )
        records = [
            json.loads(line)
            for line in (out / "campaign.journal.jsonl").read_text().splitlines()
        ]
        scenario_ids = [
            r["algorithm"]  # the journal's generic key holds scenario_id
            for r in records
            if r.get("kind") == "chaos-scenario"
        ]
        assert len(scenario_ids) == len(set(scenario_ids)), (
            "exactly-once journaling: no scenario recorded twice"
        )

    def test_status_and_submit_against_idle_coordinator(self, tmp_path):
        port = free_port()
        serve = service_cli("serve", "--port", str(port), "--quiet")
        workers = []
        try:
            deadline = time.monotonic() + 30
            status = None
            while time.monotonic() < deadline:
                probe = service_cli(
                    "status", "--connect", f"127.0.0.1:{port}", "--json"
                )
                stdout, _ = probe.communicate(timeout=30)
                # The provider is installed just after the listener
                # opens; keep probing until the full status shape shows.
                if probe.returncode == 0 and "state" in json.loads(stdout):
                    status = json.loads(stdout)
                    break
                time.sleep(0.1)
            assert status is not None, "status verb never connected"
            assert status["state"] == "idle"
            assert status["workers"] == []

            workers = start_workers(port, count=1)
            out = tmp_path / "submitted"
            submit = service_cli(
                "submit", "chaos", "--connect", f"127.0.0.1:{port}",
                "--output-dir", str(out), "--count", "1", "--preset",
                "smoke", "--no-traces", "--quiet",
            )
            stdout, stderr = submit.communicate(timeout=30)
            assert submit.returncode == 0, stderr[-2000:]
            assert "submitted chaos" in stdout

            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if (out / "campaign_manifest.json").exists():
                    break
                time.sleep(0.2)
            else:
                pytest.fail("submitted campaign never finished")
        finally:
            serve.kill()
            serve.wait(timeout=10)
            reap(workers, timeout_s=5)
