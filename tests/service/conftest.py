"""Shared fixtures for the distributed-service tests.

Every test in this directory carries the ``service`` marker (run the
slice alone with ``pytest -m service``).  Two worker shapes are on
offer: in-process *thread* workers for the protocol/parity tests
(cheap, and determinism does not care where the worker runs), and
spawned *process* workers for the crash tests, where a SIGKILL has to
take a real OS process with it.
"""

from __future__ import annotations

import multiprocessing
import threading

import pytest

from repro.service.server import ServiceServer
from repro.service.worker import FleetWorker, WorkerConfig, run_worker
from repro.sim.config import NetworkConfig, SimulationConfig, TrafficConfig


def pytest_collection_modifyitems(items):
    for item in items:
        if "tests/service/" in str(item.fspath).replace("\\", "/"):
            item.add_marker(pytest.mark.service)


@pytest.fixture
def tiny_config() -> SimulationConfig:
    """A 2x2 torus run small enough to sweep repeatedly in tests."""
    return SimulationConfig(
        network=NetworkConfig(width=2, height=2),
        traffic=TrafficConfig(injection_rate=0.01),
        warmup_cycles=200,
        measure_cycles=1_000,
        seed=11,
    )


class Fleet:
    """A live server plus its workers, with a clean-shutdown teardown."""

    def __init__(self) -> None:
        self.server = ServiceServer()
        self._threads: list[threading.Thread] = []
        self._processes: list[multiprocessing.Process] = []

    def add_thread_worker(self, name: str, seed: int = 0) -> None:
        config = WorkerConfig(
            host=self.server.host, port=self.server.port, name=name, seed=seed
        )
        thread = threading.Thread(
            target=FleetWorker(config).run, name=name, daemon=True
        )
        thread.start()
        self._threads.append(thread)

    def add_process_worker(self, name: str, seed: int = 0) -> multiprocessing.Process:
        config = WorkerConfig(
            host=self.server.host, port=self.server.port, name=name, seed=seed
        )
        process = multiprocessing.get_context("spawn").Process(
            target=run_worker, args=(config,), name=name, daemon=True
        )
        process.start()
        self._processes.append(process)
        return process

    def wait_for_workers(self, count: int, timeout_s: float = 30.0) -> None:
        import time

        deadline = time.monotonic() + timeout_s
        while len(self.server.workers) < count:
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"only {len(self.server.workers)}/{count} workers joined"
                )
            time.sleep(0.05)

    def shutdown(self) -> None:
        self.server.broadcast({"type": "shutdown"})
        for thread in self._threads:
            thread.join(timeout=10)
        for process in self._processes:
            process.join(timeout=10)
            if process.is_alive():
                process.kill()
                process.join(timeout=5)
        self.server.close()


@pytest.fixture
def fleet():
    fleet = Fleet()
    yield fleet
    fleet.shutdown()
