"""Wire protocol: framing, payload round-trips, malformed input.

The channel is exercised over a real localhost TCP pair (not an
AF_UNIX socketpair) because that is exactly what the service runs on,
peer naming included.
"""

import socket
import threading

import pytest

from repro.service import protocol
from repro.service.protocol import (
    MessageChannel,
    ProtocolError,
    connect,
    decode_payload,
    encode_payload,
)
from repro.service.worker import WorkerConfig


def tcp_pair():
    """A connected (client_channel, server_channel, raw_server_sock)."""
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    host, port = listener.getsockname()
    accepted = {}

    def _accept():
        accepted["sock"], _ = listener.accept()

    thread = threading.Thread(target=_accept)
    thread.start()
    client = connect(host, port)
    thread.join(timeout=5)
    listener.close()
    return client, MessageChannel(accepted["sock"]), accepted["sock"]


class TestPayloads:
    def test_round_trips_a_dataclass_exactly(self):
        spec = WorkerConfig(host="example", port=7421, name="w0", seed=3)
        assert decode_payload(encode_payload(spec)) == spec

    def test_round_trips_nested_structures(self):
        obj = {"curve": [(0.01, 12.5), (0.3, 99.0)], "algo": "SPAA-base"}
        assert decode_payload(encode_payload(obj)) == obj

    def test_payload_is_json_safe(self):
        import json

        encoded = encode_payload(WorkerConfig())
        assert json.loads(json.dumps({"payload": encoded}))["payload"] == encoded


class TestMessageChannel:
    def test_frames_round_trip(self):
        a, b, _ = tcp_pair()
        try:
            a.send({"type": "hello", "name": "w0"})
            assert b.recv() == {"type": "hello", "name": "w0"}
            b.send({"type": "welcome", "session": "abc"})
            assert a.recv() == {"type": "welcome", "session": "abc"}
        finally:
            a.close()
            b.close()

    def test_recv_returns_none_on_orderly_close(self):
        a, b, _ = tcp_pair()
        try:
            a.close()
            assert b.recv() is None
        finally:
            b.close()

    def test_garbage_line_is_a_protocol_error(self):
        a, b, raw = tcp_pair()
        try:
            raw.sendall(b"this is not json\n")
            with pytest.raises(ProtocolError, match="bad frame"):
                a.recv()
        finally:
            a.close()
            b.close()

    def test_frame_without_type_is_rejected(self):
        a, b, raw = tcp_pair()
        try:
            raw.sendall(b'{"no": "type"}\n')
            with pytest.raises(ProtocolError, match="without a type"):
                a.recv()
        finally:
            a.close()
            b.close()

    def test_oversized_frame_is_rejected(self, monkeypatch):
        monkeypatch.setattr(protocol, "MAX_FRAME_BYTES", 64)
        a, b, raw = tcp_pair()
        try:
            raw.sendall(b'{"type": "x", "pad": "' + b"y" * 200 + b'"}\n')
            with pytest.raises(ProtocolError, match="exceeds"):
                a.recv()
        finally:
            a.close()
            b.close()

    def test_peer_name_is_host_port(self):
        a, b, _ = tcp_pair()
        try:
            assert a.peer.startswith("127.0.0.1:")
            assert b.peer.startswith("127.0.0.1:")
        finally:
            a.close()
            b.close()
