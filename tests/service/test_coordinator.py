"""FleetCoordinator: leasing, dedup, reassignment, expiry, quarantine.

These tests script the worker side of the protocol by hand (a raw
:func:`connect` channel speaking hello/result/error frames) so every
coordinator decision -- which frame is live, which is stale, who gets
kicked -- is pinned against exact wire traffic rather than whatever a
real worker happens to do.  The coordinator only schedules while its
event loop pumps, so each test drains it on a background thread and
plays the worker from the main one.
"""

import threading
import time

import pytest

from repro.resilience.supervisor import SupervisorConfig
from repro.service.coordinator import FleetCoordinator
from repro.service.protocol import connect, decode_payload, encode_payload
from repro.service.server import ServiceServer

FAST_POLL = dict(poll_interval_s=0.02, reap_grace_s=2.0)


class ScriptedWorker:
    """A hand-driven fleet member: joins, then obeys the test."""

    def __init__(self, server: ServiceServer, name: str) -> None:
        self.channel = connect(server.host, server.port)
        self.channel.send({"type": "hello", "name": name})
        welcome = self.channel.recv()
        assert welcome["type"] == "welcome"
        self.session = welcome["session"]

    def take_task(self) -> dict:
        frame = self.channel.recv()
        assert frame is not None and frame["type"] == "task", frame
        return frame

    def deliver(self, task: dict, result, dispatch=None) -> None:
        self.channel.send({
            "type": "result",
            "token": task["token"],
            "dispatch": task["dispatch"] if dispatch is None else dispatch,
            "payload": encode_payload(result),
        })

    def fail(self, task: dict, detail: str) -> None:
        self.channel.send({
            "type": "error",
            "token": task["token"],
            "dispatch": task["dispatch"],
            "detail": detail,
        })

    def close(self) -> None:
        self.channel.close()


class Drain:
    """Drive ``next_event`` on a thread; the main thread scripts the wire.

    Start *after* the first ``submit`` (an idle coordinator has nothing
    outstanding and the drain would end immediately).
    """

    def __init__(self, coordinator: FleetCoordinator) -> None:
        self.events = []
        self.error: BaseException | None = None
        self._thread = threading.Thread(target=self._run, args=(coordinator,))
        self._thread.daemon = True
        self._thread.start()

    def _run(self, coordinator: FleetCoordinator) -> None:
        try:
            while coordinator.outstanding:
                self.events.append(coordinator.next_event())
        except BaseException as error:  # surfaced by wait()
            self.error = error

    def wait(self, timeout_s: float = 30.0) -> list:
        self._thread.join(timeout_s)
        assert not self._thread.is_alive(), "coordinator drain hung"
        if self.error is not None:
            raise self.error
        return self.events


@pytest.fixture
def server():
    with ServiceServer() as server:
        yield server


def wait_for_roster(server, count, timeout_s=10.0):
    deadline = time.monotonic() + timeout_s
    while len(server.workers) < count:
        assert time.monotonic() < deadline, "worker never joined the roster"
        time.sleep(0.01)


class TestDispatchAndDelivery:
    def test_task_frame_round_trip(self, server):
        worker = ScriptedWorker(server, "w0")
        wait_for_roster(server, 1)
        with FleetCoordinator(
            server, SupervisorConfig(**FAST_POLL), task_kind="sweep-point"
        ) as coordinator:
            coordinator.submit(("PIM1", "0.01"), {"rate": 0.01})
            drain = Drain(coordinator)
            task = worker.take_task()
            assert task["task_kind"] == "sweep-point"
            assert decode_payload(task["payload"]) == {"rate": 0.01}
            worker.deliver(task, "the-answer")
            [event] = drain.wait()
        assert event.kind == "result"
        assert event.task_id == ("PIM1", "0.01")
        assert event.result == "the-answer"
        assert coordinator.stats["leases"] == 1
        assert coordinator.stats["duplicates"] == 0
        worker.close()

    def test_submit_after_close_is_refused(self, server):
        coordinator = FleetCoordinator(server, SupervisorConfig(**FAST_POLL))
        coordinator.close()
        with pytest.raises(RuntimeError):
            coordinator.submit("t", 1)

    def test_stale_dispatch_is_discarded_not_recorded(self, server):
        """The exactly-once core: a result stamped with a superseded
        dispatch id never becomes an event."""
        worker = ScriptedWorker(server, "w0")
        wait_for_roster(server, 1)
        with FleetCoordinator(
            server, SupervisorConfig(**FAST_POLL)
        ) as coordinator:
            coordinator.submit("t", "payload")
            drain = Drain(coordinator)
            task = worker.take_task()
            worker.deliver(task, "STALE", dispatch=task["dispatch"] + 1)
            worker.deliver(task, "live")
            [event] = drain.wait()
        assert event.result == "live"
        assert coordinator.stats["duplicates"] == 1
        worker.close()

    def test_unknown_token_is_discarded(self, server):
        worker = ScriptedWorker(server, "w0")
        wait_for_roster(server, 1)
        with FleetCoordinator(
            server, SupervisorConfig(**FAST_POLL)
        ) as coordinator:
            coordinator.submit("t", "payload")
            drain = Drain(coordinator)
            task = worker.take_task()
            worker.channel.send({
                "type": "result",
                "token": "0000-999",  # another coordinator's token
                "dispatch": task["dispatch"],
                "payload": encode_payload("ghost"),
            })
            worker.deliver(task, "live")
            [event] = drain.wait()
        assert event.result == "live"
        assert coordinator.stats["duplicates"] == 1
        worker.close()

    def test_sequential_coordinators_share_one_fleet(self, server):
        """close() leaves the server (and roster) alive: the next
        sweep's coordinator reuses the same connected workers."""
        worker = ScriptedWorker(server, "w0")
        wait_for_roster(server, 1)
        for round_no in range(2):
            with FleetCoordinator(
                server, SupervisorConfig(**FAST_POLL)
            ) as coordinator:
                coordinator.submit("t", round_no)
                drain = Drain(coordinator)
                task = worker.take_task()
                worker.deliver(task, round_no * 10)
                [event] = drain.wait()
            assert event.result == round_no * 10
        assert len(server.workers) == 1
        worker.close()


class TestCrashHandling:
    def test_disconnect_mid_lease_reassigns_to_survivor(self, server):
        first = ScriptedWorker(server, "doomed")
        wait_for_roster(server, 1)
        second = ScriptedWorker(server, "survivor")
        wait_for_roster(server, 2)
        with FleetCoordinator(
            server, SupervisorConfig(**FAST_POLL), resubmit_crashed=True
        ) as coordinator:
            coordinator.submit("t", "payload")
            drain = Drain(coordinator)
            task = first.take_task()
            first.close()  # dies mid-task
            retry = second.take_task()
            assert retry["dispatch"] > task["dispatch"]
            second.deliver(retry, "recovered")
            events = drain.wait()
        assert [e.kind for e in events] == ["worker-lost", "result"]
        assert "disconnected mid-task" in events[0].detail
        assert events[1].result == "recovered"
        assert coordinator.stats["worker_lost"] == 1
        assert coordinator.stats["reassignments"] == 1
        second.close()

    def test_error_frame_is_a_worker_lost_crash(self, server):
        worker = ScriptedWorker(server, "w0")
        wait_for_roster(server, 1)
        with FleetCoordinator(
            server, SupervisorConfig(**FAST_POLL), resubmit_crashed=False
        ) as coordinator:
            coordinator.submit("t", "payload")
            drain = Drain(coordinator)
            task = worker.take_task()
            worker.fail(task, "ValueError: boom")
            [event] = drain.wait()
        assert event.kind == "worker-lost"
        assert event.detail == "ValueError: boom"
        worker.close()

    def test_poison_task_quarantined_after_k_crashes(self, server):
        worker = ScriptedWorker(server, "w0")
        wait_for_roster(server, 1)
        config = SupervisorConfig(quarantine_after=2, **FAST_POLL)
        with FleetCoordinator(
            server, config, resubmit_crashed=True
        ) as coordinator:
            coordinator.submit("poison", "payload")
            drain = Drain(coordinator)
            for _ in range(2):
                task = worker.take_task()
                worker.fail(task, "RuntimeError: dies every time")
            events = drain.wait()
        assert [e.kind for e in events] == [
            "worker-lost", "worker-lost", "quarantined",
        ]
        assert events[-1].crashes == 2
        assert coordinator.stats["quarantined"] == 1
        worker.close()


class TestLeaseExpiry:
    def test_silent_worker_is_kicked_on_stale_heartbeat(self, server):
        worker = ScriptedWorker(server, "wedged")
        wait_for_roster(server, 1)
        config = SupervisorConfig(
            point_timeout_s=60.0, heartbeat_stale_s=0.4, **FAST_POLL
        )
        with FleetCoordinator(
            server, config, resubmit_crashed=False
        ) as coordinator:
            coordinator.submit("t", "payload")
            started = time.monotonic()
            drain = Drain(coordinator)
            worker.take_task()  # ...and then never heartbeat
            [event] = drain.wait()
            elapsed = time.monotonic() - started
        assert event.kind == "timeout"
        assert "heartbeat stale" in event.detail
        assert elapsed < 10.0, "expiry must not wait for the deadline"
        assert coordinator.stats["timeouts"] == 1
        # The remote analogue of reaping: the connection was dropped.
        assert worker.channel.recv() is None

    def test_heartbeats_hold_the_lease_open(self, server):
        worker = ScriptedWorker(server, "chatty")
        wait_for_roster(server, 1)
        config = SupervisorConfig(
            point_timeout_s=60.0, heartbeat_stale_s=0.6, **FAST_POLL
        )
        with FleetCoordinator(
            server, config, resubmit_crashed=False
        ) as coordinator:
            coordinator.submit("t", "payload")
            drain = Drain(coordinator)
            task = worker.take_task()
            for _ in range(6):  # stay slow but chatty past the bound
                time.sleep(0.25)
                worker.channel.send({
                    "type": "heartbeat",
                    "token": task["token"],
                    "dispatch": task["dispatch"],
                })
            worker.deliver(task, "slow but alive")
            [event] = drain.wait()
        assert event.kind == "result"
        assert event.result == "slow but alive"
        assert coordinator.stats["timeouts"] == 0
        worker.close()
