"""Fleet acceptance: bitwise parity with single-host runs under chaos.

The distributed contract under test is the paper-repro one: where a
point runs (serial, local pool, remote fleet) and how many times its
worker died along the way must never change *what* the point computes.
Thread workers cover the happy parity paths; spawned process workers
take real SIGKILLs and wedges so the lease machinery (reassignment,
expiry kicks, exactly-once journaling) is exercised against actual
process death.
"""

import json
import time

import pytest

from repro.chaos.campaign import CampaignConfig, run_campaign
from repro.chaos.scenario import ScenarioSpace
from repro.resilience.checkpoint import SweepJournal
from repro.resilience.supervisor import SupervisorConfig
from repro.sim.parallel import (
    FAULT_ONCE_FILE_ENV,
    KILL_POINT_ENV,
    SERVICE_TRACE_NAME,
    WEDGE_POINT_ENV,
)
from repro.sim.sweep import sweep_algorithms

RATES = (0.005, 0.02)
ALGOS = ("PIM1", "SPAA-base")

#: generous deadline, staleness comfortably above a loaded host's
#: heartbeat gap (same reasoning as the supervisor tests).
FLEET_CONFIG = SupervisorConfig(
    point_timeout_s=60.0,
    heartbeat_stale_s=5.0,
    poll_interval_s=0.02,
    reap_grace_s=2.0,
)


def journal_records(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


def curves_digest(curves):
    return {
        algorithm: [p.as_dict() for p in curves[algorithm].points]
        for algorithm in curves
    }


class TestFleetSweeps:
    def test_fleet_sweep_matches_serial_bitwise(self, tiny_config, fleet):
        fleet.add_thread_worker("w0", seed=0)
        fleet.add_thread_worker("w1", seed=1)
        fleet.wait_for_workers(2)
        distributed = sweep_algorithms(
            tiny_config, ALGOS, RATES,
            supervisor=FLEET_CONFIG, fleet=fleet.server,
        )
        serial = sweep_algorithms(tiny_config, ALGOS, RATES)
        assert curves_digest(distributed) == curves_digest(serial)

    def test_fleet_defaults_supervision_on(self, tiny_config, fleet):
        """Passing only ``fleet=`` is enough: leasing needs deadlines,
        so a default SupervisorConfig is implied."""
        fleet.add_thread_worker("w0")
        fleet.wait_for_workers(1)
        distributed = sweep_algorithms(
            tiny_config, ("PIM1",), (0.005,), fleet=fleet.server
        )
        serial = sweep_algorithms(tiny_config, ("PIM1",), (0.005,))
        assert curves_digest(distributed) == curves_digest(serial)

    def test_sigkilled_remote_worker_journalled_then_recovered(
        self, tiny_config, tmp_path, monkeypatch, fleet
    ):
        """Acceptance: a worker SIGKILLed mid-point is seen as a lost
        lease, the crash is journalled, the point is re-leased to the
        survivor, and the final curves equal a serial sweep's."""
        journal_path = tmp_path / "sweep.jsonl"
        monkeypatch.setenv(KILL_POINT_ENV, "PIM1:0.02")
        monkeypatch.setenv(FAULT_ONCE_FILE_ENV, str(tmp_path / "killed-once"))
        fleet.add_process_worker("w0", seed=0)
        fleet.add_process_worker("w1", seed=1)
        fleet.wait_for_workers(2)
        curves = sweep_algorithms(
            tiny_config, ALGOS, RATES,
            supervisor=FLEET_CONFIG,
            fleet=fleet.server,
            journal=SweepJournal(journal_path),
        )
        lost = [
            r for r in journal_records(journal_path)
            if r.get("reason") == "worker-lost"
        ]
        assert len(lost) == 1
        assert (lost[0]["algorithm"], lost[0]["rate_key"]) == ("PIM1", "0.02")
        monkeypatch.delenv(KILL_POINT_ENV)
        serial = sweep_algorithms(tiny_config, ALGOS, RATES)
        assert curves_digest(curves) == curves_digest(serial)

    def test_wedged_remote_worker_reaped_by_lease_expiry(
        self, tiny_config, tmp_path, monkeypatch, fleet
    ):
        """Acceptance: a wedged worker stops heartbeating, its lease
        goes stale, the coordinator kicks it and re-leases; the sweep
        completes with serial-identical curves."""
        journal_path = tmp_path / "sweep.jsonl"
        monkeypatch.setenv(WEDGE_POINT_ENV, "SPAA-base:0.005")
        monkeypatch.setenv(FAULT_ONCE_FILE_ENV, str(tmp_path / "wedged-once"))
        fleet.add_process_worker("w0", seed=0)
        fleet.add_process_worker("w1", seed=1)
        fleet.wait_for_workers(2)
        started = time.monotonic()
        curves = sweep_algorithms(
            tiny_config, ALGOS, RATES,
            supervisor=FLEET_CONFIG,
            fleet=fleet.server,
            journal=SweepJournal(journal_path),
        )
        assert time.monotonic() - started < 45.0, "reap must not hang"
        reaped = [
            r for r in journal_records(journal_path)
            if r.get("reason") == "timeout"
        ]
        assert len(reaped) == 1
        assert reaped[0]["algorithm"] == "SPAA-base"
        monkeypatch.delenv(WEDGE_POINT_ENV)
        serial = sweep_algorithms(tiny_config, ALGOS, RATES)
        assert curves_digest(curves) == curves_digest(serial)

    def test_fleet_trace_name_marks_the_service(self, tiny_config, tmp_path, fleet):
        fleet.add_thread_worker("w0")
        fleet.wait_for_workers(1)
        sweep_algorithms(
            tiny_config, ("PIM1",), (0.005,),
            fleet=fleet.server, telemetry_dir=tmp_path,
        )
        assert (tmp_path / SERVICE_TRACE_NAME).exists()
        manifest = json.loads((tmp_path / "sweep_manifest.json").read_text())
        assert manifest["supervisor"]["trace"] == SERVICE_TRACE_NAME


class TestFleetCampaigns:
    @staticmethod
    def _config(output_dir, **overrides):
        kwargs = dict(
            output_dir=output_dir,
            seed=3,
            count=3,
            space=ScenarioSpace.smoke(),
            inject_deadlock=False,
            traces=False,
            supervisor=FLEET_CONFIG,
        )
        kwargs.update(overrides)
        return CampaignConfig(**kwargs)

    def test_fleet_campaign_manifest_byte_identical_to_single_host(
        self, tmp_path, fleet
    ):
        """The headline acceptance artifact: the campaign manifest of
        a 2-worker fleet equals the single-host supervised one byte
        for byte."""
        single = run_campaign(self._config(tmp_path / "single", workers=2))
        fleet.add_thread_worker("w0", seed=0)
        fleet.add_thread_worker("w1", seed=1)
        fleet.wait_for_workers(2)
        distributed = run_campaign(
            self._config(tmp_path / "fleet", fleet=fleet.server)
        )
        assert distributed.manifest_path.read_bytes() == (
            single.manifest_path.read_bytes()
        )

    def test_fleet_campaign_resume_skips_recorded_outcomes(
        self, tmp_path, fleet
    ):
        """Coordinator-restart story, minus the SIGKILL (the CLI test
        covers that): a fresh coordinator pointed at the journal via
        ``resume`` re-runs nothing and reproduces the manifest."""
        fleet.add_thread_worker("w0")
        fleet.wait_for_workers(1)
        config = self._config(tmp_path / "campaign", fleet=fleet.server)
        first = run_campaign(config)
        from dataclasses import replace

        resumed = run_campaign(replace(config, resume=True))
        assert resumed.resumed == len(first.scenarios)
        assert resumed.manifest_path.read_bytes() == (
            first.manifest_path.read_bytes()
        )


class TestWorkerResilience:
    def test_worker_gives_up_after_max_reconnects(self):
        from repro.service.worker import FleetWorker, WorkerConfig

        # Nothing listens on this port; bounded retries must exit 1.
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        config = WorkerConfig(
            host="127.0.0.1",
            port=port,
            max_reconnects=2,
            reconnect_base_s=0.01,
            reconnect_max_s=0.05,
        )
        assert FleetWorker(config).run() == 1

    def test_reconnect_backoff_is_seeded_per_worker(self):
        """Two workers with distinct seeds must not back off in
        lockstep (the reconnect-stampede defence)."""
        import random

        from repro.resilience.backoff import jittered_backoff

        def schedule(seed):
            rng = random.Random(seed)
            return [
                jittered_backoff(0.5, 2.0, n, rng=rng, jitter=0.5, max_delay=30.0)
                for n in range(6)
            ]

        assert schedule(0) != schedule(1)
        assert schedule(0) == schedule(0)
