"""Sanity checks of the package's public import surface.

A downstream user's first contact is ``import repro`` and the names
documented in the README; these tests pin that surface so refactors
cannot silently break it.
"""

import importlib

import pytest

import repro


PUBLIC_MODULES = [
    "repro.core",
    "repro.core.antistarvation",
    "repro.core.base",
    "repro.core.islip",
    "repro.core.maxflow",
    "repro.core.mcm",
    "repro.core.mwm",
    "repro.core.opf",
    "repro.core.pim",
    "repro.core.policies",
    "repro.core.registry",
    "repro.core.spaa",
    "repro.core.timing",
    "repro.core.types",
    "repro.core.wavefront",
    "repro.network",
    "repro.network.channels",
    "repro.network.links",
    "repro.network.packets",
    "repro.network.routing",
    "repro.network.topology",
    "repro.router",
    "repro.router.buffers",
    "repro.router.connection_matrix",
    "repro.router.pipeline",
    "repro.router.ports",
    "repro.router.router",
    "repro.coherence",
    "repro.coherence.mshr",
    "repro.coherence.protocol",
    "repro.coherence.transactions",
    "repro.sim",
    "repro.sim.config",
    "repro.sim.engine",
    "repro.sim.metrics",
    "repro.sim.observers",
    "repro.sim.standalone",
    "repro.sim.sweep",
    "repro.sim.timing_model",
    "repro.sim.traffic",
    "repro.resilience",
    "repro.resilience.checkpoint",
    "repro.resilience.faults",
    "repro.resilience.invariants",
    "repro.resilience.watchdog",
    "repro.experiments",
    "repro.experiments.claims",
    "repro.experiments.cli",
    "repro.experiments.figure8",
    "repro.experiments.figure9",
    "repro.experiments.figure10",
    "repro.experiments.figure11",
    "repro.experiments.report",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_imports(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} must have a module docstring"


def test_version():
    assert repro.__version__


def test_top_level_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


@pytest.mark.parametrize(
    "package_name",
    ["repro.core", "repro.network", "repro.router", "repro.sim",
     "repro.coherence", "repro.experiments"],
)
def test_all_lists_resolve(package_name):
    package = importlib.import_module(package_name)
    for name in getattr(package, "__all__", []):
        assert getattr(package, name, None) is not None, (
            f"{package_name}.__all__ lists {name} but it does not resolve"
        )


def test_readme_quickstart_names_exist():
    from repro.sim import (  # noqa: F401
        NetworkConfig,
        SimulationConfig,
        StandaloneConfig,
        TrafficConfig,
        measure_matches,
        simulate_bnf_point,
    )


def test_public_classes_have_docstrings():
    import repro.core as core
    import repro.sim as sim

    for namespace in (core, sim):
        for name in namespace.__all__:
            obj = getattr(namespace, name)
            if isinstance(obj, type):
                assert obj.__doc__, f"{name} is missing a docstring"
