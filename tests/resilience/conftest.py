"""Shared fixtures for the resilience tests.

Every test in this directory carries the ``resilience`` marker, so the
fault-injection smoke job can run exactly this slice with
``pytest -m resilience``.
"""

from __future__ import annotations

import pytest

from repro.sim.config import NetworkConfig, SimulationConfig, TrafficConfig


def pytest_collection_modifyitems(items):
    for item in items:
        if "tests/resilience/" in str(item.fspath).replace("\\", "/"):
            item.add_marker(pytest.mark.resilience)


@pytest.fixture
def tiny_config() -> SimulationConfig:
    """A 2x2 torus run small enough to guard exhaustively in tests."""
    return SimulationConfig(
        network=NetworkConfig(width=2, height=2),
        traffic=TrafficConfig(injection_rate=0.01),
        warmup_cycles=200,
        measure_cycles=1_000,
        seed=11,
    )


@pytest.fixture
def quad_config() -> SimulationConfig:
    """A 4x4 torus run: big enough for link faults to fire reliably."""
    return SimulationConfig(
        network=NetworkConfig(width=4, height=4),
        traffic=TrafficConfig(injection_rate=0.02),
        warmup_cycles=500,
        measure_cycles=2_500,
        seed=11,
    )
