"""JournalLock: single-writer guard with crash-safe stale takeover.

The failure matrix pinned here is the one the fleet acceptance story
leans on: a SIGKILLed coordinator leaves its lock behind, and the
restarted coordinator (same host, dead pid) must take it over without
manual cleanup -- while a *live* second writer, or a writer on another
host, is always refused.
"""

import json
import os
import socket
import subprocess
import sys

import pytest

from repro.resilience.checkpoint import (
    JournalLock,
    JournalLockError,
    SweepJournal,
)


def read_holder(path):
    return json.loads(path.read_text())


class TestAcquireRelease:
    def test_acquire_writes_pid_and_host(self, tmp_path):
        lock = JournalLock(tmp_path / "sweep.jsonl.lock")
        lock.acquire()
        assert lock.held
        holder = read_holder(lock.path)
        assert holder["pid"] == os.getpid()
        assert holder["host"] == socket.gethostname()
        assert holder["acquired_at"] > 0
        lock.release()
        assert not lock.held
        assert not lock.path.exists()

    def test_context_manager(self, tmp_path):
        lock = JournalLock(tmp_path / "j.lock")
        with lock:
            assert lock.path.exists()
        assert not lock.path.exists()

    def test_release_without_acquire_is_a_no_op(self, tmp_path):
        lock = JournalLock(tmp_path / "j.lock")
        lock.path.write_text("{}")  # someone else's lock
        lock.release()
        assert lock.path.exists(), "must not remove a lock we never held"

    def test_journal_lock_is_a_sidecar(self, tmp_path):
        journal = SweepJournal(tmp_path / "sweep.jsonl")
        lock = journal.lock()
        assert lock.path == tmp_path / "sweep.jsonl.lock"


class TestContention:
    def test_live_holder_on_this_host_is_refused(self, tmp_path):
        path = tmp_path / "j.lock"
        with JournalLock(path):
            with pytest.raises(JournalLockError, match="live pid"):
                JournalLock(path).acquire()
            # The loser must not have clobbered the winner's lock.
            assert read_holder(path)["pid"] == os.getpid()

    def test_other_host_lock_is_never_taken_over(self, tmp_path):
        path = tmp_path / "j.lock"
        path.write_text(json.dumps({
            "pid": 1, "host": "some-other-host", "acquired_at": 0.0,
        }))
        with pytest.raises(JournalLockError, match="not this host"):
            JournalLock(path).acquire()
        assert path.exists()


class TestStaleTakeover:
    def test_dead_pid_same_host_is_taken_over(self, tmp_path, caplog):
        """The SIGKILLed-coordinator path: --resume must not require
        deleting the lock by hand."""
        # A real, definitely-dead pid from a reaped child process.
        child = subprocess.Popen([sys.executable, "-c", "pass"])
        child.wait()
        path = tmp_path / "j.lock"
        path.write_text(json.dumps({
            "pid": child.pid,
            "host": socket.gethostname(),
            "acquired_at": 0.0,
        }))
        with caplog.at_level("WARNING"):
            lock = JournalLock(path).acquire()
        assert lock.held
        assert read_holder(path)["pid"] == os.getpid()
        assert any("stale journal lock" in r.message for r in caplog.records)
        lock.release()

    def test_garbage_lock_file_is_treated_as_stale(self, tmp_path, caplog):
        path = tmp_path / "j.lock"
        path.write_text("not json at all\n")
        with caplog.at_level("WARNING"):
            lock = JournalLock(path).acquire()
        assert lock.held
        assert read_holder(path)["pid"] == os.getpid()
        lock.release()

    def test_takeover_loses_a_race_gracefully(self, tmp_path):
        """If the stale check still finds the path contended on the
        second try (a raced writer), acquire fails loudly instead of
        spinning."""
        path = tmp_path / "j.lock"
        path.write_text(json.dumps({
            "pid": os.getpid(),  # alive: never considered stale
            "host": socket.gethostname(),
            "acquired_at": 0.0,
        }))
        with pytest.raises(JournalLockError):
            JournalLock(path).acquire()
