"""Tests for the resilience layer (faults, invariants, watchdog, journal)."""
