"""The journal as a parallel work queue: resume, compaction, recovery.

These are the resilience-facing halves of the parallel runner (serial
parity and pool plumbing live in ``tests/sim/test_parallel.py``): a
partially journalled sweep resumed with ``workers=2`` must run only the
missing points, record the rest verbatim, and leave a journal that a
serial resume (or another parallel one) replays to the same state --
the crash-recovery contract of the serial runner, unchanged.
"""

import json

import pytest

from repro.resilience.checkpoint import SweepJournal
from repro.resilience.faults import FaultConfig
from repro.resilience.invariants import InvariantConfig
from repro.resilience.watchdog import WatchdogConfig
from repro.sim.sweep import SweepPointError, sweep_algorithm, sweep_algorithms

RATES = (0.005, 0.02)
ALGOS = ("PIM1", "SPAA-base")


def journal_records(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


class TestJournalAsWorkQueue:
    def test_parallel_resume_runs_only_the_missing_points(
        self, tiny_config, tmp_path
    ):
        """Pre-journalled points are claimed, not re-run, by the pool."""
        journal_path = tmp_path / "sweep.jsonl"
        # Seed the journal with one algorithm's worth of points
        # (simulating a sweep killed halfway through the grid).
        seeded = sweep_algorithm(
            tiny_config.with_algorithm("PIM1"),
            rates=RATES,
            journal=SweepJournal(journal_path),
        )
        lines_before = len(journal_records(journal_path))
        assert lines_before == len(RATES)

        progress: list[str] = []
        curves = sweep_algorithms(
            tiny_config,
            ALGOS,
            RATES,
            progress=progress.append,
            journal=SweepJournal(journal_path),
            resume=True,
            workers=2,
        )
        # Exactly the missing (SPAA-base) points were run and appended.
        records = journal_records(journal_path)
        assert len(records) == len(ALGOS) * len(RATES)
        fresh = [r for r in records[lines_before:]]
        assert {r["algorithm"] for r in fresh} == {"SPAA-base"}
        assert sum("resumed from journal" in line for line in progress) == 2
        # The spliced PIM1 points are the seeded run's, verbatim.
        assert [p.as_dict() for p in curves["PIM1"].points] == [
            p.as_dict() for p in seeded.points
        ]

    def test_parallel_and_serial_leave_equivalent_journals(
        self, tiny_config, tmp_path
    ):
        serial_journal = SweepJournal(tmp_path / "serial.jsonl")
        parallel_journal = SweepJournal(tmp_path / "parallel.jsonl")
        sweep_algorithms(tiny_config, ALGOS, RATES, journal=serial_journal)
        sweep_algorithms(
            tiny_config, ALGOS, RATES, journal=parallel_journal, workers=2
        )
        # Line order may differ (completion order vs sweep order); the
        # latest-wins state the resume path reads must not.
        for algorithm in ALGOS:
            for rate in RATES:
                serial_point = SweepJournal(
                    serial_journal.path
                ).completed_point(algorithm, rate)
                parallel_point = SweepJournal(
                    parallel_journal.path
                ).completed_point(algorithm, rate)
                assert parallel_point.as_dict() == serial_point.as_dict()

    def test_killed_parallel_sweep_resumes_cleanly(
        self, tiny_config, tmp_path
    ):
        """A failing point aborts the pool; --resume finishes the grid."""
        journal_path = tmp_path / "sweep.jsonl"
        # First pass: an impossible age bound fails every attempt of
        # every point it reaches -- the parallel analogue of a kill.
        with pytest.raises(SweepPointError):
            sweep_algorithms(
                tiny_config,
                ALGOS,
                RATES,
                invariants=InvariantConfig(
                    check_interval_cycles=100.0, max_wait_cycles=1e-9
                ),
                journal=SweepJournal(journal_path),
                workers=2,
            )
        assert SweepJournal(journal_path).failures()
        # Second pass, healthy and resumed: every point completes and
        # the compacted journal holds one success per key.
        curves = sweep_algorithms(
            tiny_config,
            ALGOS,
            RATES,
            journal=SweepJournal(journal_path),
            resume=True,
            workers=2,
        )
        assert all(len(curves[a].points) == len(RATES) for a in ALGOS)
        replayed = SweepJournal(journal_path)
        assert replayed.completed_count() == len(ALGOS) * len(RATES)
        assert not replayed.failures()
        # Compaction ran after the successful resume: one line per key.
        assert len(journal_records(journal_path)) == len(ALGOS) * len(RATES)


class TestGuardedParallel:
    def test_guarded_parallel_point_records_resilience(
        self, tiny_config, tmp_path
    ):
        """Workers rebuild injector/checker/watchdog from their specs."""
        journal_path = tmp_path / "sweep.jsonl"
        sweep_algorithm(
            tiny_config,
            rates=(0.02,),
            faults=FaultConfig(seed=5, flit_drop_rate=2e-3),
            invariants=InvariantConfig(),
            watchdog=WatchdogConfig(window_cycles=500.0),
            journal=SweepJournal(journal_path),
            workers=2,
        )
        record = journal_records(journal_path)[0]
        resilience = record["resilience"]
        assert resilience["drained_clean"] is True
        assert resilience["invariant_violations"] == 0
        assert resilience["link_retries"] == resilience["faults_injected"]

    def test_guarded_parallel_matches_guarded_serial(
        self, tiny_config, tmp_path
    ):
        """Per-point determinism holds with the full guard attached."""
        guard = dict(
            faults=FaultConfig(seed=5, flit_drop_rate=2e-3),
            invariants=InvariantConfig(),
        )
        serial = sweep_algorithm(tiny_config, rates=(0.02,), **guard)
        parallel = sweep_algorithm(
            tiny_config, rates=(0.02,), workers=2, **guard
        )
        assert [p.as_dict() for p in parallel.points] == [
            p.as_dict() for p in serial.points
        ]
