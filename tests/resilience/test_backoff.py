"""Jittered exponential backoff: determinism, capping, validation.

The helper backs two very different retry loops -- the simulator's
link retransmissions (where the jitter stream must replay exactly
under one fault seed) and the fleet worker's reconnects (where each
worker must jitter differently) -- so the contract under test is
"seeded and caller-owned", not just "roughly randomized".
"""

import random

import pytest

from repro.network.links import LinkRetrySpec
from repro.resilience.backoff import jittered_backoff
from repro.resilience.faults import FaultConfig, FaultInjector, parse_fault_spec


class TestJitteredBackoff:
    def test_zero_jitter_is_the_legacy_series(self):
        for attempt in range(6):
            assert jittered_backoff(4.0, 2.0, attempt) == 4.0 * 2.0**attempt

    def test_no_rng_means_no_jitter(self):
        # jitter without a stream owner silently degrades to nominal:
        # the caller opted out of randomness by not providing the RNG.
        assert jittered_backoff(1.0, 2.0, 3, rng=None, jitter=0.5) == 8.0

    def test_jitter_bounds_the_delay(self):
        rng = random.Random(7)
        for attempt in range(200):
            delay = jittered_backoff(2.0, 1.5, attempt % 5, rng=rng, jitter=0.25)
            nominal = 2.0 * 1.5 ** (attempt % 5)
            assert 0.75 * nominal <= delay <= 1.25 * nominal

    def test_same_seed_same_schedule(self):
        a = random.Random(11)
        b = random.Random(11)
        series_a = [jittered_backoff(1.0, 2.0, n, rng=a, jitter=0.5) for n in range(20)]
        series_b = [jittered_backoff(1.0, 2.0, n, rng=b, jitter=0.5) for n in range(20)]
        assert series_a == series_b
        c = random.Random(12)
        series_c = [jittered_backoff(1.0, 2.0, n, rng=c, jitter=0.5) for n in range(20)]
        assert series_a != series_c

    def test_cap_applies_before_jitter(self):
        # The nominal delay is capped, then jittered: delays at the cap
        # still spread (that spread is the whole point -- capping after
        # jitter would re-synchronize every long backoff).
        rng = random.Random(3)
        delays = {
            jittered_backoff(
                1.0, 2.0, 30, rng=rng, jitter=0.5, max_delay=10.0
            )
            for _ in range(32)
        }
        assert len(delays) > 1
        assert all(5.0 <= d <= 15.0 for d in delays)

    def test_cap_without_jitter_is_exact(self):
        assert jittered_backoff(1.0, 2.0, 30, max_delay=10.0) == 10.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base": -1.0, "factor": 2.0, "attempt": 0},
            {"base": 1.0, "factor": 0.5, "attempt": 0},
            {"base": 1.0, "factor": 2.0, "attempt": -1},
            {"base": 1.0, "factor": 2.0, "attempt": 0, "jitter": 1.0},
            {"base": 1.0, "factor": 2.0, "attempt": 0, "jitter": -0.1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            jittered_backoff(**kwargs)


class TestInjectorBackoffJitter:
    """The simulator-facing wiring: seeded jitter on link retransmits."""

    def _config(self, **retry_kwargs):
        return FaultConfig(
            seed=9,
            flit_drop_rate=0.05,
            retry=LinkRetrySpec(
                backoff_base_cycles=4.0, backoff_factor=2.0, **retry_kwargs
            ),
        )

    def test_jitter_stays_within_the_band(self):
        injector = FaultInjector(self._config(jitter=0.25))
        for attempt in range(50):
            delay = injector.retry_backoff_cycles(attempt % 4)
            nominal = 4.0 * 2.0 ** (attempt % 4)
            assert 0.75 * nominal <= delay <= 1.25 * nominal

    def test_zero_jitter_matches_the_nominal_policy(self):
        injector = FaultInjector(self._config(jitter=0.0))
        retry = injector.config.retry
        for attempt in range(4):
            assert injector.retry_backoff_cycles(attempt) == (
                retry.backoff_cycles(attempt)
            )

    def test_same_fault_seed_replays_the_jitter_schedule(self):
        series = [
            [
                FaultInjector(self._config(jitter=0.25)).retry_backoff_cycles(n)
                for n in range(8)
            ]
            for _ in range(2)
        ]
        assert series[0] == series[1]

    def test_jitter_stream_does_not_shift_fault_draws(self):
        """Retuning the backoff jitter must not change *which* flits
        fault: the Bernoulli schedule and the jitter draw live on
        separate seeded streams."""
        class FakePacket:
            flits = 8

        quiet = FaultInjector(self._config(jitter=0.0))
        noisy = FaultInjector(self._config(jitter=0.25))
        noisy.retry_backoff_cycles(0)  # consume jitter stream only
        schedule_quiet = [quiet.link_fault(FakePacket()) for _ in range(500)]
        schedule_noisy = [noisy.link_fault(FakePacket()) for _ in range(500)]
        assert schedule_quiet == schedule_noisy

    def test_parse_fault_spec_accepts_jitter(self):
        config = parse_fault_spec("seed=7,drop=0.01,jitter=0.5")
        assert config.retry.jitter == 0.5
        with pytest.raises(ValueError):
            parse_fault_spec("drop=0.01,jitter=1.5")
