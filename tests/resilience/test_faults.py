"""Fault injection: schedules, recovery, and accounting under fire."""

import math

import pytest

from repro.network.links import LinkRetrySpec
from repro.resilience.faults import (
    REASON_LINK_RETRIES_EXHAUSTED,
    FaultConfig,
    FaultInjector,
    parse_fault_spec,
    permanent_stall,
)
from repro.resilience.invariants import InvariantChecker
from repro.sim.timing_model import NetworkSimulator


class TestFaultConfig:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultConfig(flit_drop_rate=1.5)
        with pytest.raises(ValueError):
            FaultConfig(flit_drop_rate=0.7, flit_corrupt_rate=0.7)
        with pytest.raises(ValueError):
            FaultConfig(stall_cycles=-1.0)

    @pytest.mark.parametrize("rate_field", [
        "flit_drop_rate",
        "flit_corrupt_rate",
        "grant_suppression_rate",
        "grant_misroute_rate",
    ])
    @pytest.mark.parametrize("bad", [
        math.nan, -0.1, 1.0001, math.inf, "0.5", None, True,
    ])
    def test_every_rate_rejects_garbage(self, rate_field, bad):
        """NaN/negative/out-of-range/non-numeric rates all fail loudly.

        A NaN rate is the nasty one: every comparison against it is
        False, so without the explicit check it would silently disable
        the Bernoulli draw instead of erroring.
        """
        with pytest.raises(ValueError, match=rate_field):
            FaultConfig(**{rate_field: bad})

    def test_stall_window_rejects_garbage(self):
        with pytest.raises(ValueError, match="stall_cycles"):
            FaultConfig(stall_cycles=math.nan)
        # stall_start must be finite: an inf start never begins.
        with pytest.raises(ValueError, match="stall_start_cycle"):
            FaultConfig(stall_start_cycle=math.inf)
        with pytest.raises(ValueError, match="stall_start_cycle"):
            FaultConfig(stall_start_cycle=math.nan)
        with pytest.raises(ValueError, match="stall_start_cycle"):
            FaultConfig(stall_start_cycle=-5.0)
        # inf stall_cycles stays legal: that is the permanent stall.
        assert math.isinf(permanent_stall(node=0).stall_cycles)

    def test_enabled_flags(self):
        assert not FaultConfig().enabled
        assert FaultConfig(flit_drop_rate=0.1).affects_links
        assert FaultConfig(grant_suppression_rate=0.1).affects_grants
        assert FaultConfig(stall_node=3, stall_cycles=100.0).affects_grants
        assert not FaultConfig(stall_node=3).affects_grants  # zero-length

    def test_with_seed_changes_only_the_seed(self):
        config = FaultConfig(seed=1, flit_drop_rate=0.25)
        bumped = config.with_seed(2)
        assert bumped.seed == 2
        assert bumped.flit_drop_rate == 0.25


class TestRetrySpec:
    def test_backoff_is_exponential(self):
        retry = LinkRetrySpec(backoff_base_cycles=4.0, backoff_factor=2.0)
        assert retry.backoff_cycles(0) == 4.0
        assert retry.backoff_cycles(1) == 8.0
        assert retry.backoff_cycles(3) == 32.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkRetrySpec(max_retries=-1)
        with pytest.raises(ValueError):
            LinkRetrySpec(backoff_factor=0.5)


class TestFaultSpecParsing:
    def test_full_spec_round_trips(self):
        config = parse_fault_spec(
            "drop=1e-3,corrupt=5e-4,suppress=0.01,misroute=0.02,"
            "stall-node=3,stall-start=100,stall-cycles=inf,"
            "seed=7,max-retries=4,backoff=2"
        )
        assert config.flit_drop_rate == 1e-3
        assert config.flit_corrupt_rate == 5e-4
        assert config.grant_suppression_rate == 0.01
        assert config.grant_misroute_rate == 0.02
        assert config.stall_node == 3
        assert config.stall_start_cycle == 100.0
        assert math.isinf(config.stall_cycles)
        assert config.seed == 7
        assert config.retry.max_retries == 4
        assert config.retry.backoff_base_cycles == 2.0

    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError, match="not key=value"):
            parse_fault_spec("drop")
        with pytest.raises(ValueError, match="unknown fault spec key"):
            parse_fault_spec("volume=11")
        with pytest.raises(ValueError, match="not a number"):
            parse_fault_spec("drop=lots")
        with pytest.raises(ValueError, match="not an integer"):
            parse_fault_spec("stall-node=first")
        with pytest.raises(ValueError, match="not an integer"):
            parse_fault_spec("seed=7.5")
        # Values that parse as floats but fail FaultConfig validation
        # surface the config's message, not a parse error.
        with pytest.raises(ValueError, match="within"):
            parse_fault_spec("suppress=nan")
        with pytest.raises(ValueError, match="within"):
            parse_fault_spec("drop=-0.1")
        with pytest.raises(ValueError, match="stall_start_cycle"):
            parse_fault_spec("stall-start=inf")

    def test_blank_entries_ignored(self):
        config = parse_fault_spec("drop=1e-3, ,suppress=0.01,")
        assert config.flit_drop_rate == 1e-3
        assert config.grant_suppression_rate == 0.01

    def test_permanent_stall_helper(self):
        config = permanent_stall(node=5, start_cycle=50.0)
        assert config.stall_node == 5
        assert math.isinf(config.stall_cycles)
        assert config.affects_grants


class TestFaultSchedule:
    def test_same_seed_same_schedule(self):
        config = FaultConfig(seed=9, flit_drop_rate=0.05)

        class FakePacket:
            flits = 8

        injector_a = FaultInjector(config)
        injector_b = FaultInjector(config)
        verdicts_a = [injector_a.link_fault(FakePacket()) for _ in range(500)]
        verdicts_b = [injector_b.link_fault(FakePacket()) for _ in range(500)]
        assert verdicts_a == verdicts_b
        assert any(verdicts_a), "a 5% per-flit rate must fire in 500 tries"

    def test_longer_packets_more_exposed(self):
        config = FaultConfig(seed=9, flit_drop_rate=0.02)

        def hits(flits: int) -> int:
            injector = FaultInjector(config)

            class FakePacket:
                pass

            FakePacket.flits = flits
            return sum(
                injector.link_fault(FakePacket()) is not None
                for _ in range(2_000)
            )

        assert hits(19) > hits(3) * 2


class TestLossyRuns:
    def test_retries_recover_every_packet(self, quad_config):
        """Paper-style acceptance: 1e-3 flit loss, zero packets lost."""
        injector = FaultInjector(
            FaultConfig(seed=3, flit_drop_rate=1e-3, flit_corrupt_rate=5e-4)
        )
        checker = InvariantChecker()
        sim = NetworkSimulator(quad_config, faults=injector, invariants=checker)
        sim.run()
        assert sim.drain()
        checker.check_network(sim)
        checker.raise_if_violated()
        assert injector.total_faults() > 0, "schedule never fired"
        assert sim.stats.link_retries == injector.total_faults()
        assert sim.stats.packets_dropped == 0
        assert sim.total_delivered == sim.total_injected

    def test_zero_retries_drop_with_reason(self, quad_config):
        injector = FaultInjector(FaultConfig(
            seed=3,
            flit_drop_rate=5e-3,
            retry=LinkRetrySpec(max_retries=0),
        ))
        checker = InvariantChecker()
        sim = NetworkSimulator(quad_config, faults=injector, invariants=checker)
        sim.run()
        sim.drain()
        checker.check_network(sim)
        # Conservation holds *because* drops are recorded, not lost.
        checker.raise_if_violated()
        assert sim.stats.packets_dropped > 0
        assert (
            sim.stats.drops_by_reason[REASON_LINK_RETRIES_EXHAUSTED]
            == sim.stats.packets_dropped
        )
        assert sim.total_injected == (
            sim.total_delivered + sim.total_dropped
        )
        # The coherence engine aborts the owning transactions instead
        # of waiting forever on responses that never come.
        assert sim.stats.transactions_aborted > 0

    def test_low_fault_latency_stays_close_to_clean(self, quad_config):
        """Acceptance: low-load latency within 5% of the fault-free run."""
        clean = NetworkSimulator(quad_config)
        clean.run()
        faulty = NetworkSimulator(
            quad_config,
            faults=FaultInjector(FaultConfig(seed=3, flit_drop_rate=1e-3)),
        )
        faulty.run()
        clean_latency = clean.stats.packet_latency_ns.mean
        faulty_latency = faulty.stats.packet_latency_ns.mean
        assert faulty_latency == pytest.approx(clean_latency, rel=0.05)


class TestGrantFaults:
    def test_suppression_still_delivers_everything(self, tiny_config):
        injector = FaultInjector(
            FaultConfig(seed=5, grant_suppression_rate=0.05)
        )
        checker = InvariantChecker()
        sim = NetworkSimulator(tiny_config, faults=injector, invariants=checker)
        sim.run()
        assert sim.drain(), "suppressed grants must only delay, not wedge"
        checker.check_network(sim)
        checker.raise_if_violated()
        assert injector.counts["grant-suppressed"] > 0
        assert sim.total_delivered == sim.total_injected

    def test_misroute_still_delivers_everything(self, tiny_config):
        injector = FaultInjector(
            FaultConfig(seed=5, grant_misroute_rate=0.2)
        )
        checker = InvariantChecker()
        sim = NetworkSimulator(tiny_config, faults=injector, invariants=checker)
        sim.run()
        assert sim.drain()
        checker.check_network(sim)
        checker.raise_if_violated()
        assert sim.total_delivered == sim.total_injected

    def test_stall_window_blocks_then_releases(self, tiny_config):
        injector = FaultInjector(FaultConfig(
            seed=5, stall_node=0, stall_start_cycle=0.0, stall_cycles=400.0
        ))
        sim = NetworkSimulator(tiny_config, faults=injector)
        sim.run()
        assert injector.counts["stall-blocked"] > 0
        assert sim.drain(), "a bounded stall must recover after the window"
        assert sim.total_delivered == sim.total_injected


class TestStandaloneFaults:
    """The matching-layer seam: Figures 8/9 arbiters under grant loss."""

    def test_suppression_reduces_mean_matches(self):
        from repro.sim.standalone import StandaloneConfig, measure_matches

        config = StandaloneConfig(algorithm="MCM", load=32, trials=200, seed=11)
        clean = measure_matches(config)
        lossy = measure_matches(
            config, faults=FaultConfig(seed=3, grant_suppression_rate=0.2)
        )
        assert lossy < clean, "20% grant suppression must cost matches"
        assert lossy > clean * 0.6, "but only the suppressed fraction"

    def test_same_config_and_faults_is_deterministic(self):
        from repro.sim.standalone import StandaloneConfig, measure_matches

        config = StandaloneConfig(algorithm="SPAA", trials=150, seed=11)
        faults = FaultConfig(seed=9, grant_suppression_rate=0.1)
        assert measure_matches(config, faults=faults) == measure_matches(
            config, faults=faults
        )

    def test_trial_indexed_stall_blocks_only_its_window(self):
        injector = FaultInjector(FaultConfig(
            seed=2, stall_node=0, stall_start_cycle=10.0, stall_cycles=5.0
        ))
        grants = ["g1", "g2"]
        inside = [injector.filter_matching(grants, t) for t in range(10, 15)]
        outside = [
            injector.filter_matching(grants, t) for t in (0, 9, 15, 100)
        ]
        assert all(kept == [] for kept in inside)
        assert all(kept == grants for kept in outside)
        assert injector.counts["stall-blocked"] == 10

    def test_matching_suppression_is_seed_deterministic(self):
        config = FaultConfig(seed=4, grant_suppression_rate=0.5)
        grants = list(range(20))
        kept_a = FaultInjector(config).filter_matching(grants, 0)
        kept_b = FaultInjector(config).filter_matching(grants, 0)
        assert kept_a == kept_b
        assert 0 < len(kept_a) < len(grants)

    def test_stalled_trials_still_satisfy_invariants(self):
        """A stalled/suppressed matching stays a legal (sub)matching."""
        from repro.resilience.invariants import ArbitrationInvariants
        from repro.sim.standalone import StandaloneConfig, StandaloneRouterModel

        invariants = ArbitrationInvariants()
        model = StandaloneRouterModel(
            StandaloneConfig(algorithm="PIM", trials=60, seed=11),
            invariants=invariants,
            faults=FaultConfig(
                seed=5,
                grant_suppression_rate=0.3,
                stall_node=0,
                stall_start_cycle=10.0,
                stall_cycles=20.0,
            ),
        )
        stats = model.run()
        assert model.faults.counts["stall-blocked"] >= 0
        assert stats.count == 60

    def test_figure8_accepts_faults(self):
        from repro.experiments.figure8 import run_figure8

        result = run_figure8(
            trials=60,
            faults=FaultConfig(seed=3, grant_suppression_rate=0.5),
        )
        clean = run_figure8(trials=60)
        # Every algorithm's curve drops under 50% grant suppression.
        for algorithm, series in result.series.items():
            assert max(series) < max(clean.series[algorithm])
