"""Progress watchdog: stall detection, diagnostics, telemetry plumbing."""

import json

import pytest

from repro.obs.sink import JsonlSink
from repro.obs.telemetry import Telemetry
from repro.resilience.faults import FaultConfig, FaultInjector, permanent_stall
from repro.resilience.watchdog import (
    DeadlockError,
    ProgressWatchdog,
    WatchdogConfig,
)
from repro.sim.timing_model import NetworkSimulator


class TestWatchdogConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            WatchdogConfig(window_cycles=0)
        with pytest.raises(ValueError):
            WatchdogConfig(action="panic")
        with pytest.raises(ValueError):
            WatchdogConfig(max_snapshots=0)


class TestHealthyRuns:
    def test_no_fires_on_a_clean_run(self, tiny_config):
        dog = ProgressWatchdog(WatchdogConfig(window_cycles=300.0))
        sim = NetworkSimulator(tiny_config, watchdog=dog)
        sim.run()
        sim.drain()
        assert dog.clean

    def test_idle_network_is_not_a_stall(self, tiny_config):
        """No deliveries but also no outstanding work: stay quiet."""
        dog = ProgressWatchdog()
        sim = NetworkSimulator(tiny_config)
        sim.run()
        sim.drain()
        assert dog.observe(sim) is None
        assert dog.observe(sim) is None  # delivered unchanged, but idle
        assert dog.clean


class TestStallDetection:
    def test_full_grant_suppression_deadlocks_and_fires(self, tiny_config):
        """Acceptance: a manufactured deadlock is detected, not silent."""
        injector = FaultInjector(FaultConfig(
            seed=2, grant_suppression_rate=1.0
        ))
        dog = ProgressWatchdog(WatchdogConfig(window_cycles=200.0))
        sim = NetworkSimulator(tiny_config, faults=injector, watchdog=dog)
        sim.run()
        assert not sim.drain(max_extra_cycles=2_000.0)
        assert dog.fired > 0
        diag = dog.diagnostics[0]
        assert diag["outstanding"] > 0
        assert diag["routers"], "diagnostic must name the stuck routers"
        entry = diag["routers"][0]
        assert entry["ports"], "per-port occupancy is the point"
        assert json.dumps(diag), "diagnostic must be JSON-serializable"

    def test_permanent_stall_of_one_node_fires(self, tiny_config):
        injector = FaultInjector(permanent_stall(node=0, seed=2))
        dog = ProgressWatchdog(WatchdogConfig(window_cycles=200.0))
        sim = NetworkSimulator(tiny_config, faults=injector, watchdog=dog)
        sim.run()
        sim.drain(max_extra_cycles=2_000.0)
        assert dog.fired > 0

    def test_raise_mode_aborts_the_run(self, tiny_config):
        injector = FaultInjector(FaultConfig(
            seed=2, grant_suppression_rate=1.0
        ))
        dog = ProgressWatchdog(WatchdogConfig(
            window_cycles=200.0, action="raise"
        ))
        sim = NetworkSimulator(tiny_config, faults=injector, watchdog=dog)
        with pytest.raises(DeadlockError) as excinfo:
            sim.run()
            sim.drain(max_extra_cycles=5_000.0)
        assert excinfo.value.diagnostic["buffered"] >= 0

    def test_snapshot_cap_respected(self, tiny_config):
        injector = FaultInjector(FaultConfig(
            seed=2, grant_suppression_rate=1.0
        ))
        dog = ProgressWatchdog(WatchdogConfig(
            window_cycles=100.0, max_snapshots=2
        ))
        sim = NetworkSimulator(tiny_config, faults=injector, watchdog=dog)
        sim.run()
        sim.drain(max_extra_cycles=3_000.0)
        assert dog.fired > 2
        assert len(dog.diagnostics) == 2


class FakeSim:
    """Minimal watchdog subject: scripted progress, countable kicks."""

    def __init__(self):
        self.total_delivered = 0
        self.packets_in_transit = 0
        self.packets_sinking = 0
        self.now = 0.0
        self.routers = []
        self.kicks = 0
        from repro.obs.telemetry import NULL_TELEMETRY

        self.telemetry = NULL_TELEMETRY

    def total_buffered_packets(self):
        return 3

    def total_pending_injections(self):
        return 0

    def recovery_kick(self):
        self.kicks += 1


class TestRemediation:
    def test_kick_that_restores_progress_counts_as_remediated(self):
        dog = ProgressWatchdog(WatchdogConfig(
            window_cycles=100.0, remediate=True
        ))
        sim = FakeSim()
        assert dog.observe(sim) is None  # baseline tick
        diag = dog.observe(sim)  # stall: kick issued, grace window starts
        assert diag["verdict"] == "kick-issued"
        assert sim.kicks == 1
        assert dog.remediations_attempted == 1
        sim.total_delivered += 1  # the kick worked
        assert dog.observe(sim) is None
        assert dog.remediated == 1
        assert dog.deadlocked == 0

    def test_kick_that_fails_counts_as_deadlocked(self):
        dog = ProgressWatchdog(WatchdogConfig(
            window_cycles=100.0, remediate=True
        ))
        sim = FakeSim()
        dog.observe(sim)
        assert dog.observe(sim)["verdict"] == "kick-issued"
        diag = dog.observe(sim)  # grace window elapsed, still stuck
        assert diag["verdict"] == "deadlocked"
        assert dog.deadlocked == 1
        assert dog.remediated == 0
        assert sim.kicks == 1, "the kick is one-shot per episode"

    def test_raise_mode_gets_one_grace_window(self):
        dog = ProgressWatchdog(WatchdogConfig(
            window_cycles=100.0, action="raise", remediate=True
        ))
        sim = FakeSim()
        dog.observe(sim)
        assert dog.observe(sim)["verdict"] == "kick-issued"  # no raise yet
        with pytest.raises(DeadlockError):
            dog.observe(sim)

    def test_episode_rearms_after_remediation(self):
        """A later, unrelated stall gets its own kick."""
        dog = ProgressWatchdog(WatchdogConfig(
            window_cycles=100.0, remediate=True
        ))
        sim = FakeSim()
        dog.observe(sim)
        dog.observe(sim)  # kick 1
        sim.total_delivered += 1
        dog.observe(sim)  # remediated; state re-armed
        dog.observe(sim)  # stall again -> kick 2
        assert sim.kicks == 2
        assert dog.remediations_attempted == 2

    def test_real_deadlock_survives_the_kick(self, tiny_config):
        """recovery_kick cannot cure a stalled arbiter: deadlocked."""
        injector = FaultInjector(permanent_stall(node=0, seed=2))
        dog = ProgressWatchdog(WatchdogConfig(
            window_cycles=200.0, remediate=True
        ))
        sim = NetworkSimulator(tiny_config, faults=injector, watchdog=dog)
        sim.run()
        assert not sim.drain(max_extra_cycles=2_000.0)
        assert dog.remediations_attempted == 1
        assert dog.deadlocked >= 1
        assert dog.remediated == 0

    def test_remediation_outcome_lands_in_the_trace(self, tiny_config, tmp_path):
        trace = tmp_path / "kick.jsonl"
        injector = FaultInjector(permanent_stall(node=0, seed=2))
        dog = ProgressWatchdog(WatchdogConfig(
            window_cycles=200.0, remediate=True
        ))
        sim = NetworkSimulator(
            tiny_config,
            telemetry=Telemetry(sink=JsonlSink(trace)),
            faults=injector,
            watchdog=dog,
        )
        sim.run()
        sim.drain(max_extra_cycles=2_000.0)

        from repro.obs.analysis import summarize_trace

        summary = summarize_trace(trace)
        assert summary.event_counts.get("watchdog-remediation", 0) >= 1
        counts = summary.resilience_counts()
        assert counts["watchdog_remediations"] >= 1


class TestTelemetryIntegration:
    def test_watchdog_event_lands_in_the_trace(self, tiny_config, tmp_path):
        """Acceptance: the stall diagnostic is readable via repro obs."""
        trace = tmp_path / "stall.jsonl"
        injector = FaultInjector(FaultConfig(
            seed=2, grant_suppression_rate=1.0
        ))
        dog = ProgressWatchdog(WatchdogConfig(window_cycles=200.0))
        sim = NetworkSimulator(
            tiny_config,
            telemetry=Telemetry(sink=JsonlSink(trace)),
            faults=injector,
            watchdog=dog,
        )
        sim.run()
        # Guarded runs finalize their telemetry at drain(), so the
        # drain-time fires -- where a deadlock actually shows -- land
        # in the trace too.
        sim.drain(max_extra_cycles=2_000.0)

        from repro.obs.analysis import summarize_trace

        summary = summarize_trace(trace)
        assert summary.event_counts.get("watchdog", 0) == dog.fired
        assert summary.watchdog_diagnostics
        assert summary.watchdog_diagnostics[0]["routers"]
        counts = summary.resilience_counts()
        assert counts["watchdog_fires"] == dog.fired
        assert counts["grant_faults"] > 0
        assert counts["drain_warnings"] == 1

        from repro.obs.cli import _render_summary

        text = _render_summary(summary)
        assert "Watchdog stall snapshot" in text
        assert "Resilience" in text
