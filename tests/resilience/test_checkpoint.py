"""Checkpointed sweeps: the journal, resume splicing, and retry logic."""

import json
import math

import pytest

from repro.resilience.checkpoint import SweepJournal, rate_key
from repro.resilience.faults import FaultConfig
from repro.resilience.invariants import InvariantConfig
from repro.resilience.watchdog import WatchdogConfig
from repro.sim.config import NetworkConfig, SimulationConfig, TrafficConfig
from repro.sim.metrics import BNFPoint
from repro.sim.sweep import SweepGuard, SweepPointError, sweep_algorithm


def tiny_config(seed: int = 3) -> SimulationConfig:
    return SimulationConfig(
        network=NetworkConfig(width=2, height=2),
        traffic=TrafficConfig(injection_rate=0.01),
        warmup_cycles=200,
        measure_cycles=800,
        seed=seed,
    )


def sample_point(rate: float = 0.01) -> BNFPoint:
    return BNFPoint(
        offered_rate=rate,
        throughput=0.125,
        latency_ns=42.5,
        transaction_latency_ns=120.0,
        packets_delivered=960,
    )


class TestRateKey:
    def test_distinct_floats_get_distinct_keys(self):
        assert rate_key(0.3) != rate_key(0.30000000000000004)

    def test_key_round_trips(self):
        for rate in (0.3, 0.30000000000000004, 1e-3, 0.045):
            assert float(rate_key(rate)) == rate


class TestSweepJournal:
    def test_success_round_trips_the_point(self, tmp_path):
        journal = SweepJournal(tmp_path / "sweep.journal.jsonl")
        point = sample_point()
        journal.record_success("SPAA-base", 0.01, point, attempts=2)

        fresh = SweepJournal(journal.path)
        restored = fresh.completed_point("SPAA-base", 0.01)
        assert restored is not None
        assert restored.offered_rate == point.offered_rate
        assert restored.throughput == point.throughput
        assert restored.latency_ns == point.latency_ns
        assert restored.packets_delivered == point.packets_delivered

    def test_missing_file_is_empty(self, tmp_path):
        journal = SweepJournal(tmp_path / "absent.jsonl")
        assert journal.completed_point("PIM1", 0.01) is None
        assert journal.completed_count() == 0

    def test_latest_record_wins(self, tmp_path):
        journal = SweepJournal(tmp_path / "sweep.jsonl")
        journal.record_failure("PIM1", 0.02, attempt=1, error="boom")
        assert journal.completed_point("PIM1", 0.02) is None
        assert journal.failures()
        journal.record_success("PIM1", 0.02, sample_point(0.02))
        assert journal.completed_point("PIM1", 0.02) is not None
        assert not journal.failures()

    def test_float_twin_rates_are_distinct_points(self, tmp_path):
        journal = SweepJournal(tmp_path / "sweep.jsonl")
        journal.record_success("PIM1", 0.3, sample_point(0.3))
        assert journal.completed_point("PIM1", 0.30000000000000004) is None

    def test_corrupt_line_is_a_loud_error(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        path.write_text('{"algorithm": "PIM1"\n')
        with pytest.raises(ValueError, match="corrupt journal line"):
            SweepJournal(path).load()

    def test_nan_latency_survives_the_round_trip(self, tmp_path):
        """Unsaturated smoke points can carry NaN transaction latency."""
        journal = SweepJournal(tmp_path / "sweep.jsonl")
        point = BNFPoint(
            offered_rate=0.002, throughput=0.01, latency_ns=30.0,
            transaction_latency_ns=math.nan, packets_delivered=5,
        )
        journal.record_success("WFA-base", 0.002, point)
        restored = SweepJournal(journal.path).completed_point("WFA-base", 0.002)
        assert math.isnan(restored.transaction_latency_ns)


class TestOutcomeRecords:
    """The generic outcome API the chaos campaign journals through."""

    def test_outcome_round_trips(self, tmp_path):
        journal = SweepJournal(tmp_path / "campaign.jsonl")
        outcome = {"status": "deadlock", "digest": "abc123", "metrics": {}}
        journal.record_outcome("injected-deadlock", 6.0, outcome)

        fresh = SweepJournal(journal.path)
        assert fresh.outcome_for("injected-deadlock", 6.0) == outcome
        assert fresh.outcome_for("injected-deadlock", 7.0) is None

    def test_failing_outcome_still_counts_as_completed(self, tmp_path):
        """A failing scenario is completed campaign work: resume skips it."""
        journal = SweepJournal(tmp_path / "campaign.jsonl")
        journal.record_outcome("s001-aaaa", 1.0, {"status": "crash"})
        fresh = SweepJournal(journal.path)
        assert fresh.completed_count() == 1
        assert not fresh.failures()
        assert fresh.outcome_for("s001-aaaa", 1.0)["status"] == "crash"

    def test_outcome_for_ignores_sweep_points(self, tmp_path):
        journal = SweepJournal(tmp_path / "mixed.jsonl")
        journal.record_success("PIM1", 0.02, sample_point(0.02))
        assert journal.outcome_for("PIM1", 0.02) is None
        assert journal.completed_point("PIM1", 0.02) is not None

    def test_outcomes_survive_compaction(self, tmp_path):
        journal = SweepJournal(tmp_path / "campaign.jsonl")
        journal.record_outcome("s000-aaaa", 0.0, {"status": "ok", "v": 1})
        journal.record_outcome("s000-aaaa", 0.0, {"status": "ok", "v": 2})
        assert journal.compact() == 1
        assert SweepJournal(journal.path).outcome_for(
            "s000-aaaa", 0.0
        ) == {"status": "ok", "v": 2}


class TestCompaction:
    def test_compact_drops_superseded_records(self, tmp_path):
        journal = SweepJournal(tmp_path / "sweep.jsonl")
        journal.record_failure("PIM1", 0.02, attempt=1, error="boom")
        journal.record_failure("PIM1", 0.02, attempt=2, error="boom again")
        journal.record_success("PIM1", 0.02, sample_point(0.02), attempts=3)
        journal.record_success("WFA-base", 0.02, sample_point(0.02))
        assert journal.compact() == 2
        lines = journal.path.read_text().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["status"] == "ok" for line in lines)

    def test_compact_replays_to_the_same_state(self, tmp_path):
        journal = SweepJournal(tmp_path / "sweep.jsonl")
        journal.record_failure("PIM1", 0.02, attempt=1, error="flaky")
        journal.record_success("PIM1", 0.02, sample_point(0.02), attempts=2)
        journal.record_failure("SPAA-base", 0.045, attempt=1, error="dead")
        before = SweepJournal(journal.path)
        before_point = before.completed_point("PIM1", 0.02)
        before_failures = before.failures()
        journal.compact()
        after = SweepJournal(journal.path)
        assert after.completed_point("PIM1", 0.02).as_dict() == (
            before_point.as_dict()
        )
        assert after.failures() == before_failures
        assert after.completed_count() == 1

    def test_compact_is_a_noop_when_nothing_to_drop(self, tmp_path):
        journal = SweepJournal(tmp_path / "sweep.jsonl")
        journal.record_success("PIM1", 0.02, sample_point(0.02))
        text_before = journal.path.read_text()
        assert journal.compact() == 0
        assert journal.path.read_text() == text_before

    def test_compact_on_a_missing_file_is_safe(self, tmp_path):
        assert SweepJournal(tmp_path / "absent.jsonl").compact() == 0

    def test_crash_in_the_rename_window_leaves_a_whole_journal(
        self, tmp_path, monkeypatch
    ):
        """Kill compaction at the worst moment: between the temp-file
        write and the atomic rename.  The journal must still be the
        complete pre-compaction file, and a retry must succeed."""
        import os

        journal = SweepJournal(tmp_path / "sweep.jsonl")
        journal.record_failure("PIM1", 0.02, attempt=1, error="boom")
        journal.record_success("PIM1", 0.02, sample_point(0.02), attempts=2)
        text_before = journal.path.read_text()

        real_replace = os.replace
        calls = {"n": 0}

        def crashy_replace(src, dst):
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError("simulated crash before rename")
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", crashy_replace)
        with pytest.raises(OSError, match="simulated crash"):
            journal.compact()
        # Old journal intact; replaying it reconstructs the same state.
        assert journal.path.read_text() == text_before
        recovered = SweepJournal(journal.path)
        assert recovered.completed_point("PIM1", 0.02) is not None
        # The retry goes through and actually shrinks the file.
        assert recovered.compact() == 1
        assert len(journal.path.read_text().splitlines()) == 1

    def test_compact_fsyncs_the_directory_after_the_rename(
        self, tmp_path, monkeypatch
    ):
        """Durability ordering: the rename's directory entry is fsynced,
        and only after os.replace has happened."""
        import os

        journal = SweepJournal(tmp_path / "sweep.jsonl")
        journal.record_failure("PIM1", 0.02, attempt=1, error="boom")
        journal.record_success("PIM1", 0.02, sample_point(0.02))

        events: list[str] = []
        real_replace = os.replace
        real_fsync = os.fsync
        dir_fd_stats = {}

        def spy_replace(src, dst):
            events.append("replace")
            return real_replace(src, dst)

        def spy_fsync(fd):
            import stat

            if stat.S_ISDIR(os.fstat(fd).st_mode):
                events.append("fsync-dir")
                dir_fd_stats["ino"] = os.fstat(fd).st_ino
            return real_fsync(fd)

        monkeypatch.setattr(os, "replace", spy_replace)
        monkeypatch.setattr(os, "fsync", spy_fsync)
        assert journal.compact() == 1
        assert "fsync-dir" in events
        assert events.index("fsync-dir") > events.index("replace")
        assert dir_fd_stats["ino"] == os.stat(tmp_path).st_ino

    def test_directory_fsync_failure_is_not_fatal(self, tmp_path, monkeypatch):
        """Platforms that cannot fsync a directory still compact."""
        from repro.resilience import checkpoint

        journal = SweepJournal(tmp_path / "sweep.jsonl")
        journal.record_failure("PIM1", 0.02, attempt=1, error="boom")
        journal.record_success("PIM1", 0.02, sample_point(0.02))

        def refuse(path, flags):
            raise OSError("directories not openable here")

        monkeypatch.setattr(checkpoint.os, "open", refuse)
        assert journal.compact() == 1
        assert len(journal.path.read_text().splitlines()) == 1

    def test_compacted_journal_preserves_resume_semantics(self, tmp_path):
        """A retried-then-compacted journal resumes exactly like the
        uncompacted one: completed points splice, failed points re-run."""
        journal_path = tmp_path / "sweep.jsonl"
        invariants = InvariantConfig(
            check_interval_cycles=100.0, max_wait_cycles=1e-9
        )
        with pytest.raises(SweepPointError):
            sweep_algorithm(
                tiny_config(),
                rates=(0.005, 0.02),
                invariants=invariants,
                journal=SweepJournal(journal_path),
                max_attempts=2,
            )
        full = sweep_algorithm(
            tiny_config(),
            rates=(0.005,),
            journal=SweepJournal(journal_path),
        )
        SweepJournal(journal_path).compact()
        resumed = sweep_algorithm(
            tiny_config(),
            rates=(0.005, 0.02),
            journal=SweepJournal(journal_path),
            resume=True,
        )
        assert resumed.points[0].as_dict() == full.points[0].as_dict()
        assert [p.offered_rate for p in resumed.points] == [0.005, 0.02]

    def test_successful_resume_compacts_the_journal(self, tmp_path):
        """The sweep runners call compact() after a completed resume."""
        journal_path = tmp_path / "sweep.jsonl"
        journal = SweepJournal(journal_path)
        journal.record_failure("PIM1", 0.005, attempt=1, error="flaky once")
        sweep_algorithm(
            tiny_config().with_algorithm("PIM1"),
            rates=(0.005,),
            journal=journal,
            resume=True,
        )
        lines = journal_path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["status"] == "ok"


class TestSweepResume:
    def test_resume_splices_journalled_points(self, tmp_path):
        journal_path = tmp_path / "sweep.jsonl"
        config = tiny_config()
        first = sweep_algorithm(
            config, rates=(0.005, 0.02), journal=SweepJournal(journal_path)
        )
        lines_after_first = journal_path.read_text().count("\n")

        progress: list[str] = []
        resumed = sweep_algorithm(
            config,
            rates=(0.005, 0.02),
            progress=progress.append,
            journal=SweepJournal(journal_path),
            resume=True,
        )
        # No new journal lines: nothing re-ran.
        assert journal_path.read_text().count("\n") == lines_after_first
        assert sum("resumed from journal" in line for line in progress) == 2
        assert [p.as_dict() for p in resumed.points] == [
            p.as_dict() for p in first.points
        ]

    def test_resume_runs_only_the_missing_points(self, tmp_path):
        journal_path = tmp_path / "sweep.jsonl"
        config = tiny_config()
        sweep_algorithm(
            config, rates=(0.005,), journal=SweepJournal(journal_path)
        )
        curve = sweep_algorithm(
            config,
            rates=(0.005, 0.02),
            journal=SweepJournal(journal_path),
            resume=True,
        )
        assert [p.offered_rate for p in curve.points] == [0.005, 0.02]
        records = [
            json.loads(line)
            for line in journal_path.read_text().splitlines()
        ]
        assert [r["rate"] for r in records] == [0.005, 0.02]


class TestRetries:
    def test_failures_are_journalled_then_raised(self, tmp_path):
        journal_path = tmp_path / "sweep.jsonl"
        # An impossible invariant bound: every buffered packet is
        # instantly "too old", so every attempt fails.
        invariants = InvariantConfig(
            check_interval_cycles=100.0, max_wait_cycles=1e-9
        )
        with pytest.raises(SweepPointError) as excinfo:
            sweep_algorithm(
                tiny_config(),
                rates=(0.02,),
                invariants=invariants,
                journal=SweepJournal(journal_path),
                max_attempts=2,
            )
        assert excinfo.value.attempts == 2
        records = [
            json.loads(line)
            for line in journal_path.read_text().splitlines()
        ]
        assert [r["status"] for r in records] == ["failed", "failed"]
        assert [r["attempt"] for r in records] == [1, 2]
        assert "invariant" in records[0]["error"]

    def test_max_attempts_validated(self):
        with pytest.raises(ValueError):
            sweep_algorithm(tiny_config(), rates=(0.01,), max_attempts=0)

    def test_guarded_point_records_resilience_summary(self, tmp_path):
        journal_path = tmp_path / "sweep.jsonl"
        sweep_algorithm(
            tiny_config(),
            rates=(0.02,),
            faults=FaultConfig(seed=5, flit_drop_rate=2e-3),
            invariants=InvariantConfig(),
            watchdog=WatchdogConfig(window_cycles=500.0),
            journal=SweepJournal(journal_path),
        )
        record = json.loads(journal_path.read_text().splitlines()[0])
        resilience = record["resilience"]
        assert resilience["drained_clean"] is True
        assert resilience["invariant_violations"] == 0
        assert resilience["packets_dropped"] == 0
        assert resilience["link_retries"] == resilience["faults_injected"]


class TestSweepGuard:
    def test_scoped_derives_per_panel_journals(self, tmp_path):
        guard = SweepGuard(journal_path=tmp_path)
        scoped = guard.scoped("4x4_random")
        assert scoped.journal_path == tmp_path / "4x4_random.journal.jsonl"
        # No journal directory: scoping is a no-op.
        assert SweepGuard().scoped("4x4_random") == SweepGuard()

    def test_sweep_kwargs_builds_a_journal(self, tmp_path):
        guard = SweepGuard(
            faults=FaultConfig(seed=1, flit_drop_rate=1e-3),
            journal_path=tmp_path / "x.jsonl",
            resume=True,
            max_attempts=3,
        )
        kwargs = guard.sweep_kwargs()
        assert isinstance(kwargs["journal"], SweepJournal)
        assert kwargs["resume"] is True
        assert kwargs["max_attempts"] == 3
        assert kwargs["faults"] is guard.faults

    def test_unguarded_sweep_unchanged_by_empty_guard(self):
        kwargs = SweepGuard().sweep_kwargs()
        assert kwargs["journal"] is None
        assert kwargs["faults"] is None


class TestTornTail:
    """Crash-mid-append recovery: salvage the tail, never mid-file rot."""

    def seeded_journal(self, tmp_path):
        journal = SweepJournal(tmp_path / "sweep.jsonl")
        journal.record_success("PIM1", 0.01, sample_point(0.01))
        journal.record_success("SPAA-base", 0.02, sample_point(0.02))
        return journal

    def test_torn_final_line_is_salvaged(self, tmp_path):
        journal = self.seeded_journal(tmp_path)
        with journal.path.open("a", encoding="utf-8") as handle:
            handle.write('{"kind": "sweep-point", "status": "ok", "alg')
        fresh = SweepJournal(journal.path)
        fresh.load()
        assert fresh.salvaged_tail is not None
        assert fresh.salvaged_tail.startswith('{"kind"')
        # The intact prefix loads; the in-flight point simply retries.
        assert fresh.completed_point("PIM1", 0.01) is not None
        assert fresh.completed_point("SPAA-base", 0.02) is not None
        assert fresh.completed_count() == 2

    def test_next_append_discards_the_torn_tail(self, tmp_path):
        journal = self.seeded_journal(tmp_path)
        with journal.path.open("a", encoding="utf-8") as handle:
            handle.write('{"torn": tru')
        fresh = SweepJournal(journal.path)
        fresh.record_success("WFA-base", 0.03, sample_point(0.03))
        # The file is valid JSONL again: the torn bytes are gone and
        # every surviving record parses.
        text = journal.path.read_text()
        assert '{"torn"' not in text
        records = [json.loads(line) for line in text.splitlines()]
        assert len(records) == 3
        reloaded = SweepJournal(journal.path)
        reloaded.load()
        assert reloaded.salvaged_tail is None
        assert reloaded.completed_count() == 3

    def test_mid_file_corruption_still_raises(self, tmp_path):
        journal = self.seeded_journal(tmp_path)
        lines = journal.path.read_text().splitlines()
        lines[0] = lines[0][:20]  # truncate a *non-final* record
        journal.path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="corrupt journal line"):
            SweepJournal(journal.path).load()

    def test_final_invalid_line_with_newline_still_raises(self, tmp_path):
        """A final line whose newline made it to disk cannot be a torn
        append -- that is corruption, and it must stay loud."""
        journal = self.seeded_journal(tmp_path)
        with journal.path.open("a", encoding="utf-8") as handle:
            handle.write('{"broken": \n')
        with pytest.raises(ValueError, match="corrupt journal line"):
            SweepJournal(journal.path).load()

    def test_valid_final_line_missing_newline_is_completed(self, tmp_path):
        """The crash can also land between the record write and its
        newline; the next append must complete the line, not glue two
        records together."""
        journal = self.seeded_journal(tmp_path)
        with journal.path.open("r+b") as handle:
            handle.seek(0, 2)
            handle.truncate(handle.tell() - 1)  # drop the last "\n"
        fresh = SweepJournal(journal.path)
        fresh.load()
        assert fresh.completed_count() == 2
        fresh.record_success("WFA-base", 0.03, sample_point(0.03))
        records = [
            json.loads(line)
            for line in journal.path.read_text().splitlines()
        ]
        assert [r["algorithm"] for r in records] == [
            "PIM1", "SPAA-base", "WFA-base",
        ]

    def test_compact_drops_the_torn_tail(self, tmp_path):
        journal = self.seeded_journal(tmp_path)
        journal.record_failure("PIM1", 0.01, attempt=1, error="boom")
        with journal.path.open("a", encoding="utf-8") as handle:
            handle.write('{"torn": tru')
        fresh = SweepJournal(journal.path)
        assert fresh.compact() > 0
        text = journal.path.read_text()
        assert '{"torn"' not in text
        for line in text.splitlines():
            json.loads(line)

    def test_resume_after_torn_tail_completes_the_sweep(self, tmp_path):
        """Acceptance: a sweep killed mid-append resumes cleanly."""
        journal_path = tmp_path / "sweep.jsonl"
        sweep_algorithm(
            tiny_config(),
            rates=(0.005,),
            journal=SweepJournal(journal_path),
        )
        with journal_path.open("a", encoding="utf-8") as handle:
            handle.write('{"kind": "sweep-point", "status": "ok"')
        curve = sweep_algorithm(
            tiny_config(),
            rates=(0.005, 0.02),
            journal=SweepJournal(journal_path),
            resume=True,
        )
        assert len(curve.points) == 2
        replayed = SweepJournal(journal_path)
        assert replayed.completed_count() == 2
        assert replayed.salvaged_tail is None
