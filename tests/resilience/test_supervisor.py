"""Supervised execution: heartbeats, reaping, quarantine, recovery.

Two layers under test.  The unit half drives :class:`PointSupervisor`
directly with tiny module-level runners (picklable across the spawn
boundary) -- clean results, a self-SIGKILLing task, a wedge that never
heartbeats.  The integration half runs real sweeps through
``sweep_algorithms(..., supervisor=...)`` with the test fault hooks
armed, and pins the acceptance contract: a sweep that loses or wedges
a worker completes (or degrades loudly), journals the crash as a
first-class record, and a healthy ``resume`` run produces curves
bitwise identical to a serial sweep.
"""

import json
import os
import signal
import time

import pytest

from repro.resilience.checkpoint import SweepJournal
from repro.resilience.supervisor import (
    PointSupervisor,
    SupervisorConfig,
)
from repro.sim.parallel import (
    FAULT_ONCE_FILE_ENV,
    KILL_POINT_ENV,
    SUPERVISOR_TRACE_NAME,
    WEDGE_POINT_ENV,
    SweepSupervisionError,
)
from repro.sim.sweep import sweep_algorithm, sweep_algorithms

RATES = (0.005, 0.02)
ALGOS = ("PIM1", "SPAA-base")

#: generous deadline + tight-ish staleness: tests reap via heartbeats.
#: The staleness bound must still comfortably exceed a healthy
#: worker's beat gap when CPU-bound workers outnumber cores, or loaded
#: hosts reap spuriously.
FAST_REAP = SupervisorConfig(
    point_timeout_s=60.0,
    heartbeat_stale_s=5.0,
    poll_interval_s=0.02,
    reap_grace_s=2.0,
)


def _square(payload, heartbeat):
    heartbeat()
    return payload * payload


def _kill_marked(payload, heartbeat):
    if payload == "die":
        os.kill(os.getpid(), signal.SIGKILL)
    return payload


def _wedge_marked(payload, heartbeat):
    if payload == "wedge":
        while True:
            time.sleep(3600)
    heartbeat()
    return payload


def journal_records(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


def drain(supervisor):
    events = []
    while supervisor.outstanding:
        events.append(supervisor.next_event())
    return events


class TestPointSupervisor:
    def test_clean_tasks_round_trip(self):
        with PointSupervisor(2, _square) as supervisor:
            for n in range(5):
                supervisor.submit(n, n)
            events = drain(supervisor)
        assert {e.kind for e in events} == {"result"}
        assert {e.task_id: e.result for e in events} == {
            n: n * n for n in range(5)
        }
        assert supervisor.stats["worker_lost"] == 0

    def test_killed_worker_is_replaced_and_others_finish(self):
        config = SupervisorConfig(poll_interval_s=0.02, reap_grace_s=2.0)
        with PointSupervisor(
            2, _kill_marked, config=config, resubmit_crashed=False
        ) as supervisor:
            for task_id, payload in enumerate(["a", "die", "b", "c"]):
                supervisor.submit(task_id, payload)
            events = drain(supervisor)
        by_kind = {}
        for event in events:
            by_kind.setdefault(event.kind, []).append(event)
        assert len(by_kind["worker-lost"]) == 1
        assert by_kind["worker-lost"][0].task_id == 1
        assert "died" in by_kind["worker-lost"][0].detail
        # Every healthy task still landed despite the mid-pool death.
        assert sorted(e.result for e in by_kind["result"]) == ["a", "b", "c"]
        assert supervisor.stats["worker_lost"] == 1
        assert supervisor.stats["respawns"] == 1

    def test_poison_task_quarantined_after_k_crashes(self):
        config = SupervisorConfig(
            quarantine_after=2, poll_interval_s=0.02, reap_grace_s=2.0
        )
        with PointSupervisor(
            1, _kill_marked, config=config, resubmit_crashed=True
        ) as supervisor:
            supervisor.submit("poison", "die")
            events = drain(supervisor)
        kinds = [e.kind for e in events]
        assert kinds == ["worker-lost", "worker-lost", "quarantined"]
        assert events[-1].crashes == 2
        assert supervisor.stats["quarantined"] == 1

    def test_wedged_worker_reaped_on_stale_heartbeat(self):
        started = time.monotonic()
        with PointSupervisor(
            2, _wedge_marked, config=FAST_REAP, resubmit_crashed=False
        ) as supervisor:
            supervisor.submit(0, "wedge")
            supervisor.submit(1, "ok")
            events = drain(supervisor)
        elapsed = time.monotonic() - started
        by_kind = {e.kind: e for e in events}
        assert by_kind["timeout"].task_id == 0
        assert "heartbeat stale" in by_kind["timeout"].detail
        assert by_kind["result"].result == "ok"
        # The whole drain must not have waited for any deadline longer
        # than the staleness bound (i.e. the supervisor did not hang).
        assert elapsed < FAST_REAP.point_timeout_s / 2
        assert supervisor.stats["timeouts"] == 1

    def test_point_deadline_reaps_independent_of_heartbeats(self):
        config = SupervisorConfig(
            point_timeout_s=0.5, poll_interval_s=0.02, reap_grace_s=2.0
        )
        with PointSupervisor(
            1, _wedge_marked, config=config, resubmit_crashed=False
        ) as supervisor:
            supervisor.submit(0, "wedge")
            events = drain(supervisor)
        assert events[0].kind == "timeout"
        assert "deadline" in events[0].detail

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SupervisorConfig(point_timeout_s=0.0)
        with pytest.raises(ValueError):
            SupervisorConfig(quarantine_after=0)
        with pytest.raises(ValueError):
            PointSupervisor(0, _square)


class TestSupervisedSweeps:
    def test_supervised_sweep_matches_serial_bitwise(self, tiny_config):
        serial = sweep_algorithms(tiny_config, ALGOS, RATES)
        supervised = sweep_algorithms(
            tiny_config,
            ALGOS,
            RATES,
            workers=2,
            supervisor=SupervisorConfig(point_timeout_s=120.0),
        )
        for algorithm in ALGOS:
            assert [p.as_dict() for p in supervised[algorithm].points] == [
                p.as_dict() for p in serial[algorithm].points
            ]

    def test_sigkilled_worker_journalled_then_recovered(
        self, tiny_config, tmp_path, monkeypatch
    ):
        """A SIGKILLed worker's point lands on a replacement worker in
        the same run; the crash is a first-class journal record."""
        journal_path = tmp_path / "sweep.jsonl"
        monkeypatch.setenv(KILL_POINT_ENV, "PIM1:0.02")
        monkeypatch.setenv(
            FAULT_ONCE_FILE_ENV, str(tmp_path / "killed-once")
        )
        curves = sweep_algorithms(
            tiny_config,
            ALGOS,
            RATES,
            workers=2,
            supervisor=FAST_REAP,
            journal=SweepJournal(journal_path),
        )
        lost = [
            r
            for r in journal_records(journal_path)
            if r.get("reason") == "worker-lost"
        ]
        assert len(lost) == 1
        assert (lost[0]["algorithm"], lost[0]["rate_key"]) == ("PIM1", "0.02")
        monkeypatch.delenv(KILL_POINT_ENV)
        serial = sweep_algorithms(tiny_config, ALGOS, RATES)
        for algorithm in ALGOS:
            assert [p.as_dict() for p in curves[algorithm].points] == [
                p.as_dict() for p in serial[algorithm].points
            ]

    def test_wedged_worker_reaped_and_point_completes(
        self, tiny_config, tmp_path, monkeypatch
    ):
        journal_path = tmp_path / "sweep.jsonl"
        monkeypatch.setenv(WEDGE_POINT_ENV, "SPAA-base:0.005")
        monkeypatch.setenv(
            FAULT_ONCE_FILE_ENV, str(tmp_path / "wedged-once")
        )
        started = time.monotonic()
        curves = sweep_algorithms(
            tiny_config,
            ALGOS,
            RATES,
            workers=2,
            supervisor=FAST_REAP,
            journal=SweepJournal(journal_path),
        )
        assert time.monotonic() - started < 30.0, "reap must not hang"
        reaped = [
            r
            for r in journal_records(journal_path)
            if r.get("reason") == "timeout"
        ]
        assert len(reaped) == 1
        assert reaped[0]["algorithm"] == "SPAA-base"
        assert all(len(curves[a].points) == len(RATES) for a in ALGOS)

    def test_poison_point_quarantined_then_resumed_serial_identical(
        self, tiny_config, tmp_path, monkeypatch
    ):
        """The acceptance path end to end: a point that kills every
        worker it touches is quarantined (journalled, sweep degrades
        loudly), and a healthy --resume rerun completes the grid with
        curves bitwise identical to a serial sweep."""
        journal_path = tmp_path / "sweep.jsonl"
        monkeypatch.setenv(KILL_POINT_ENV, "PIM1:0.02")  # every attempt
        config = SupervisorConfig(
            point_timeout_s=60.0,
            heartbeat_stale_s=5.0,
            quarantine_after=2,
            poll_interval_s=0.02,
            reap_grace_s=2.0,
        )
        with pytest.raises(SweepSupervisionError) as excinfo:
            sweep_algorithms(
                tiny_config,
                ALGOS,
                RATES,
                workers=2,
                supervisor=config,
                journal=SweepJournal(journal_path),
            )
        assert ("PIM1", "0.02") in excinfo.value.quarantined
        assert "--resume" in str(excinfo.value)
        journal = SweepJournal(journal_path)
        quarantined = journal.quarantined()
        assert len(quarantined) == 1
        assert quarantined[0]["crashes"] == 2
        # Every other point of the grid still completed and journalled.
        assert journal.completed_count() == len(ALGOS) * len(RATES) - 1
        # Healthy rerun: the quarantined point is retried and the grid
        # closes, bitwise identical to serial.
        monkeypatch.delenv(KILL_POINT_ENV)
        curves = sweep_algorithms(
            tiny_config,
            ALGOS,
            RATES,
            workers=2,
            supervisor=config,
            journal=SweepJournal(journal_path),
            resume=True,
        )
        serial = sweep_algorithms(tiny_config, ALGOS, RATES)
        for algorithm in ALGOS:
            assert [p.as_dict() for p in curves[algorithm].points] == [
                p.as_dict() for p in serial[algorithm].points
            ]

    def test_manifest_supervisor_section_and_trace(
        self, tiny_config, tmp_path
    ):
        telemetry_dir = tmp_path / "traces"
        sweep_algorithm(
            tiny_config,
            rates=(0.02,),
            workers=2,
            supervisor=SupervisorConfig(point_timeout_s=120.0),
            telemetry_dir=telemetry_dir,
        )
        manifest = json.loads(
            (telemetry_dir / "sweep_manifest.json").read_text()
        )
        section = manifest["supervisor"]
        assert section["point_timeout_s"] == 120.0
        assert section["quarantine_after"] == 3
        assert section["worker_lost"] == 0
        assert section["trace"] == SUPERVISOR_TRACE_NAME
        # The supervisor's own trace exists and summarizes cleanly,
        # with the new counters registered (all zero on a clean run).
        from repro.obs.analysis import summarize_trace

        summary = summarize_trace(telemetry_dir / SUPERVISOR_TRACE_NAME)
        assert summary.resilience_counts() == {}
        assert summary.scalar("resilience_worker_lost_total") == 0

    def test_resumed_points_marked_in_manifest(self, tiny_config, tmp_path):
        """Satellite: resumed points carry trace null + resumed true."""
        journal_path = tmp_path / "sweep.jsonl"
        sweep_algorithm(
            tiny_config,
            rates=RATES,
            journal=SweepJournal(journal_path),
        )
        telemetry_dir = tmp_path / "resumed-traces"
        sweep_algorithm(
            tiny_config,
            rates=RATES,
            workers=2,
            journal=SweepJournal(journal_path),
            resume=True,
            telemetry_dir=telemetry_dir,
        )
        manifest = json.loads(
            (telemetry_dir / "sweep_manifest.json").read_text()
        )
        assert manifest["resumed_points"] == len(RATES)
        for point in manifest["points"]:
            assert point["resumed"] is True
            assert point["trace"] is None
            # The manifest must not advertise files this run never
            # wrote.
            assert not list(telemetry_dir.glob("*rate*.jsonl"))
