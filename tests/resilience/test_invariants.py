"""Runtime invariant checking: clean runs stay clean, broken state trips."""

import pytest

from repro.core.types import Grant, Nomination, SourceKind
from repro.resilience.invariants import (
    ArbitrationInvariants,
    InFlightTracker,
    InvariantChecker,
    InvariantConfig,
    InvariantViolationError,
)
from repro.sim.standalone import StandaloneConfig, StandaloneRouterModel
from repro.sim.timing_model import NetworkSimulator


class TestInvariantConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            InvariantConfig(check_interval_cycles=0)
        with pytest.raises(ValueError):
            InvariantConfig(max_wait_cycles=-5.0)

    def test_age_check_can_be_disabled(self):
        assert InvariantConfig(max_wait_cycles=None).max_wait_cycles is None


class TestCleanRuns:
    def test_fault_free_run_has_zero_violations(self, quad_config):
        """Acceptance: a clean sweep point under full checking is clean."""
        checker = InvariantChecker(InvariantConfig(check_interval_cycles=250.0))
        sim = NetworkSimulator(quad_config, invariants=checker)
        sim.run()
        assert sim.drain()
        checker.check_network(sim)
        assert checker.checks_run > 4, "periodic cadence never fired"
        assert checker.clean, checker.violations
        checker.raise_if_violated()  # must not raise

    def test_every_timing_algorithm_is_clean(self, tiny_config):
        from repro.core.registry import TIMING_ALGORITHMS

        for algorithm in TIMING_ALGORITHMS:
            checker = InvariantChecker()
            sim = NetworkSimulator(
                tiny_config.with_algorithm(algorithm), invariants=checker
            )
            sim.run()
            sim.drain()
            checker.check_network(sim)
            assert checker.clean, (algorithm, checker.violations)


class TestViolationDetection:
    def test_conservation_breach_detected(self, tiny_config):
        sim = NetworkSimulator(tiny_config)
        sim.run()
        sim.total_injected += 1  # simulate a lost packet
        checker = InvariantChecker()
        found = checker.check_network(sim)
        assert any(v.name == "packet-conservation" for v in found)

    def test_credit_breach_detected(self, tiny_config):
        sim = NetworkSimulator(tiny_config)
        sim.run()
        buffer = next(iter(sim.routers[0].buffers.values()))
        channel = next(iter(buffer._reserved))
        buffer._reserved[channel] = -1  # credit counter gone negative
        checker = InvariantChecker()
        found = checker.check_network(sim)
        assert any(v.name == "buffer-credit" for v in found)

    def test_fail_fast_raises_at_the_breach(self, tiny_config):
        sim = NetworkSimulator(tiny_config)
        sim.run()
        sim.total_injected += 1
        checker = InvariantChecker(InvariantConfig(fail_fast=True))
        with pytest.raises(InvariantViolationError):
            checker.check_network(sim)

    def test_error_message_lists_evidence(self, tiny_config):
        sim = NetworkSimulator(tiny_config)
        sim.run()
        sim.total_injected += 3
        checker = InvariantChecker()
        checker.check_network(sim)
        with pytest.raises(InvariantViolationError) as excinfo:
            checker.raise_if_violated()
        assert "packet-conservation" in str(excinfo.value)


class TestInFlightTracker:
    """The incremental checker path (tracker instead of full walks)."""

    @staticmethod
    def fake_packet(uid: int, waiting_since: float = 0.0):
        from types import SimpleNamespace

        return SimpleNamespace(uid=uid, waiting_since=waiting_since)

    @staticmethod
    def fake_port(name: str = "E-in"):
        from types import SimpleNamespace

        return SimpleNamespace(name=name)

    @staticmethod
    def fake_sim(buffered: int):
        from types import SimpleNamespace

        return SimpleNamespace(
            now=0.0, total_buffered_packets=lambda: buffered
        )

    def test_add_discard_len(self):
        tracker = InFlightTracker()
        packet = self.fake_packet(7)
        tracker.add(packet, node=3, port=self.fake_port())
        assert len(tracker) == 1
        tracker.discard(packet)
        assert len(tracker) == 0
        tracker.discard(packet)  # idempotent
        assert not tracker.collisions

    def test_double_add_records_a_collision(self):
        tracker = InFlightTracker()
        packet = self.fake_packet(7)
        tracker.add(packet, node=3, port=self.fake_port("E-in"))
        tracker.add(packet, node=5, port=self.fake_port("W-in"))
        assert tracker.collisions == [(7, (3, "E-in"), (5, "W-in"))]
        # The registry holds one entry; the collision is the evidence.
        assert len(tracker) == 1

    def test_collision_surfaces_as_duplicate_violation(self):
        tracker = InFlightTracker()
        packet = self.fake_packet(7)
        tracker.add(packet, node=3, port=self.fake_port("E-in"))
        tracker.add(packet, node=5, port=self.fake_port("W-in"))
        checker = InvariantChecker()
        found: list = []
        checker._check_tracker(self.fake_sim(buffered=1), tracker, 0.0, found)
        assert any(v.name == "duplicate-in-flight" for v in found)
        assert not tracker.collisions, "collisions must clear once reported"

    def test_registry_buffer_mismatch_detected(self):
        tracker = InFlightTracker()
        tracker.add(self.fake_packet(1), node=0, port=self.fake_port())
        checker = InvariantChecker()
        found: list = []
        checker._check_tracker(self.fake_sim(buffered=3), tracker, 0.0, found)
        assert any(v.name == "inflight-registry" for v in found)

    def test_age_bound_checked_incrementally(self):
        tracker = InFlightTracker()
        tracker.add(
            self.fake_packet(1, waiting_since=0.0),
            node=0,
            port=self.fake_port(),
        )
        checker = InvariantChecker(InvariantConfig(max_wait_cycles=100.0))
        found: list = []
        checker._check_tracker(
            self.fake_sim(buffered=1), tracker, 500.0, found
        )
        assert any(v.name == "anti-starvation-age" for v in found)

    def test_guarded_simulator_maintains_a_tracker(self, tiny_config):
        guarded = NetworkSimulator(tiny_config, invariants=InvariantChecker())
        assert guarded._inflight is not None
        unguarded = NetworkSimulator(tiny_config)
        assert unguarded._inflight is None

    def test_incremental_and_full_agree_on_a_clean_run(self, quad_config):
        """Same verdict from both paths at identical sim states."""
        checker = InvariantChecker(InvariantConfig(check_interval_cycles=250.0))
        sim = NetworkSimulator(quad_config, invariants=checker)
        sim.run()
        # Mid-drain state: packets still buffered, both paths clean.
        incremental = checker.check_network(sim)
        exhaustive = checker.check_network(sim, full=True)
        assert incremental == [] and exhaustive == []
        assert sim.drain()
        assert len(sim._inflight) == 0
        assert checker.clean

    def test_tracker_desync_is_caught_by_the_periodic_sweep(self, tiny_config):
        """A phantom registry entry (a 'missed hook') trips the check."""
        checker = InvariantChecker()
        sim = NetworkSimulator(tiny_config, invariants=checker)
        sim.run()
        sim.drain()
        sim._inflight.add(
            self.fake_packet(10**9), node=0, port=self.fake_port()
        )
        found = checker.check_network(sim)
        assert any(v.name == "inflight-registry" for v in found)


class TestArbitrationInvariants:
    def test_clean_standalone_run(self):
        checker = ArbitrationInvariants()
        model = StandaloneRouterModel(
            StandaloneConfig(algorithm="SPAA-base", trials=300, seed=5),
            invariants=checker,
        )
        model.run()
        assert checker.checks_run == 300
        assert checker.clean

    def test_illegal_matching_trips(self):
        checker = ArbitrationInvariants()
        nomination = Nomination(
            row=0, packet=1, outputs=(2,), source=SourceKind.NETWORK, age=0
        )
        bogus = [Grant(row=0, packet=1, output=3)]  # never nominated output 3
        with pytest.raises(InvariantViolationError):
            checker.check_arbitration(
                [nomination], frozenset({2, 3}), bogus, trial=7
            )
        assert not checker.clean
