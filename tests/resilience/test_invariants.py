"""Runtime invariant checking: clean runs stay clean, broken state trips."""

import pytest

from repro.core.types import Grant, Nomination, SourceKind
from repro.resilience.invariants import (
    ArbitrationInvariants,
    InvariantChecker,
    InvariantConfig,
    InvariantViolationError,
)
from repro.sim.standalone import StandaloneConfig, StandaloneRouterModel
from repro.sim.timing_model import NetworkSimulator


class TestInvariantConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            InvariantConfig(check_interval_cycles=0)
        with pytest.raises(ValueError):
            InvariantConfig(max_wait_cycles=-5.0)

    def test_age_check_can_be_disabled(self):
        assert InvariantConfig(max_wait_cycles=None).max_wait_cycles is None


class TestCleanRuns:
    def test_fault_free_run_has_zero_violations(self, quad_config):
        """Acceptance: a clean sweep point under full checking is clean."""
        checker = InvariantChecker(InvariantConfig(check_interval_cycles=250.0))
        sim = NetworkSimulator(quad_config, invariants=checker)
        sim.run()
        assert sim.drain()
        checker.check_network(sim)
        assert checker.checks_run > 4, "periodic cadence never fired"
        assert checker.clean, checker.violations
        checker.raise_if_violated()  # must not raise

    def test_every_timing_algorithm_is_clean(self, tiny_config):
        from repro.core.registry import TIMING_ALGORITHMS

        for algorithm in TIMING_ALGORITHMS:
            checker = InvariantChecker()
            sim = NetworkSimulator(
                tiny_config.with_algorithm(algorithm), invariants=checker
            )
            sim.run()
            sim.drain()
            checker.check_network(sim)
            assert checker.clean, (algorithm, checker.violations)


class TestViolationDetection:
    def test_conservation_breach_detected(self, tiny_config):
        sim = NetworkSimulator(tiny_config)
        sim.run()
        sim.total_injected += 1  # simulate a lost packet
        checker = InvariantChecker()
        found = checker.check_network(sim)
        assert any(v.name == "packet-conservation" for v in found)

    def test_credit_breach_detected(self, tiny_config):
        sim = NetworkSimulator(tiny_config)
        sim.run()
        buffer = next(iter(sim.routers[0].buffers.values()))
        channel = next(iter(buffer._reserved))
        buffer._reserved[channel] = -1  # credit counter gone negative
        checker = InvariantChecker()
        found = checker.check_network(sim)
        assert any(v.name == "buffer-credit" for v in found)

    def test_fail_fast_raises_at_the_breach(self, tiny_config):
        sim = NetworkSimulator(tiny_config)
        sim.run()
        sim.total_injected += 1
        checker = InvariantChecker(InvariantConfig(fail_fast=True))
        with pytest.raises(InvariantViolationError):
            checker.check_network(sim)

    def test_error_message_lists_evidence(self, tiny_config):
        sim = NetworkSimulator(tiny_config)
        sim.run()
        sim.total_injected += 3
        checker = InvariantChecker()
        checker.check_network(sim)
        with pytest.raises(InvariantViolationError) as excinfo:
            checker.raise_if_violated()
        assert "packet-conservation" in str(excinfo.value)


class TestArbitrationInvariants:
    def test_clean_standalone_run(self):
        checker = ArbitrationInvariants()
        model = StandaloneRouterModel(
            StandaloneConfig(algorithm="SPAA-base", trials=300, seed=5),
            invariants=checker,
        )
        model.run()
        assert checker.checks_run == 300
        assert checker.clean

    def test_illegal_matching_trips(self):
        checker = ArbitrationInvariants()
        nomination = Nomination(
            row=0, packet=1, outputs=(2,), source=SourceKind.NETWORK, age=0
        )
        bogus = [Grant(row=0, packet=1, output=3)]  # never nominated output 3
        with pytest.raises(InvariantViolationError):
            checker.check_arbitration(
                [nomination], frozenset({2, 3}), bogus, trial=7
            )
        assert not checker.clean
