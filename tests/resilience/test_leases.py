"""LeaseTable: the bookkeeping shared by supervisor and coordinator.

The table is driven with explicit ``now`` values throughout -- the
expiry logic must be a pure function of the clock readings it is
handed, because both schedulers feed it their own notion of time.
"""

from repro.resilience.leases import LeaseTable


class Holder:
    """A stand-in worker; identity (not equality) is what matters."""


class TestGranting:
    def test_grant_returns_a_live_lease(self):
        table = LeaseTable()
        lease = table.grant("t1", holder := Holder(), now=10.0)
        assert lease.task_id == "t1"
        assert lease.holder is holder
        assert lease.granted_at == 10.0
        assert lease.last_beat == 10.0
        assert table.lease_for("t1") is lease
        assert len(table) == 1

    def test_dispatch_ids_are_table_unique_and_increasing(self):
        table = LeaseTable()
        ids = [table.grant(n, Holder(), now=0.0).dispatch for n in range(5)]
        assert ids == sorted(ids)
        assert len(set(ids)) == 5

    def test_regrant_replaces_and_bumps_dispatch(self):
        """The stale-delivery defence: a re-granted task gets a new
        dispatch id, so the old holder's late result is recognizable."""
        table = LeaseTable()
        first = table.grant("t", Holder(), now=0.0)
        second = table.grant("t", Holder(), now=1.0)
        assert second.dispatch > first.dispatch
        assert table.lease_for("t") is second
        assert len(table) == 1

    def test_release_pops_the_lease(self):
        table = LeaseTable()
        lease = table.grant("t", Holder(), now=0.0)
        assert table.release("t") is lease
        assert table.lease_for("t") is None
        assert table.release("t") is None

    def test_held_by_matches_on_identity(self):
        table = LeaseTable()
        a, b = Holder(), Holder()
        table.grant("t1", a, now=0.0)
        table.grant("t2", b, now=0.0)
        table.grant("t3", a, now=0.0)
        assert {lease.task_id for lease in table.held_by(a)} == {"t1", "t3"}
        assert {lease.task_id for lease in table.held_by(b)} == {"t2"}


class TestExpiry:
    def test_no_bounds_never_expires(self):
        table = LeaseTable()
        table.grant("t", Holder(), now=0.0)
        assert table.expired(now=1e9) == []

    def test_deadline_expiry_with_shared_detail_string(self):
        table = LeaseTable(deadline_s=5.0)
        table.grant("t", Holder(), now=0.0)
        assert table.expired(now=5.0) == []
        [(lease, detail)] = table.expired(now=5.01)
        assert lease.task_id == "t"
        assert detail == "point deadline exceeded (5s)"

    def test_stale_heartbeat_expiry(self):
        table = LeaseTable(stale_s=2.0)
        table.grant("t", Holder(), now=0.0)
        assert table.beat("t", now=10.0)
        assert table.expired(now=11.0) == []
        [(_, detail)] = table.expired(now=12.5)
        assert detail == "heartbeat stale beyond 2s"

    def test_deadline_reported_over_staleness(self):
        """When both bounds are blown, the reap reason is the deadline
        (it is the harder bound; heartbeats cannot extend it)."""
        table = LeaseTable(deadline_s=5.0, stale_s=1.0)
        table.grant("t", Holder(), now=0.0)
        [(_, detail)] = table.expired(now=10.0)
        assert "deadline" in detail

    def test_heartbeats_hold_off_staleness_not_deadline(self):
        table = LeaseTable(deadline_s=5.0, stale_s=1.0)
        table.grant("t", Holder(), now=0.0)
        for now in (0.5, 1.0, 1.5):
            table.beat("t", now=now)
            assert table.expired(now=now) == []
        table.beat("t", now=6.0)
        [(_, detail)] = table.expired(now=6.0)
        assert "deadline" in detail

    def test_beat_on_unknown_task_is_refused(self):
        assert not LeaseTable().beat("never-granted", now=0.0)


class TestCrashAccounting:
    def test_counts_accumulate_per_task(self):
        table = LeaseTable()
        assert table.crashes("t") == 0
        assert table.record_crash("t") == 1
        assert table.record_crash("t") == 2
        assert table.crashes("t") == 2
        assert table.crashes("other") == 0

    def test_quarantine_threshold(self):
        table = LeaseTable()
        table.record_crash("t")
        assert not table.should_quarantine("t", 2)
        table.record_crash("t")
        assert table.should_quarantine("t", 2)

    def test_crash_counts_survive_release(self):
        """Crash history is per *task*, not per lease: quarantine must
        see the total across re-grants."""
        table = LeaseTable()
        table.grant("t", Holder(), now=0.0)
        table.record_crash("t")
        table.release("t")
        table.grant("t", Holder(), now=1.0)
        assert table.crashes("t") == 1
