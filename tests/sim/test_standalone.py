"""Tests for the standalone matching model (Figures 8 and 9 substrate)."""

from dataclasses import replace

import pytest

from repro.core.types import validate_matching
from repro.sim.standalone import (
    StandaloneConfig,
    StandaloneRouterModel,
    find_mcm_saturation_load,
    measure_matches,
)


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"load": 0},
        {"occupancy": 1.0},
        {"occupancy": -0.1},
        {"local_fraction": 2.0},
        {"two_direction_fraction": -1.0},
        {"trials": 0},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            StandaloneConfig(**kwargs)


class TestModelMechanics:
    def test_deterministic_given_seed(self):
        config = StandaloneConfig(algorithm="PIM1", load=16, trials=50, seed=9)
        assert measure_matches(config) == measure_matches(config)

    def test_different_seeds_differ(self):
        low = StandaloneConfig(algorithm="PIM1", load=16, trials=50, seed=1)
        high = replace(low, seed=2)
        assert measure_matches(low) != measure_matches(high)

    @pytest.mark.parametrize("algorithm", ["MCM", "WFA", "PIM", "PIM1", "SPAA"])
    def test_grants_are_legal_matchings(self, algorithm):
        config = StandaloneConfig(algorithm=algorithm, load=24, trials=1)
        model = StandaloneRouterModel(config)
        packets = model._generate_packets()
        free = model._generate_free_outputs()
        nominations = model._build_nominations(packets, free)
        grants = model._arbiter.arbitrate(nominations, free)
        validate_matching(nominations, grants, free)

    def test_occupancy_limits_matches(self):
        free = measure_matches(StandaloneConfig(algorithm="MCM", load=32,
                                                trials=100))
        busy = measure_matches(StandaloneConfig(algorithm="MCM", load=32,
                                                trials=100, occupancy=0.75))
        assert busy < free
        assert busy <= 2.0 + 1e-9  # only ~2 outputs free

    def test_matches_bounded_by_outputs(self):
        value = measure_matches(StandaloneConfig(algorithm="MCM", load=200,
                                                 trials=20))
        assert value <= 7.0

    def test_matches_grow_with_load(self):
        small = measure_matches(StandaloneConfig(algorithm="MCM", load=4,
                                                 trials=200))
        large = measure_matches(StandaloneConfig(algorithm="MCM", load=32,
                                                 trials=200))
        assert large > small

    def test_spaa_uses_one_nomination_per_port(self):
        config = StandaloneConfig(algorithm="SPAA", load=64, trials=1)
        model = StandaloneRouterModel(config)
        packets = model._generate_packets()
        nominations = model._build_nominations(packets, frozenset(range(7)))
        ports = [nom.group for nom in nominations]
        assert len(ports) == len(set(ports)) <= 8
        assert all(len(nom.outputs) == 1 for nom in nominations)

    def test_pim_gets_multi_output_nominations(self):
        config = StandaloneConfig(algorithm="PIM", load=64, trials=1,
                                  two_direction_fraction=1.0)
        model = StandaloneRouterModel(config)
        packets = model._generate_packets()
        nominations = model._build_nominations(packets, frozenset(range(7)))
        assert any(len(nom.outputs) == 2 for nom in nominations)


class TestSaturationSearch:
    def test_finds_a_plateau(self):
        base = StandaloneConfig(trials=200)
        load = find_mcm_saturation_load(base, tolerance=0.02)
        at = measure_matches(replace(base, algorithm="MCM", load=load))
        beyond = measure_matches(replace(base, algorithm="MCM", load=load * 2))
        assert beyond - at < 0.05 * at

    def test_respects_max_load(self):
        base = StandaloneConfig(trials=50)
        assert find_mcm_saturation_load(base, tolerance=1e-9, max_load=16) == 16


class TestPaperShape:
    """The Figure 8/9 orderings, pinned as regression tests."""

    def test_figure8_ordering_at_saturation(self):
        values = {
            algorithm: measure_matches(
                StandaloneConfig(algorithm=algorithm, load=32, trials=300)
            )
            for algorithm in ("MCM", "WFA", "PIM", "PIM1", "SPAA")
        }
        assert values["MCM"] >= values["WFA"] - 0.05
        assert values["MCM"] >= values["PIM"] - 0.05
        assert values["WFA"] > values["PIM1"] > values["SPAA"]

    def test_figure9_gap_vanishes_at_75_percent(self):
        gap = []
        for algorithm in ("MCM", "SPAA"):
            gap.append(measure_matches(StandaloneConfig(
                algorithm=algorithm, load=32, occupancy=0.75, trials=400
            )))
        assert gap[0] == pytest.approx(gap[1], rel=0.05)
