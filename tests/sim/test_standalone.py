"""Tests for the standalone matching model (Figures 8 and 9 substrate)."""

import warnings
from dataclasses import replace

import pytest

from repro.core.types import validate_matching
from repro.router.ports import InputPort
from repro.sim.standalone import (
    StandaloneConfig,
    StandalonePacket,
    StandaloneRouterModel,
    find_mcm_saturation_load,
    measure_matches,
)


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"load": 0},
        {"occupancy": 1.0},
        {"occupancy": -0.1},
        {"local_fraction": 2.0},
        {"two_direction_fraction": -1.0},
        {"trials": 0},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            StandaloneConfig(**kwargs)


class TestModelMechanics:
    def test_deterministic_given_seed(self):
        config = StandaloneConfig(algorithm="PIM1", load=16, trials=50, seed=9)
        assert measure_matches(config) == measure_matches(config)

    def test_different_seeds_differ(self):
        low = StandaloneConfig(algorithm="PIM1", load=16, trials=50, seed=1)
        high = replace(low, seed=2)
        assert measure_matches(low) != measure_matches(high)

    @pytest.mark.parametrize("algorithm", ["MCM", "WFA", "PIM", "PIM1", "SPAA"])
    def test_grants_are_legal_matchings(self, algorithm):
        config = StandaloneConfig(algorithm=algorithm, load=24, trials=1)
        model = StandaloneRouterModel(config)
        packets = model._generate_packets()
        free = model._generate_free_outputs()
        nominations = model._build_nominations(packets, free)
        grants = model._arbiter.arbitrate(nominations, free)
        validate_matching(nominations, grants, free)

    def test_occupancy_limits_matches(self):
        free = measure_matches(StandaloneConfig(algorithm="MCM", load=32,
                                                trials=100))
        busy = measure_matches(StandaloneConfig(algorithm="MCM", load=32,
                                                trials=100, occupancy=0.75))
        assert busy < free
        assert busy <= 2.0 + 1e-9  # only ~2 outputs free

    def test_matches_bounded_by_outputs(self):
        value = measure_matches(StandaloneConfig(algorithm="MCM", load=200,
                                                 trials=20))
        assert value <= 7.0

    def test_matches_grow_with_load(self):
        small = measure_matches(StandaloneConfig(algorithm="MCM", load=4,
                                                 trials=200))
        large = measure_matches(StandaloneConfig(algorithm="MCM", load=32,
                                                 trials=200))
        assert large > small

    def test_spaa_uses_one_nomination_per_port(self):
        config = StandaloneConfig(algorithm="SPAA", load=64, trials=1)
        model = StandaloneRouterModel(config)
        packets = model._generate_packets()
        nominations = model._build_nominations(packets, frozenset(range(7)))
        ports = [nom.group for nom in nominations]
        assert len(ports) == len(set(ports)) <= 8
        assert all(len(nom.outputs) == 1 for nom in nominations)

    def test_pim_gets_multi_output_nominations(self):
        config = StandaloneConfig(algorithm="PIM", load=64, trials=1,
                                  two_direction_fraction=1.0)
        model = StandaloneRouterModel(config)
        packets = model._generate_packets()
        nominations = model._build_nominations(packets, frozenset(range(7)))
        assert any(len(nom.outputs) == 2 for nom in nominations)

    def test_per_cell_keeps_every_packet_of_a_row(self):
        """Regression: two same-row packets both reach the arbiter.

        An earlier version routed the nominations through a dict keyed
        by ``(row, packet.uid)`` that was meant to dedup per cell but
        never could (every key was unique), so the dict was dead code.
        The per-cell reduction belongs to the arbiter -- multi-round
        PIM needs the younger packet once the older one is matched --
        so all per-packet nominations must survive.
        """
        config = StandaloneConfig(algorithm="PIM", trials=1)
        model = StandaloneRouterModel(config)
        packets = [
            StandalonePacket(uid=0, port=InputPort.NORTH, outputs=(0,), age=0),
            StandalonePacket(uid=1, port=InputPort.NORTH, outputs=(0,), age=1),
        ]
        nominations = model._per_cell_nominations(packets)
        assert len(nominations) == 2
        assert {nom.packet for nom in nominations} == {0, 1}
        assert all(nom.row == 0 for nom in nominations)


class TestSaturationSearch:
    def test_finds_a_plateau(self):
        base = StandaloneConfig(trials=200)
        load = find_mcm_saturation_load(base, tolerance=0.02)
        at = measure_matches(replace(base, algorithm="MCM", load=load))
        beyond = measure_matches(replace(base, algorithm="MCM", load=load * 2))
        assert beyond - at < 0.05 * at

    def test_warns_when_capped_unconverged(self):
        """Hitting max_load without a verified plateau must not be silent."""
        base = StandaloneConfig(trials=50)
        with pytest.warns(RuntimeWarning, match="max_load"):
            load = find_mcm_saturation_load(base, tolerance=1e-9, max_load=16)
        assert load == 16

    def test_converged_search_does_not_warn(self):
        base = StandaloneConfig(trials=100)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            load = find_mcm_saturation_load(base, tolerance=0.05)
        assert load < 512


class TestSeedStability:
    """The keyed RNG stream's draw contract, pinned grant by grant.

    Every random decision in the standalone model is addressed by a
    ``(trial, domain, a, b)`` key (see docs/kernels.md for the audit of
    all draw sites); these literals pin the resulting grant sequences
    so any change to the key schedule -- a reordered draw, a new domain
    id, a different packing -- fails loudly instead of silently
    shifting every published number.
    """

    PINNED = {
        "MCM": (
            ((0, 0, 1), (1, 1, 0), (2, 2, 2), (4, 4, 4)),
            ((0, 0, 4), (1, 1, 6), (3, 3, 0), (4, 4, 2)),
        ),
        "WFA": (
            ((2, 1, 0), (3, 4, 4), (10, 2, 1)),
            ((13, 0, 4), (6, 3, 2), (3, 1, 6), (10, 4, 1)),
        ),
        "WFA-rotary": (
            ((2, 1, 0), (3, 4, 4), (10, 2, 1)),
            ((13, 0, 4), (6, 3, 0), (3, 1, 6), (10, 4, 1)),
        ),
        "PIM": (
            ((2, 1, 1), (3, 4, 4), (10, 2, 2), (6, 3, 0)),
            ((3, 1, 6), (6, 3, 0), (10, 4, 1), (13, 0, 4)),
        ),
        "PIM1": (
            ((2, 1, 1), (3, 4, 4), (10, 2, 2)),
            ((3, 1, 6), (6, 3, 0), (10, 4, 1), (13, 0, 4)),
        ),
        "SPAA": (
            ((6, 3, 0), (2, 1, 1)),
            ((6, 3, 0), (10, 4, 2), (13, 0, 4), (3, 1, 6)),
        ),
        "SPAA-rotary": (
            ((6, 3, 0), (2, 1, 1)),
            ((6, 3, 0), (10, 4, 2), (13, 0, 4), (3, 1, 6)),
        ),
        "OPF": (
            ((2, 1, 1), (6, 3, 0)),
            ((3, 1, 6), (6, 3, 0), (10, 4, 2), (13, 0, 4)),
        ),
    }

    @pytest.mark.parametrize("algorithm", sorted(PINNED))
    def test_grant_sequences_are_pinned(self, algorithm):
        observed: dict[int, tuple] = {}
        config = StandaloneConfig(algorithm=algorithm, load=5, trials=2,
                                  seed=123)
        StandaloneRouterModel(
            config,
            trial_hook=lambda trial, grants: observed.__setitem__(
                trial,
                tuple((g.row, g.packet, g.output) for g in grants),
            ),
        ).run()
        expected = self.PINNED[algorithm]
        assert tuple(observed[t] for t in sorted(observed)) == expected


class TestPaperShape:
    """The Figure 8/9 orderings, pinned as regression tests."""

    def test_figure8_ordering_at_saturation(self):
        values = {
            algorithm: measure_matches(
                StandaloneConfig(algorithm=algorithm, load=32, trials=300)
            )
            for algorithm in ("MCM", "WFA", "PIM", "PIM1", "SPAA")
        }
        assert values["MCM"] >= values["WFA"] - 0.05
        assert values["MCM"] >= values["PIM"] - 0.05
        assert values["WFA"] > values["PIM1"] > values["SPAA"]

    def test_figure9_gap_vanishes_at_75_percent(self):
        gap = []
        for algorithm in ("MCM", "SPAA"):
            gap.append(measure_matches(StandaloneConfig(
                algorithm=algorithm, load=32, occupancy=0.75, trials=400
            )))
        assert gap[0] == pytest.approx(gap[1], rel=0.05)
