"""Unit tests for the event-driven simulation kernel."""

import pytest

from repro.sim.engine import EventQueue


class TestScheduling:
    def test_events_run_in_time_order(self):
        queue = EventQueue()
        log = []
        queue.schedule_at(5.0, lambda: log.append("late"))
        queue.schedule_at(1.0, lambda: log.append("early"))
        queue.schedule_at(3.0, lambda: log.append("middle"))
        queue.run_until(10.0)
        assert log == ["early", "middle", "late"]

    def test_ties_break_in_insertion_order(self):
        queue = EventQueue()
        log = []
        for tag in ("a", "b", "c"):
            queue.schedule_at(2.0, lambda tag=tag: log.append(tag))
        queue.run_until(10.0)
        assert log == ["a", "b", "c"]

    def test_run_until_respects_horizon(self):
        queue = EventQueue()
        log = []
        queue.schedule_at(1.0, lambda: log.append("in"))
        queue.schedule_at(9.0, lambda: log.append("out"))
        queue.run_until(5.0)
        assert log == ["in"]
        assert queue.now == 5.0
        assert queue.pending == 1

    def test_events_may_schedule_events(self):
        queue = EventQueue()
        log = []

        def chain(n):
            log.append(n)
            if n < 3:
                queue.schedule_after(1.0, lambda: chain(n + 1))

        queue.schedule_at(0.0, lambda: chain(0))
        queue.run_until(10.0)
        assert log == [0, 1, 2, 3]

    def test_now_advances_with_events(self):
        queue = EventQueue()
        seen = []
        queue.schedule_at(2.5, lambda: seen.append(queue.now))
        queue.run_until(4.0)
        assert seen == [2.5]

    def test_cannot_schedule_in_the_past(self):
        queue = EventQueue()
        queue.schedule_at(1.0, lambda: None)
        queue.run_until(5.0)
        with pytest.raises(ValueError):
            queue.schedule_at(2.0, lambda: None)
        with pytest.raises(ValueError):
            queue.schedule_after(-1.0, lambda: None)

    def test_run_until_idle_drains_everything(self):
        queue = EventQueue()
        log = []
        queue.schedule_at(100.0, lambda: log.append("far"))
        queue.run_until_idle()
        assert log == ["far"]
        assert queue.pending == 0

    def test_same_time_recursive_events_allowed(self):
        queue = EventQueue()
        log = []
        queue.schedule_at(1.0, lambda: queue.schedule_at(1.0, lambda: log.append("x")))
        queue.run_until(2.0)
        assert log == ["x"]


class TestNonFiniteTimes:
    def test_nan_time_rejected(self):
        queue = EventQueue()
        with pytest.raises(ValueError, match="finite"):
            queue.schedule_at(float("nan"), lambda: None)

    def test_infinite_time_rejected(self):
        queue = EventQueue()
        with pytest.raises(ValueError, match="finite"):
            queue.schedule_at(float("inf"), lambda: None)

    def test_nan_delay_rejected(self):
        queue = EventQueue()
        with pytest.raises(ValueError, match="finite"):
            queue.schedule_after(float("nan"), lambda: None)

    def test_infinite_delay_rejected(self):
        queue = EventQueue()
        with pytest.raises(ValueError, match="finite"):
            queue.schedule_after(float("inf"), lambda: None)

    def test_queue_unchanged_after_rejection(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            queue.schedule_at(float("nan"), lambda: None)
        assert queue.pending == 0
        queue.schedule_at(1.0, lambda: None)  # still usable
        queue.run_until_idle()
        assert queue.now == 1.0
