"""Tests for the load-sweep helpers."""

import pytest

from repro.sim.config import NetworkConfig, SimulationConfig, TrafficConfig
from repro.sim.metrics import BNFCurve, BNFPoint
from repro.sim.sweep import (
    geometric_rates,
    parse_trace_filename,
    trace_filename,
    sweep_algorithm,
    sweep_algorithms,
    throughput_gain_at_latency,
)


def tiny_config() -> SimulationConfig:
    return SimulationConfig(
        network=NetworkConfig(width=2, height=2),
        traffic=TrafficConfig(injection_rate=0.01),
        warmup_cycles=200,
        measure_cycles=800,
        seed=3,
    )


class TestGeometricRates:
    def test_endpoints_and_count(self):
        rates = geometric_rates(0.001, 0.064, 7)
        assert len(rates) == 7
        assert rates[0] == pytest.approx(0.001)
        assert rates[-1] == pytest.approx(0.064)

    def test_geometric_spacing(self):
        rates = geometric_rates(1.0, 8.0, 4)
        ratios = [b / a for a, b in zip(rates, rates[1:])]
        assert all(r == pytest.approx(2.0) for r in ratios)

    def test_validation(self):
        with pytest.raises(ValueError):
            geometric_rates(0.1, 0.01, 5)
        with pytest.raises(ValueError):
            geometric_rates(0.1, 0.2, 1)


class TestSweeps:
    def test_sweep_algorithm_produces_labeled_curve(self):
        curve = sweep_algorithm(tiny_config(), rates=(0.005, 0.02))
        assert curve.label == "SPAA-base"
        assert len(curve.points) == 2
        assert curve.points[0].offered_rate == 0.005

    def test_progress_callback_invoked(self):
        lines = []
        sweep_algorithm(tiny_config(), rates=(0.005,), progress=lines.append)
        assert len(lines) == 1
        assert "SPAA-base" in lines[0]

    def test_sweep_algorithms_covers_all(self):
        curves = sweep_algorithms(
            tiny_config(), ("SPAA-base", "PIM1"), rates=(0.01,)
        )
        assert set(curves) == {"SPAA-base", "PIM1"}
        assert all(len(c.points) == 1 for c in curves.values())


class TestGainAtLatency:
    def curve(self, label, scale):
        curve = BNFCurve(label=label)
        curve.add(BNFPoint(0.01, 0.2 * scale, 50.0))
        curve.add(BNFPoint(0.02, 0.4 * scale, 100.0))
        return curve

    def test_relative_gain(self):
        winner = self.curve("w", 1.2)
        loser = self.curve("l", 1.0)
        assert throughput_gain_at_latency(winner, loser, 75.0) == \
            pytest.approx(0.2)

    def test_zero_loser_is_infinite(self):
        winner = self.curve("w", 1.0)
        loser = BNFCurve(label="l")
        assert throughput_gain_at_latency(winner, loser, 75.0) == float("inf")


class TestTraceFilenames:
    def test_round_trip(self):
        for algorithm in ("SPAA-base", "WFA-rotary", "odd_name_rate9"):
            for rate in (0.3, 0.30000000000000004, 1e-3, 0.045):
                name = trace_filename(algorithm, rate)
                assert parse_trace_filename(name) == (algorithm, rate)

    def test_float_twins_get_distinct_files(self):
        """0.3 and 0.30000000000000004 used to collapse to one file."""
        close_pair = 0.3, 0.1 + 0.2  # the classic accumulation artifact
        assert close_pair[0] != close_pair[1]
        assert (
            trace_filename("PIM1", close_pair[0])
            != trace_filename("PIM1", close_pair[1])
        )

    def test_non_trace_names_rejected(self):
        with pytest.raises(ValueError):
            parse_trace_filename("notes.txt")
        with pytest.raises(ValueError):
            parse_trace_filename("PIM1_rateabc.jsonl")
        with pytest.raises(ValueError):
            parse_trace_filename("_rate0.01.jsonl")
