"""Unit and property tests for statistics and BNF curve helpers."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.metrics import BNFCurve, BNFPoint, NetworkStats, RunningStats

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


class TestRunningStats:
    def test_empty_stats_are_nan(self):
        stats = RunningStats()
        assert math.isnan(stats.mean)
        assert math.isnan(stats.variance)
        assert stats.count == 0

    def test_known_sequence(self):
        stats = RunningStats()
        for value in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
            stats.add(value)
        assert stats.mean == pytest.approx(5.0)
        assert stats.variance == pytest.approx(32 / 7)
        assert stats.minimum == 2.0 and stats.maximum == 9.0

    @settings(max_examples=50, deadline=None)
    @given(values=st.lists(finite_floats, min_size=1, max_size=100))
    def test_matches_direct_computation(self, values):
        stats = RunningStats()
        for value in values:
            stats.add(value)
        mean = sum(values) / len(values)
        assert stats.mean == pytest.approx(mean, rel=1e-9, abs=1e-6)
        if len(values) > 1:
            variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
            assert stats.variance == pytest.approx(variance, rel=1e-6, abs=1e-3)

    @settings(max_examples=50, deadline=None)
    @given(
        left=st.lists(finite_floats, max_size=50),
        right=st.lists(finite_floats, max_size=50),
    )
    def test_merge_equals_concatenation(self, left, right):
        merged = RunningStats()
        for value in left:
            merged.add(value)
        other = RunningStats()
        for value in right:
            other.add(value)
        merged.merge(other)
        combined = RunningStats()
        for value in left + right:
            combined.add(value)
        assert merged.count == combined.count
        if combined.count:
            assert merged.mean == pytest.approx(combined.mean, rel=1e-9, abs=1e-6)
            assert merged.minimum == combined.minimum
            assert merged.maximum == combined.maximum


class TestNetworkStats:
    def test_throughput_metric(self):
        stats = NetworkStats(num_routers=16)
        stats.flits_delivered = 3200
        stats.window_ns = 100.0
        assert stats.delivered_flits_per_router_ns() == pytest.approx(2.0)

    def test_zero_window_is_zero_throughput(self):
        assert NetworkStats().delivered_flits_per_router_ns() == 0.0


class TestBNFCurve:
    def curve(self) -> BNFCurve:
        curve = BNFCurve(label="test")
        for rate, throughput, latency in (
            (0.01, 0.2, 50.0),
            (0.02, 0.4, 60.0),
            (0.04, 0.6, 100.0),
            (0.08, 0.5, 300.0),  # fold-back beyond saturation
        ):
            curve.add(BNFPoint(rate, throughput, latency))
        return curve

    def test_peak_throughput(self):
        assert self.curve().peak_throughput() == pytest.approx(0.6)

    def test_throughput_at_latency_interpolates(self):
        curve = self.curve()
        assert curve.throughput_at_latency(80.0) == pytest.approx(0.5)

    def test_throughput_below_first_point(self):
        assert self.curve().throughput_at_latency(10.0) == pytest.approx(0.2)

    def test_throughput_beyond_curve_returns_best(self):
        assert self.curve().throughput_at_latency(1000.0) == pytest.approx(0.6)

    def test_foldback_reports_best_reached(self):
        # At 300 ns the curve has folded back to 0.5, but 0.6 was
        # reached at a lower latency -- the best achievable at or
        # below that latency is what the paper compares.
        assert self.curve().throughput_at_latency(300.0) == pytest.approx(0.6)

    def test_empty_curve(self):
        empty = BNFCurve(label="empty")
        assert empty.peak_throughput() == 0.0
        assert empty.throughput_at_latency(100.0) == 0.0

    def test_point_as_row(self):
        point = BNFPoint(0.01, 0.5, 60.0)
        assert point.as_row() == (0.01, 0.5, 60.0)
